// Generic loopback TCP front-end for hsw-survey-rpc handlers.
//
// FrameServer owns the socket plumbing; what it serves is a callback.
// SurveyServer (a shard) and RouterServer (the fleet front door) are both
// thin compositions over it: parse a frame, hand the Request to a
// handler, write the Response back.
//
// Since PR 9 the serving model is an epoll reactor, not a thread per
// connection:
//
//   * A small fixed pool of *reactor threads*, each with its own epoll
//     set, owns the connections (round-robin assignment at accept). All
//     per-connection state -- read buffer, frame parser, response slots,
//     output queue -- is touched only by the owning reactor thread, so
//     the event loop needs no locks at all on the hot path.
//   * Nonblocking sockets end to end: reads drain until EAGAIN, writes go
//     out as coalesced sendmsg(iovec) bursts, and a connection that can't
//     take more bytes parks on EPOLLOUT instead of blocking a thread.
//   * Requests the *fast handler* can answer (ping, health, response-
//     cache hits) complete inline on the reactor thread: a hot query is
//     served with zero thread handoffs. Everything else is dispatched to
//     the *handler pool*, a bounded set of threads that may block (the
//     service's admission control still bounds the real compute).
//   * v1.3 pipelining: a connection may send any number of frames without
//     waiting, including `batch` frames carrying many tagged requests.
//     Each request gets a response slot; completed *tagged* slots flush
//     out of order, untagged slots flush strictly in request order, so
//     pre-v1.3 clients observe exactly the old sequential behavior.
//   * Backpressure: a connection with too many pending slots or too many
//     unflushed output bytes has EPOLLIN interest dropped until the
//     client drains responses -- a slow reader throttles itself, never
//     the reactor.
//
// Shutdown paths converge on stop(): the `shutdown` verb, a signal
// handler, or the owner calling it directly. stop() closes the listener
// (unblocking the accept thread), stops the handler pool (running calls
// finish, queued ones are abandoned like the old model's killed reads),
// then signals the reactors, which flush what is ready and close every
// connection. The `shutdown` verb is special-cased: its response is
// flushed first, then a dedicated stopper thread drives the teardown
// (a reactor cannot join itself); the destructor reaps the stopper.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "util/sync.hpp"

namespace hsw::service {

struct FrameServerConfig {
    /// Loopback only by default; this is a measurement service, not an
    /// internet-facing one.
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (read it back via port()).
    std::uint16_t port = 0;
    /// Concurrent connections; excess connects receive one Overloaded
    /// response and are closed.
    unsigned max_connections = 64;
    /// Event-loop threads; clamped to at least 1. Connections are
    /// assigned round-robin at accept and never migrate.
    unsigned reactor_threads = 2;
    /// Threads that run the (potentially blocking) Handler. 0 = auto:
    /// scale with max_connections, clamped to [4, 64].
    unsigned handler_threads = 0;
    /// Per-connection backpressure: stop reading when this many response
    /// slots are pending or this many output bytes are unflushed.
    std::size_t max_pending_requests = 2048;
    std::size_t max_output_bytes = 8u << 20;
    /// Prefix for the front-end's obs metrics: "<prefix>_connections",
    /// "<prefix>_connections_refused", "<prefix>_frames",
    /// "<prefix>_frames_malformed", "<prefix>_open_connections",
    /// "<prefix>_fast_responses". Distinct prefixes keep a router and a
    /// shard distinguishable in one scrape.
    std::string metric_prefix = "hsw_server";
};

class FrameServer {
public:
    /// Answers one parsed request; runs on a handler-pool thread and may
    /// block. The handler owns admission control for its own work --
    /// FrameServer only caps connections and per-connection pipelining.
    using Handler = std::function<protocol::Response(const protocol::Request&)>;
    /// Optional non-blocking attempt, run inline on the reactor thread
    /// BEFORE the pool dispatch. Returning a Response answers the request
    /// with zero handoffs; nullopt falls through to the Handler. Must
    /// never block (see the reactor-blocking lint rule).
    using FastHandler =
        std::function<std::optional<protocol::Response>(const protocol::Request&)>;
    /// Optional whole-batch dispatch: one pool call answers all
    /// sub-requests of a v1.3 batch frame (the router groups them by
    /// shard and pipelines per upstream). Must return exactly one
    /// response per request, in order. Without it, batches expand into
    /// per-request dispatches across the handler pool.
    using BatchHandler = std::function<std::vector<protocol::Response>(
        const std::vector<protocol::Request>&)>;

    /// Binds and listens; throws std::runtime_error on socket failure.
    /// `on_drain` (may be null) runs inside stop() after the handler pool
    /// has been joined -- e.g. SurveyService::drain().
    FrameServer(FrameServerConfig cfg, Handler handler,
                std::function<void()> on_drain = {});
    ~FrameServer();

    FrameServer(const FrameServer&) = delete;
    FrameServer& operator=(const FrameServer&) = delete;

    /// Install before start(); not thread-safe afterwards.
    void set_fast_handler(FastHandler fast) { fast_handler_ = std::move(fast); }
    void set_batch_handler(BatchHandler batch) { batch_handler_ = std::move(batch); }

    /// The bound port (useful with cfg.port == 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Spawns the reactors, the handler pool, and the accept thread.
    void start();

    /// Blocks until the server has stopped (shutdown verb or stop()).
    void wait() EXCLUDES(stopped_lock_);

    /// Idempotent: stop accepting, finish running handler calls, run the
    /// drain hook, flush and close every connection, join all threads.
    void stop();

    [[nodiscard]] bool stopped() const;

private:
    struct Conn;
    struct Slot;
    struct Reactor;

    void accept_loop();
    void reactor_loop(Reactor& reactor);
    void handler_loop();

    // Reactor-side connection handling; all run on the owning reactor
    // thread only.
    void add_connection(Reactor& reactor, int fd);
    void close_connection(Reactor& reactor, Conn& conn);
    void on_readable(Reactor& reactor, Conn& conn);
    void on_writable(Reactor& reactor, Conn& conn);
    void parse_frames(Reactor& reactor, Conn& conn);
    void dispatch_frame(Reactor& reactor, Conn& conn, std::string_view frame);
    void dispatch_single(Reactor& reactor, Conn& conn, protocol::Request request);
    void enqueue_malformed(Conn& conn, std::string reason);
    void flush_ready(Reactor& reactor, Conn& conn);
    bool flush_output(Reactor& reactor, Conn& conn);
    void update_interest(Reactor& reactor, Conn& conn);
    void request_stop_from_reactor();

    bool submit(std::function<void()> task);
    void post_completion(Reactor& reactor, const std::weak_ptr<Conn>& conn);

    FrameServerConfig cfg_;
    Handler handler_;
    FastHandler fast_handler_;
    BatchHandler batch_handler_;
    std::function<void()> on_drain_;
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;

    // Front-end metrics, resolved once from cfg_.metric_prefix.
    struct Metrics;
    std::unique_ptr<Metrics> metrics_;

    std::thread acceptor_;
    std::vector<std::unique_ptr<Reactor>> reactors_;
    std::atomic<unsigned> next_reactor_{0};

    // Handler pool: runs blocking Handler/BatchHandler calls.
    util::Mutex pool_lock_;
    util::CondVar pool_cv_;
    std::vector<std::function<void()>> pool_queue_ GUARDED_BY(pool_lock_);
    bool pool_stop_ GUARDED_BY(pool_lock_) = false;
    std::vector<std::thread> pool_threads_;

    // Spawned by the `shutdown` verb so a reactor thread is never asked
    // to join itself; reaped by the destructor.
    util::Mutex stopper_lock_;
    std::thread stopper_ GUARDED_BY(stopper_lock_);

    std::atomic<unsigned> open_connections_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::once_flag stop_once_;
    util::Mutex stopped_lock_;
    util::CondVar stopped_cv_;
};

}  // namespace hsw::service
