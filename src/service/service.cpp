#include "service/service.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "engine/blob.hpp"
#include "engine/cancel.hpp"
#include "engine/engine.hpp"
#include "obs/accesslog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsw::service {

namespace {

using protocol::ErrorCode;
using protocol::Source;

obs::Gauge& queue_depth_gauge() {
    static obs::Gauge& g = obs::gauge(
        "hsw_service_queue_depth", "Compute tasks waiting in the admission queue");
    return g;
}

obs::Counter& requests_counter() {
    static obs::Counter& c =
        obs::counter("hsw_service_requests", "Query verb requests received");
    return c;
}

obs::Counter& requests_completed_counter() {
    static obs::Counter& c = obs::counter("hsw_service_requests_completed",
                                          "Query verb requests answered OK");
    return c;
}

obs::Counter& requests_rejected_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_service_requests_rejected",
        "Query verb requests rejected (overload/deadline/unknown/draining/error)");
    return c;
}

obs::Counter& response_hits_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_service_response_hits",
        "Whole query responses answered from the route-key cache");
    return c;
}

obs::Histogram& request_latency_histogram() {
    // 10 us .. ~84 s in x2 steps: covers hot-cache hits through cold
    // full-experiment computes.
    static obs::Histogram& h = obs::histogram(
        "hsw_service_request_latency_ms", obs::exponential_bounds(0.01, 2.0, 23),
        "Query verb end-to-end latency in milliseconds");
    return h;
}

/// Thrown into a flight when the leader could not even enqueue the
/// compute; every waiter maps it to ErrorCode::Overloaded.
struct OverloadError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Worst-of ordering for aggregating a whole-experiment response's source.
int rank(Source s) {
    switch (s) {
        case Source::HotCache: return 0;
        case Source::DiskCache: return 1;
        case Source::Computed: return 2;
    }
    return 2;
}

std::string registry_key(const protocol::Request& request) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "seed=0x%016llx;audit=%d;quick=%d",
                  static_cast<unsigned long long>(request.seed),
                  static_cast<int>(request.audit), request.quick ? 1 : 0);
    return buf;
}

std::vector<engine::Experiment> default_registry(const protocol::Request& request) {
    engine::SurveyTuning tuning =
        request.quick ? engine::SurveyTuning::quick() : engine::SurveyTuning{};
    tuning.seed = request.seed;
    tuning.audit = request.audit;
    return engine::survey_experiments(tuning);
}

/// One structured access-log line per completed query. Runs on the
/// serving path, so everything expensive (the route-key SHA) is gated
/// behind the enabled check and the tail-sampling decision.
void log_query_access(const protocol::Request& request,
                      const protocol::Response& response,
                      std::uint64_t micros) {
    if (!obs::accesslog::enabled()) return;
    const obs::trace::TraceContext ctx = obs::trace::current_context();
    if (!obs::accesslog::should_log(ctx, !response.ok(), micros,
                                    /*retried=*/false)) {
        return;
    }
    obs::accesslog::Record rec;
    rec.trace_id = ctx.trace_id;
    rec.micros = micros;
    if (request.deadline_ms > 0) {
        rec.deadline_slack_us =
            static_cast<std::int64_t>(request.deadline_ms) * 1000 -
            static_cast<std::int64_t>(micros);
    }
    obs::accesslog::set_field(rec.verb, protocol::name(request.verb));
    obs::accesslog::set_field(
        rec.spec, std::string_view{protocol::route_key(request)}.substr(0, 16));
    obs::accesslog::set_field(
        rec.source, response.ok() ? protocol::name(response.source) : "none");
    obs::accesslog::set_field(
        rec.outcome, response.ok() ? std::string_view{"ok"}
                                   : protocol::name(response.code));
    obs::accesslog::record(rec);
}

}  // namespace

std::string ServiceStats::render() const {
    char line[256];
    std::string out = "survey-service stats\n";
    std::snprintf(line, sizeof line,
                  "  requests: %llu received, %llu completed, %llu failed\n",
                  static_cast<unsigned long long>(received),
                  static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(failed));
    out += line;
    std::snprintf(line, sizeof line,
                  "  rejected: %llu overload, %llu deadline, %llu unknown, "
                  "%llu draining\n",
                  static_cast<unsigned long long>(rejected_overload),
                  static_cast<unsigned long long>(rejected_deadline),
                  static_cast<unsigned long long>(rejected_unknown),
                  static_cast<unsigned long long>(rejected_draining));
    out += line;
    std::snprintf(line, sizeof line,
                  "  jobs: %llu hot hits, %llu disk hits, %llu computed, "
                  "%llu coalesced\n",
                  static_cast<unsigned long long>(hot_hits),
                  static_cast<unsigned long long>(disk_hits),
                  static_cast<unsigned long long>(computed),
                  static_cast<unsigned long long>(coalesced));
    out += line;
    std::snprintf(line, sizeof line, "  responses: %llu route-key cache hits\n",
                  static_cast<unsigned long long>(response_hits));
    out += line;
    std::snprintf(line, sizeof line,
                  "  hot-cache: %zu entries, %zu bytes, %llu hits, %llu misses, "
                  "%llu insertions, %llu evictions\n",
                  hot_cache.entries, hot_cache.bytes,
                  static_cast<unsigned long long>(hot_cache.hits),
                  static_cast<unsigned long long>(hot_cache.misses),
                  static_cast<unsigned long long>(hot_cache.insertions),
                  static_cast<unsigned long long>(hot_cache.evictions));
    out += line;
    std::snprintf(line, sizeof line,
                  "  disk-cache: %llu hits, %llu misses, %llu stores\n",
                  static_cast<unsigned long long>(disk_cache.hits),
                  static_cast<unsigned long long>(disk_cache.misses),
                  static_cast<unsigned long long>(disk_cache.stores));
    out += line;
    return out;
}

SurveyService::SurveyService(ServiceConfig cfg)
    : cfg_{std::move(cfg)}, hot_{cfg_.hot_cache} {
    cfg_.workers = std::max(1u, cfg_.workers);
    if (cfg_.max_queue == 0) cfg_.max_queue = 1;
    if (!cfg_.registry_factory) cfg_.registry_factory = default_registry;
    if (cfg_.disk_cache_dir) disk_.emplace(*cfg_.disk_cache_dir, cfg_.cache_salt);
    workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

SurveyService::~SurveyService() { drain(); }

void SurveyService::drain() {
    std::call_once(drain_once_, [this] {
        draining_.store(true, std::memory_order_release);
        util::LockGuard lock{pool_lock_};
        while (!queue_.empty() || active_ != 0) pool_idle_cv_.wait(lock);
        stopping_ = true;
        pool_task_cv_.notify_all();
        lock.unlock();
        for (auto& worker : workers_) worker.join();
    });
}

bool SurveyService::draining() const {
    return draining_.load(std::memory_order_acquire);
}

bool SurveyService::shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
}

void SurveyService::worker_loop() {
    for (;;) {
        util::LockGuard lock{pool_lock_};
        while (!stopping_ && queue_.empty()) pool_task_cv_.wait(lock);
        if (queue_.empty()) {
            if (stopping_) return;
            continue;
        }
        auto task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
        lock.unlock();
        task();  // never throws: job exceptions are routed into the flight
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0) pool_idle_cv_.notify_all();
    }
}

bool SurveyService::try_submit(std::function<void()> task) {
    {
        util::LockGuard lock{pool_lock_};
        if (stopping_ || draining()) return false;
        if (queue_.size() >= cfg_.max_queue) return false;
        queue_.push_back(std::move(task));
        queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    }
    // Notify after releasing the lock: waking a worker straight into a
    // contended pool_lock_ stalls it (and the submitter) for nothing.
    pool_task_cv_.notify_one();
    return true;
}

void SurveyService::note_rejection(ErrorCode code, const std::string& subject,
                                   const std::string& message, double value,
                                   double bound) {
    analysis::Diagnostic d;
    d.invariant = analysis::Invariant::ServiceAdmission;
    d.severity = analysis::Severity::Warning;
    d.subject = subject;
    d.message = std::string{protocol::name(code)} + ": " + message;
    d.value = value;
    d.bound = bound;
    util::LockGuard lock{diag_lock_};
    diagnostics_.report(std::move(d));
}

std::shared_ptr<const SurveyService::Registry> SurveyService::registry_for(
    const protocol::Request& request) {
    const std::string key = registry_key(request);
    {
        // Fast path: memoized tuples are read under the shared lock, so
        // concurrent queries never serialize here.
        util::SharedLockGuard lock{registry_lock_};
        if (const auto it = registries_.find(key); it != registries_.end()) {
            return it->second;
        }
    }
    util::ExclusiveLockGuard lock{registry_lock_};
    if (const auto it = registries_.find(key); it != registries_.end()) {
        return it->second;  // another writer built it between the locks
    }
    auto registry = std::make_shared<Registry>();
    registry->experiments = cfg_.registry_factory(request);
    registry->index = std::make_unique<engine::JobIndex>(registry->experiments);
    registries_.emplace(key, registry);
    return registry;
}

SurveyService::StartedJob SurveyService::start_job(
    const engine::Job& job, std::chrono::steady_clock::time_point deadline,
    bool has_deadline, std::shared_ptr<const Registry> keepalive) {
    StartedJob started;
    const std::string key = job.spec.hash_hex();

    auto hit = [&] {
        obs::trace::Span span{"hotcache", "service"};
        span.set_label(key);
        return hot_.lookup(key);
    }();
    if (hit) {
        hot_hits_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter& c =
            obs::counter("hsw_service_hot_hits", "Jobs answered from the hot cache");
        c.inc();
        started.done = true;
        started.outcome =
            JobOutcome{ErrorCode::None, Source::HotCache, std::move(hit), {}};
        return started;
    }

    started.ticket = coalescer_.join(key);
    if (!started.ticket.leader) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter& c = obs::counter(
            "hsw_service_coalesced", "Requests that joined an in-flight computation");
        c.inc();
        return started;
    }

    auto token = std::make_shared<engine::CancelToken>();
    if (has_deadline) token->set_deadline(deadline);

    // The keepalive pins the registry (and with it `job`) until the task
    // retires, no matter when the service evicts or the caller gives up.
    // The submitter's trace context rides along so the compute's span
    // parents to the request even though it runs on a worker thread.
    auto task = [this, job_ptr = &job, key, token,
                 ctx = obs::trace::current_context(),
                 keepalive = std::move(keepalive)]() {
        obs::trace::ContextScope trace_scope{ctx};
        obs::trace::Span span{"engine.job", "service"};
        span.set_label(key);
        try {
            engine::JobResult result =
                engine::run_job(*job_ptr, disk_ ? &*disk_ : nullptr, token.get());
            const Source source = result.source == engine::JobSource::DiskCache
                                      ? Source::DiskCache
                                      : Source::Computed;
            (source == Source::DiskCache ? disk_hits_ : computed_)
                .fetch_add(1, std::memory_order_relaxed);
            static obs::Counter& c_disk = obs::counter(
                "hsw_service_disk_hits", "Jobs answered from the disk result cache");
            static obs::Counter& c_computed = obs::counter(
                "hsw_service_computed", "Jobs computed from scratch by the service");
            (source == Source::DiskCache ? c_disk : c_computed).inc();
            // Pin across the fan-out: even a tiny hot cache must not drop
            // an entry its flight is still publishing.
            auto value = hot_.insert(key, std::move(result.payload), /*pinned=*/true);
            coalescer_.complete(key, RequestCoalescer::Value{std::move(value), source});
            hot_.unpin(key);
        } catch (...) {
            coalescer_.fail(key, std::current_exception());
        }
    };

    if (!try_submit(std::move(task))) {
        // Queue full (or drain raced us): reject every waiter of this
        // flight with the same structured overload.
        coalescer_.fail(key, std::make_exception_ptr(OverloadError{
                                 "compute queue full (max " +
                                 std::to_string(cfg_.max_queue) + ")"}));
    }
    return started;
}

SurveyService::JobOutcome SurveyService::await_job(
    const engine::Job& job, const RequestCoalescer::Ticket& ticket,
    std::chrono::steady_clock::time_point deadline, bool has_deadline) {
    const std::string label = job.spec.label();
    try {
        if (has_deadline) {
            if (ticket.result.wait_until(deadline) == std::future_status::timeout) {
                rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
                note_rejection(ErrorCode::DeadlineExceeded, label,
                               "request deadline elapsed while job in flight", 0.0,
                               0.0);
                return JobOutcome{ErrorCode::DeadlineExceeded, Source::Computed, nullptr,
                                  "deadline elapsed while " + label + " in flight"};
            }
        } else {
            ticket.result.wait();
        }
        RequestCoalescer::Value value = ticket.result.get();
        return JobOutcome{ErrorCode::None, value.source, std::move(value.payload), {}};
    } catch (const engine::CancelledError& e) {
        rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
        note_rejection(ErrorCode::DeadlineExceeded, label, e.what(), 0.0, 0.0);
        return JobOutcome{ErrorCode::DeadlineExceeded, Source::Computed, nullptr,
                          e.what()};
    } catch (const OverloadError& e) {
        rejected_overload_.fetch_add(1, std::memory_order_relaxed);
        note_rejection(ErrorCode::Overloaded, label, e.what(),
                       static_cast<double>(cfg_.max_queue),
                       static_cast<double>(cfg_.max_queue));
        return JobOutcome{ErrorCode::Overloaded, Source::Computed, nullptr, e.what()};
    } catch (const std::exception& e) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        return JobOutcome{ErrorCode::Internal, Source::Computed, nullptr, e.what()};
    }
}

SurveyService::QueryResult SurveyService::query(const protocol::Request& request) {
    received_.fetch_add(1, std::memory_order_relaxed);

    if (draining()) {
        rejected_draining_.fetch_add(1, std::memory_order_relaxed);
        note_rejection(ErrorCode::ShuttingDown, request.experiment,
                       "service is draining", 0.0, 0.0);
        return QueryResult{ErrorCode::ShuttingDown, Source::Computed, nullptr,
                           "service is draining"};
    }

    // Fastest path: a whole response already served for this route key is
    // handed back without touching the registry, jobs, or worker pool --
    // duplicate-heavy hot traffic resolves to one SHA-256 and one
    // shared-lock cache probe. Only successful responses are ever cached,
    // and payload bytes are deterministic per route key, so a hit can
    // never serve stale or rejected bytes.
    const std::string response_key = protocol::route_key(request);
    if (auto hit = hot_.lookup(response_key)) {
        response_hits_.fetch_add(1, std::memory_order_relaxed);
        response_hits_counter().inc();
        completed_.fetch_add(1, std::memory_order_relaxed);
        return QueryResult{ErrorCode::None, Source::HotCache, std::move(hit), {}};
    }

    std::shared_ptr<const Registry> registry;
    try {
        registry = registry_for(request);
    } catch (const std::exception& e) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        return QueryResult{ErrorCode::Internal, Source::Computed, nullptr, e.what()};
    }

    const engine::Experiment* experiment =
        engine::find_experiment(registry->experiments, request.experiment);
    if (!experiment) {
        rejected_unknown_.fetch_add(1, std::memory_order_relaxed);
        std::string known;
        for (const auto& e : registry->experiments) {
            if (!known.empty()) known += ' ';
            known += e.name;
        }
        return QueryResult{ErrorCode::UnknownExperiment, Source::Computed, nullptr,
                           "no experiment named '" + request.experiment +
                               "'; registered: " + known};
    }

    std::vector<const engine::Job*> jobs;
    if (request.point == "*") {
        for (const auto& job : experiment->jobs) jobs.push_back(&job);
    } else {
        for (const auto& job : experiment->jobs) {
            // Points are unique within an experiment; first match wins.
            if (job.spec.point == request.point && jobs.empty()) jobs.push_back(&job);
        }
        if (jobs.empty()) {
            rejected_unknown_.fetch_add(1, std::memory_order_relaxed);
            std::string known;
            for (const auto& job : experiment->jobs) {
                if (!known.empty()) known += ' ';
                known += job.spec.point;
            }
            return QueryResult{ErrorCode::UnknownPoint, Source::Computed, nullptr,
                               "experiment " + request.experiment + " has no point '" +
                                   request.point + "'; points: " + known};
        }
    }

    const std::chrono::milliseconds deadline_ms =
        request.deadline_ms > 0 ? std::chrono::milliseconds{request.deadline_ms}
                                : cfg_.default_deadline;
    const bool has_deadline = deadline_ms.count() > 0;
    const auto deadline = std::chrono::steady_clock::now() + deadline_ms;

    // Phase 1: start everything (hot probes, coalescer joins, leader
    // submissions) so a multi-job experiment fans across the pool instead
    // of running point by point.
    std::vector<StartedJob> started;
    started.reserve(jobs.size());
    for (const engine::Job* job : jobs) {
        started.push_back(start_job(*job, deadline, has_deadline, registry));
    }

    // Phase 2: collect in experiment order.
    std::vector<std::string> payloads(jobs.size());
    std::shared_ptr<const std::string> single_payload;
    Source worst = Source::HotCache;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        JobOutcome outcome;
        if (started[i].done) {
            outcome = std::move(started[i].outcome);
        } else {
            // Followers trace the wait as "coalesce" (the span the ISSUE's
            // tree calls out); the leader's compute itself is traced as
            // "engine.job" on the worker thread.
            obs::trace::Span span{
                started[i].ticket.leader ? "engine.await" : "coalesce",
                "service"};
            span.set_label(jobs[i]->spec.hash_hex());
            outcome =
                await_job(*jobs[i], started[i].ticket, deadline, has_deadline);
        }
        if (!outcome.payload && outcome.code == ErrorCode::None) {
            outcome.code = ErrorCode::Internal;
            outcome.message = "job delivered no payload";
        }
        if (outcome.code != ErrorCode::None) {
            return QueryResult{outcome.code, Source::Computed, nullptr,
                               outcome.message};
        }
        if (rank(outcome.source) > rank(worst)) worst = outcome.source;
        if (jobs.size() == 1 && request.point != "*") {
            single_payload = outcome.payload;
        } else {
            payloads[i] = *outcome.payload;
        }
    }

    if (request.point != "*") {
        completed_.fetch_add(1, std::memory_order_relaxed);
        // Cache the response under its route key too (same allocation as
        // the job-level entry -- insert_shared never copies bytes), so the
        // next identical query skips the registry and job resolution.
        hot_.insert_shared(response_key, single_payload);
        return QueryResult{ErrorCode::None, worst, std::move(single_payload), {}};
    }

    // Assemble exactly like the batch engine, then pack the artifacts as
    // one blob so the response is a single verifiable byte stream.
    try {
        const std::vector<engine::Artifact> artifacts =
            experiment->assemble ? experiment->assemble(payloads)
                                 : std::vector<engine::Artifact>{};
        engine::BlobSections sections;
        sections.reserve(artifacts.size());
        for (const auto& artifact : artifacts) {
            const char* prefix =
                artifact.kind == engine::ArtifactKind::Render ? "render:" : "csv:";
            sections.emplace_back(prefix + artifact.filename, artifact.contents);
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        auto packed =
            std::make_shared<const std::string>(engine::pack_sections(sections));
        hot_.insert_shared(response_key, packed);
        return QueryResult{ErrorCode::None, worst, std::move(packed), {}};
    } catch (const std::exception& e) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        return QueryResult{ErrorCode::Internal, Source::Computed, nullptr,
                           std::string{"assemble failed: "} + e.what()};
    }
}

std::optional<protocol::Response> SurveyService::try_handle_fast(
    const protocol::Request& request) {
    protocol::Response response;
    response.tag = request.tag;
    switch (request.verb) {
        case protocol::Verb::Ping:
            response.payload = "pong";
            return response;
        case protocol::Verb::Health:
            response.payload =
                draining() || shutdown_requested() ? "draining" : "ok";
            return response;
        case protocol::Verb::Query:
            break;
        default:
            return std::nullopt;  // stats/metrics/shutdown take the slow path
    }
    // Draining and rejections need the slow path's structured accounting.
    if (draining()) return std::nullopt;
    const auto t0 = std::chrono::steady_clock::now();
    auto hit = hot_.lookup(protocol::route_key(request));
    if (!hit) return std::nullopt;
    received_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    response_hits_.fetch_add(1, std::memory_order_relaxed);
    response_hits_counter().inc();
    requests_counter().inc();
    requests_completed_counter().inc();
    response.code = ErrorCode::None;
    response.source = Source::HotCache;
    response.shared_payload = std::move(hit);
    {
        obs::trace::Span span{"hotcache", "service"};
        span.set_label(request.experiment + "/" + request.point);
    }
    log_query_access(request, response,
                     static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count()));
    return response;
}

protocol::Response SurveyService::handle(const protocol::Request& request) {
    protocol::Response response;
    response.tag = request.tag;
    switch (request.verb) {
        case protocol::Verb::Ping:
            response.payload = "pong";
            return response;
        case protocol::Verb::Stats:
            response.payload = stats().render();
            return response;
        case protocol::Verb::Metrics:
            // Ring overflow counters live outside the registry; fold them
            // in so every scrape sees current drop totals.
            obs::trace::publish_overflow_metrics();
            obs::accesslog::publish_overflow_metrics();
            response.payload = request.format == protocol::MetricsFormat::Json
                                   ? obs::render_json()
                                   : obs::render_prometheus();
            return response;
        case protocol::Verb::TraceDump:
            // v1.4 collector verb: this process's spans, ready to merge.
            response.payload = obs::trace::export_chrome_json();
            return response;
        case protocol::Verb::Dump: {
            // v1.4 debug verb: write a flight dump, answer with its path.
            const std::string path = obs::flight::dump("verb");
            if (path.empty()) {
                response.code = ErrorCode::Internal;
                response.payload = "flight dump failed (dir missing or unwritable)";
            } else {
                response.payload = path;
            }
            return response;
        }
        case protocol::Verb::Shutdown:
            shutdown_requested_.store(true, std::memory_order_release);
            response.payload = "draining";
            return response;
        case protocol::Verb::Health:
            // v1.2 liveness/readiness probe: cheap enough for a router to
            // call every probe interval. "draining" tells the prober to
            // eject the shard before the listener actually closes.
            response.payload =
                draining() || shutdown_requested() ? "draining" : "ok";
            return response;
        case protocol::Verb::Query: {
            requests_counter().inc();
            obs::trace::Span span{"service.query", "service"};
            span.set_label(request.experiment + "/" + request.point);
            const auto t0 = std::chrono::steady_clock::now();
            QueryResult result = query(request);
            const auto elapsed = std::chrono::steady_clock::now() - t0;
            request_latency_histogram().record(
                std::chrono::duration<double, std::milli>(elapsed).count());
            (result.ok() ? requests_completed_counter() : requests_rejected_counter())
                .inc();
            response.code = result.code;
            response.source = result.source;
            if (result.ok()) {
                // Hand the cached allocation to the encoder -- a hot
                // response is never copied into the Response.
                response.shared_payload = std::move(result.payload);
            } else {
                response.payload = std::move(result.message);
            }
            log_query_access(
                request, response,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                        .count()));
            return response;
        }
    }
    response.code = ErrorCode::MalformedRequest;
    response.payload = "unhandled verb";
    return response;
}

ServiceStats SurveyService::stats() const {
    ServiceStats s;
    s.received = received_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
    s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
    s.rejected_unknown = rejected_unknown_.load(std::memory_order_relaxed);
    s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.hot_hits = hot_hits_.load(std::memory_order_relaxed);
    s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
    s.computed = computed_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.response_hits = response_hits_.load(std::memory_order_relaxed);
    s.hot_cache = hot_.stats();
    if (disk_) s.disk_cache = disk_->counters();
    return s;
}

std::vector<analysis::Diagnostic> SurveyService::admission_diagnostics() const {
    util::LockGuard lock{diag_lock_};
    return diagnostics_.diagnostics();
}

}  // namespace hsw::service
