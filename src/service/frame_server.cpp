#include "service/frame_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsw::service {

namespace {

void close_quietly(int fd) {
    if (fd >= 0) ::close(fd);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error{"bad IPv4 address: " + host};
    }
    return addr;
}

}  // namespace

struct FrameServer::Metrics {
    obs::Counter& connections;
    obs::Counter& refused;
    obs::Counter& frames;
    obs::Counter& malformed;
    obs::Gauge& open;

    explicit Metrics(const std::string& prefix)
        : connections{obs::counter(prefix + "_connections",
                                   "TCP connections accepted")},
          refused{obs::counter(prefix + "_connections_refused",
                               "Connections refused at the admission cap")},
          frames{obs::counter(prefix + "_frames",
                              "Request frames read off the wire")},
          malformed{obs::counter(prefix + "_frames_malformed",
                                 "Frames that failed request parsing")},
          open{obs::gauge(prefix + "_open_connections",
                          "Connections currently being served")} {}
};

FrameServer::FrameServer(FrameServerConfig cfg, Handler handler,
                         std::function<void()> on_drain)
    : cfg_{std::move(cfg)},
      handler_{std::move(handler)},
      on_drain_{std::move(on_drain)},
      metrics_{std::make_unique<Metrics>(cfg_.metric_prefix)} {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error{"socket() failed"};
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr = make_address(cfg_.bind_address, cfg_.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        // system_category().message(), not strerror(): the latter returns a
        // static buffer and is not thread-safe.
        const std::string reason = std::system_category().message(errno);
        close_quietly(fd);
        throw std::runtime_error{"bind(" + cfg_.bind_address + ":" +
                                 std::to_string(cfg_.port) + ") failed: " + reason};
    }
    if (::listen(fd, 64) != 0) {
        close_quietly(fd);
        throw std::runtime_error{"listen() failed"};
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        close_quietly(fd);
        throw std::runtime_error{"getsockname() failed"};
    }
    port_ = ntohs(bound.sin_port);
    listen_fd_.store(fd, std::memory_order_release);
}

FrameServer::~FrameServer() {
    stop();
    std::thread stopper;
    {
        util::LockGuard lock{stopper_lock_};
        stopper.swap(stopper_);
    }
    if (stopper.joinable()) stopper.join();
}

void FrameServer::start() {
    acceptor_ = std::thread{[this] { accept_loop(); }};
}

void FrameServer::wait() {
    util::LockGuard lock{stopped_lock_};
    while (!stopped_.load(std::memory_order_acquire)) stopped_cv_.wait(lock);
}

bool FrameServer::stopped() const { return stopped_.load(std::memory_order_acquire); }

void FrameServer::stop() {
    std::call_once(stop_once_, [this] {
        stopping_.store(true, std::memory_order_release);
        // Closing the listener unblocks accept(); shutdown() first so a
        // concurrent accept returns instead of racing the close.
        const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        }
        if (acceptor_.joinable() &&
            acceptor_.get_id() != std::this_thread::get_id()) {
            acceptor_.join();
        }
        std::vector<std::thread> connections;
        {
            util::LockGuard lock{connections_lock_};
            // Unblock connection threads parked in read_frame(): shut the
            // sockets down (the owning thread still does the close()).
            // shutdown() never blocks, so holding the lock here is fine.
            for (const int open_fd : open_fds_) ::shutdown(open_fd, SHUT_RDWR);
            connections.swap(connections_);
        }
        for (auto& t : connections) {
            if (t.get_id() != std::this_thread::get_id()) t.join();
        }
        if (on_drain_) on_drain_();
        {
            util::LockGuard lock{stopped_lock_};
            stopped_.store(true, std::memory_order_release);
        }
        stopped_cv_.notify_all();
    });
}

void FrameServer::accept_loop() {
    for (;;) {
        const int listen_fd = listen_fd_.load(std::memory_order_acquire);
        if (listen_fd < 0) break;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // listener closed (stop()) or fatal error
        }
        if (stopping_.load(std::memory_order_acquire)) {
            close_quietly(fd);
            break;
        }
        if (open_connections_.load(std::memory_order_acquire) >=
            cfg_.max_connections) {
            // Structured refusal at the connection level, mirroring the
            // service's admission control.
            protocol::Response overload;
            overload.code = protocol::ErrorCode::Overloaded;
            overload.payload = "too many connections (max " +
                               std::to_string(cfg_.max_connections) + ")";
            protocol::write_frame(fd, overload.encode());
            close_quietly(fd);
            metrics_->refused.inc();
            continue;
        }
        open_connections_.fetch_add(1, std::memory_order_acq_rel);
        metrics_->connections.inc();
        metrics_->open.add(1);
        util::LockGuard lock{connections_lock_};
        open_fds_.push_back(fd);
        connections_.emplace_back([this, fd] { serve_connection(fd); });
    }
}

void FrameServer::serve_connection(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    bool shutdown_verb = false;
    while (!shutdown_verb) {
        auto frame = protocol::read_frame(fd);
        if (!frame) break;  // client closed or sent garbage framing
        metrics_->frames.inc();

        protocol::Response response;
        std::string parse_error;
        if (const auto request = protocol::parse_request(*frame, &parse_error)) {
            if (request->verb == protocol::Verb::Shutdown) shutdown_verb = true;
            obs::trace::Span span{"server.request", "service"};
            span.set_label(protocol::name(request->verb));
            response = handler_(*request);
        } else {
            metrics_->malformed.inc();
            response.code = protocol::ErrorCode::MalformedRequest;
            response.payload = parse_error;
        }
        if (!protocol::write_frame(fd, response.encode())) break;
    }
    {
        util::LockGuard lock{connections_lock_};
        std::erase(open_fds_, fd);
    }
    close_quietly(fd);
    open_connections_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->open.add(-1);

    if (shutdown_verb) {
        // A dedicated stopper thread drives the teardown: stop() joins the
        // connection threads, so this thread must not run it itself. The
        // destructor joins the stopper.
        util::LockGuard lock{stopper_lock_};
        if (!stopper_.joinable()) {
            stopper_ = std::thread{[this] { stop(); }};
        }
    }
}

}  // namespace hsw::service
