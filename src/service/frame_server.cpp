#include "service/frame_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsw::service {

namespace {

void close_quietly(int fd) {
    if (fd >= 0) ::close(fd);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error{"bad IPv4 address: " + host};
    }
    return addr;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One reactor read pass drains at most this much before yielding to the
/// event loop, so a single firehose connection cannot starve its peers.
constexpr std::size_t kMaxReadPerPass = 256u << 10;

/// iovec fan-in per sendmsg: enough to coalesce many small responses into
/// one syscall without building giant arrays for pathological pipelines.
constexpr int kMaxIov = 32;

}  // namespace

struct FrameServer::Metrics {
    obs::Counter& connections;
    obs::Counter& refused;
    obs::Counter& frames;
    obs::Counter& malformed;
    obs::Counter& fast;
    obs::Gauge& open;

    explicit Metrics(const std::string& prefix)
        : connections{obs::counter(prefix + "_connections",
                                   "TCP connections accepted")},
          refused{obs::counter(prefix + "_connections_refused",
                               "Connections refused at the admission cap")},
          frames{obs::counter(prefix + "_frames",
                              "Request frames read off the wire")},
          malformed{obs::counter(prefix + "_frames_malformed",
                                 "Frames that failed request parsing")},
          fast{obs::counter(prefix + "_fast_responses",
                            "Requests answered inline on a reactor thread")},
          open{obs::gauge(prefix + "_open_connections",
                          "Connections currently being served")} {}
};

/// A pending response in a connection's pipeline. Filled by a handler
/// thread (or inline by the fast path), consumed by the owning reactor.
/// `done` is the only cross-thread handoff: the writer stores it with
/// release order after filling `response`, the reactor loads with acquire
/// before reading it.
struct FrameServer::Slot {
    std::atomic<bool> done{false};
    protocol::Response response;
    bool tagged = false;    // tagged slots may flush out of order
    bool shutdown = false;  // flushing this slot triggers server stop
};

struct FrameServer::Conn {
    int fd = -1;
    unsigned reactor_index = 0;
    /// Registered epoll interest (EPOLLIN/EPOLLOUT bits).
    std::uint32_t events = 0;
    bool reads_paused = false;  // backpressure dropped EPOLLIN

    // Read side: accumulated bytes with a consume cursor (compacted
    // lazily so pipelined frames don't pay O(n) erase each).
    std::string in;
    std::size_t in_off = 0;

    // Response pipeline, in request order.
    std::deque<std::shared_ptr<Slot>> slots;

    // Write side: encoded frames pending flush. `head` carries the frame
    // length prefix + response header (+ inline payload for small
    // responses); `body` shares the cached payload allocation -- a hot
    // response's bytes are never copied into the connection.
    struct OutChunk {
        std::string head;
        std::shared_ptr<const std::string> body;
        std::size_t off = 0;  // bytes of head+body already written
        [[nodiscard]] std::size_t size() const {
            return head.size() + (body ? body->size() : 0);
        }
    };
    std::deque<OutChunk> out;
    std::size_t out_bytes = 0;  // unwritten bytes across `out`

    bool shutdown_pending = false;  // flushed a shutdown response
};

/// One event-loop thread: an epoll set, an eventfd wakeup, and a locked
/// inbox for the two cross-thread messages (new connection, slot
/// completion). Everything else is owned by the reactor thread alone.
struct FrameServer::Reactor {
    unsigned index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::atomic<bool> stop{false};

    struct InboxMsg {
        int new_fd = -1;                // >= 0: adopt this connection
        std::weak_ptr<Conn> completed;  // else: flush this connection
    };
    util::Mutex inbox_lock;
    std::vector<InboxMsg> inbox GUARDED_BY(inbox_lock);

    // Reactor-thread-only connection table.
    std::unordered_map<int, std::shared_ptr<Conn>> conns;

    void wake() const {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
    }
};

FrameServer::FrameServer(FrameServerConfig cfg, Handler handler,
                         std::function<void()> on_drain)
    : cfg_{std::move(cfg)},
      handler_{std::move(handler)},
      on_drain_{std::move(on_drain)},
      metrics_{std::make_unique<Metrics>(cfg_.metric_prefix)} {
    cfg_.reactor_threads = std::max(1u, cfg_.reactor_threads);
    if (cfg_.handler_threads == 0) {
        cfg_.handler_threads = std::clamp(cfg_.max_connections, 4u, 64u);
    }
    if (cfg_.max_pending_requests == 0) cfg_.max_pending_requests = 1;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error{"socket() failed"};
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr = make_address(cfg_.bind_address, cfg_.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        // system_category().message(), not strerror(): the latter returns a
        // static buffer and is not thread-safe.
        const std::string reason = std::system_category().message(errno);
        close_quietly(fd);
        throw std::runtime_error{"bind(" + cfg_.bind_address + ":" +
                                 std::to_string(cfg_.port) + ") failed: " + reason};
    }
    if (::listen(fd, 64) != 0) {
        close_quietly(fd);
        throw std::runtime_error{"listen() failed"};
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        close_quietly(fd);
        throw std::runtime_error{"getsockname() failed"};
    }
    port_ = ntohs(bound.sin_port);
    listen_fd_.store(fd, std::memory_order_release);

    reactors_.reserve(cfg_.reactor_threads);
    for (unsigned i = 0; i < cfg_.reactor_threads; ++i) {
        auto reactor = std::make_unique<Reactor>();
        reactor->index = i;
        reactor->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
        reactor->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (reactor->epoll_fd < 0 || reactor->wake_fd < 0) {
            close_quietly(reactor->epoll_fd);
            close_quietly(reactor->wake_fd);
            close_quietly(listen_fd_.exchange(-1));
            throw std::runtime_error{"epoll/eventfd setup failed"};
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = reactor->wake_fd;
        ::epoll_ctl(reactor->epoll_fd, EPOLL_CTL_ADD, reactor->wake_fd, &ev);
        reactors_.push_back(std::move(reactor));
    }
}

FrameServer::~FrameServer() {
    stop();
    std::thread stopper;
    {
        util::LockGuard lock{stopper_lock_};
        stopper.swap(stopper_);
    }
    if (stopper.joinable()) stopper.join();
    for (auto& reactor : reactors_) {
        close_quietly(reactor->epoll_fd);
        close_quietly(reactor->wake_fd);
    }
}

void FrameServer::start() {
    for (auto& reactor : reactors_) {
        reactor->thread = std::thread{[this, r = reactor.get()] { reactor_loop(*r); }};
    }
    pool_threads_.reserve(cfg_.handler_threads);
    for (unsigned i = 0; i < cfg_.handler_threads; ++i) {
        pool_threads_.emplace_back([this] { handler_loop(); });
    }
    acceptor_ = std::thread{[this] { accept_loop(); }};
}

void FrameServer::wait() {
    util::LockGuard lock{stopped_lock_};
    while (!stopped_.load(std::memory_order_acquire)) stopped_cv_.wait(lock);
}

bool FrameServer::stopped() const { return stopped_.load(std::memory_order_acquire); }

void FrameServer::stop() {
    std::call_once(stop_once_, [this] {
        stopping_.store(true, std::memory_order_release);
        // Closing the listener unblocks accept(); shutdown() first so a
        // concurrent accept returns instead of racing the close.
        const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        }
        if (acceptor_.joinable() &&
            acceptor_.get_id() != std::this_thread::get_id()) {
            acceptor_.join();
        }
        // Handler pool: running calls finish (their completions still
        // reach the reactors, which are alive and flushing), queued calls
        // are abandoned -- the same fate the thread-per-connection model
        // gave requests whose sockets stop() shut down mid-read.
        {
            util::LockGuard lock{pool_lock_};
            pool_stop_ = true;
        }
        pool_cv_.notify_all();
        for (auto& t : pool_threads_) {
            if (t.get_id() != std::this_thread::get_id()) t.join();
        }
        // Reactors last: each drains its inbox once more, flushes every
        // response that is ready, closes its connections, and exits.
        for (auto& reactor : reactors_) {
            reactor->stop.store(true, std::memory_order_release);
            reactor->wake();
        }
        for (auto& reactor : reactors_) {
            if (reactor->thread.joinable() &&
                reactor->thread.get_id() != std::this_thread::get_id()) {
                reactor->thread.join();
            }
        }
        if (on_drain_) on_drain_();
        {
            util::LockGuard lock{stopped_lock_};
            stopped_.store(true, std::memory_order_release);
        }
        stopped_cv_.notify_all();
    });
}

void FrameServer::request_stop_from_reactor() {
    // A reactor thread cannot run stop() itself (stop joins the
    // reactors); a dedicated stopper drives the teardown and the
    // destructor reaps it.
    util::LockGuard lock{stopper_lock_};
    if (!stopper_.joinable()) {
        stopper_ = std::thread{[this] { stop(); }};
    }
}

bool FrameServer::submit(std::function<void()> task) {
    {
        util::LockGuard lock{pool_lock_};
        if (pool_stop_) return false;
        pool_queue_.push_back(std::move(task));
    }
    pool_cv_.notify_one();
    return true;
}

void FrameServer::handler_loop() {
    for (;;) {
        std::function<void()> task;
        {
            util::LockGuard lock{pool_lock_};
            while (!pool_stop_ && pool_queue_.empty()) pool_cv_.wait(lock);
            if (pool_stop_) return;  // abandon queued work; see stop()
            task = std::move(pool_queue_.front());
            pool_queue_.erase(pool_queue_.begin());
        }
        task();
    }
}

void FrameServer::post_completion(Reactor& reactor,
                                  const std::weak_ptr<Conn>& conn) {
    {
        util::LockGuard lock{reactor.inbox_lock};
        reactor.inbox.push_back(Reactor::InboxMsg{-1, conn});
    }
    reactor.wake();
}

void FrameServer::accept_loop() {
    for (;;) {
        const int listen_fd = listen_fd_.load(std::memory_order_acquire);
        if (listen_fd < 0) break;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // listener closed (stop()) or fatal error
        }
        if (stopping_.load(std::memory_order_acquire)) {
            close_quietly(fd);
            break;
        }
        if (open_connections_.load(std::memory_order_acquire) >=
            cfg_.max_connections) {
            // Structured refusal at the connection level, mirroring the
            // service's admission control. The socket is still blocking
            // here, so the tiny response frame writes synchronously.
            protocol::Response overload;
            overload.code = protocol::ErrorCode::Overloaded;
            overload.payload = "too many connections (max " +
                               std::to_string(cfg_.max_connections) + ")";
            protocol::write_frame(fd, overload.encode());
            close_quietly(fd);
            metrics_->refused.inc();
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        set_nonblocking(fd);
        open_connections_.fetch_add(1, std::memory_order_acq_rel);
        metrics_->connections.inc();
        metrics_->open.add(1);
        Reactor& reactor =
            *reactors_[next_reactor_.fetch_add(1, std::memory_order_relaxed) %
                       reactors_.size()];
        {
            util::LockGuard lock{reactor.inbox_lock};
            reactor.inbox.push_back(Reactor::InboxMsg{fd, {}});
        }
        reactor.wake();
    }
}

// hsw:reactor-thread -- the event loop and everything it calls run with
// nonblocking fds only; a blocking socket call here stalls every
// connection this reactor owns (see hsw_lint's reactor-blocking rule).
void FrameServer::reactor_loop(Reactor& reactor) {
    epoll_event events[64];
    for (;;) {
        const int n = ::epoll_wait(reactor.epoll_fd, events,
                                   static_cast<int>(std::size(events)), -1);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == reactor.wake_fd) {
                std::uint64_t drain = 0;
                while (::read(reactor.wake_fd, &drain, sizeof drain) > 0) {
                }
                continue;
            }
            const auto it = reactor.conns.find(fd);
            if (it == reactor.conns.end()) continue;  // closed earlier this pass
            const std::shared_ptr<Conn> conn = it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                close_connection(reactor, *conn);
                continue;
            }
            if (events[i].events & EPOLLOUT) on_writable(reactor, *conn);
            if (conn->fd >= 0 && (events[i].events & EPOLLIN)) {
                on_readable(reactor, *conn);
            }
        }
        // Cross-thread messages: adopt new connections, flush completed
        // slots. Processed after the event batch so a recycled fd can
        // never alias a stale event.
        std::vector<Reactor::InboxMsg> inbox;
        {
            util::LockGuard lock{reactor.inbox_lock};
            inbox.swap(reactor.inbox);
        }
        for (auto& msg : inbox) {
            if (msg.new_fd >= 0) {
                add_connection(reactor, msg.new_fd);
            } else if (auto conn = msg.completed.lock(); conn && conn->fd >= 0) {
                flush_ready(reactor, *conn);
            }
        }
        if (reactor.stop.load(std::memory_order_acquire)) {
            // Final pass: everything completed has been flushed above
            // (the handler pool joined before the stop signal); close out.
            std::vector<std::shared_ptr<Conn>> remaining;
            remaining.reserve(reactor.conns.size());
            for (auto& [fd, conn] : reactor.conns) remaining.push_back(conn);
            for (auto& conn : remaining) close_connection(reactor, *conn);
            break;
        }
    }
}

void FrameServer::add_connection(Reactor& reactor, int fd) {
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->reactor_index = reactor.index;
    conn->events = EPOLLIN;
    epoll_event ev{};
    ev.events = conn->events;
    ev.data.fd = fd;
    if (::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close_quietly(fd);
        open_connections_.fetch_sub(1, std::memory_order_acq_rel);
        metrics_->open.add(-1);
        return;
    }
    reactor.conns.emplace(fd, std::move(conn));
}

void FrameServer::close_connection(Reactor& reactor, Conn& conn) {
    if (conn.fd < 0) return;
    ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    const int fd = conn.fd;
    conn.fd = -1;
    // Outstanding handler tasks still hold their Slot shared_ptrs; they
    // complete into orphaned slots and their inbox messages fail to lock
    // the dead weak_ptr. Nothing dangles.
    reactor.conns.erase(fd);
    open_connections_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->open.add(-1);
}

void FrameServer::update_interest(Reactor& reactor, Conn& conn) {
    std::uint32_t want = 0;
    if (!conn.reads_paused) want |= EPOLLIN;
    if (!conn.out.empty()) want |= EPOLLOUT;
    if (want == conn.events) return;
    conn.events = want;
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = conn.fd;
    ::epoll_ctl(reactor.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void FrameServer::on_readable(Reactor& reactor, Conn& conn) {
    char buf[64 << 10];
    std::size_t read_this_pass = 0;
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            read_this_pass += static_cast<std::size_t>(n);
            if (read_this_pass >= kMaxReadPerPass) break;  // fairness bound
            continue;
        }
        if (n == 0) {  // peer closed
            close_connection(reactor, conn);
            return;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_connection(reactor, conn);
        return;
    }
    parse_frames(reactor, conn);
}

void FrameServer::parse_frames(Reactor& reactor, Conn& conn) {
    for (;;) {
        const std::size_t avail = conn.in.size() - conn.in_off;
        if (avail < 4) break;
        const auto* p =
            reinterpret_cast<const unsigned char*>(conn.in.data() + conn.in_off);
        const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                                  (static_cast<std::uint32_t>(p[1]) << 16) |
                                  (static_cast<std::uint32_t>(p[2]) << 8) |
                                  static_cast<std::uint32_t>(p[3]);
        if (len > protocol::kMaxFrameBytes) {
            // Garbage framing is unrecoverable -- same disconnect the old
            // read_frame() produced.
            close_connection(reactor, conn);
            return;
        }
        if (avail < 4u + len) break;
        dispatch_frame(reactor, conn,
                       std::string_view{conn.in}.substr(conn.in_off + 4, len));
        if (conn.fd < 0) return;  // dispatch closed the connection
        conn.in_off += 4u + len;
    }
    // Compact lazily: only when the consumed prefix dominates the buffer.
    if (conn.in_off > 0 && conn.in_off >= conn.in.size() / 2) {
        conn.in.erase(0, conn.in_off);
        conn.in_off = 0;
    }
    flush_ready(reactor, conn);
    // Backpressure: a connection that has pipelined past the cap stops
    // being read until the client drains responses.
    conn.reads_paused = conn.slots.size() >= cfg_.max_pending_requests ||
                        conn.out_bytes >= cfg_.max_output_bytes;
    if (conn.fd >= 0) update_interest(reactor, conn);
}

void FrameServer::enqueue_malformed(Conn& conn, std::string reason) {
    metrics_->malformed.inc();
    auto slot = std::make_shared<Slot>();
    slot->response.code = protocol::ErrorCode::MalformedRequest;
    slot->response.payload = std::move(reason);
    slot->done.store(true, std::memory_order_release);
    conn.slots.push_back(std::move(slot));
}

void FrameServer::dispatch_frame(Reactor& reactor, Conn& conn,
                                 std::string_view frame) {
    metrics_->frames.inc();
    if (protocol::looks_like_batch(frame)) {
        std::string parse_error;
        auto requests = protocol::parse_batch(frame, &parse_error);
        if (!requests) {
            // A structurally bad batch is rejected whole with one frame;
            // the connection survives, like any other malformed request.
            enqueue_malformed(conn, std::move(parse_error));
            return;
        }
        if (batch_handler_) {
            std::vector<std::shared_ptr<Slot>> slots;
            slots.reserve(requests->size());
            for (const auto& request : *requests) {
                auto slot = std::make_shared<Slot>();
                slot->tagged = request.tag != 0;
                slot->shutdown = request.verb == protocol::Verb::Shutdown;
                conn.slots.push_back(slot);
                slots.push_back(std::move(slot));
            }
            const std::weak_ptr<Conn> wconn = reactor.conns.at(conn.fd);
            submit([this, &reactor, wconn, slots = std::move(slots),
                    requests = std::move(*requests)]() mutable {
                std::vector<protocol::Response> responses;
                try {
                    responses = batch_handler_(requests);
                } catch (const std::exception& e) {
                    responses.clear();
                    for (const auto& request : requests) {
                        protocol::Response r;
                        r.code = protocol::ErrorCode::Internal;
                        r.payload = e.what();
                        r.tag = request.tag;
                        responses.push_back(std::move(r));
                    }
                }
                for (std::size_t i = 0; i < slots.size(); ++i) {
                    protocol::Response r = i < responses.size()
                                               ? std::move(responses[i])
                                               : protocol::Response{};
                    if (i >= responses.size()) {
                        r.code = protocol::ErrorCode::Internal;
                        r.payload = "batch handler returned too few responses";
                    }
                    r.tag = requests[i].tag;
                    slots[i]->response = std::move(r);
                    slots[i]->done.store(true, std::memory_order_release);
                }
                post_completion(reactor, wconn);
            });
            return;
        }
        // No batch handler: expand across the handler pool, one dispatch
        // per sub-request (the service's own pool parallelizes them).
        for (auto& request : *requests) {
            dispatch_single(reactor, conn, std::move(request));
        }
        return;
    }

    std::string parse_error;
    auto request = protocol::parse_request(frame, &parse_error);
    if (!request) {
        enqueue_malformed(conn, std::move(parse_error));
        return;
    }
    dispatch_single(reactor, conn, std::move(*request));
}

void FrameServer::dispatch_single(Reactor& reactor, Conn& conn,
                                  protocol::Request request) {
    auto slot = std::make_shared<Slot>();
    slot->tagged = request.tag != 0;
    slot->shutdown = request.verb == protocol::Verb::Shutdown;
    conn.slots.push_back(slot);

    // Inline fast path: zero handoffs for requests the service can answer
    // from its caches with shared locks only.
    if (fast_handler_) {
        // The v1.4 trace header scopes the handler so hot-path spans (and
        // the access log) attach to the caller's trace.
        obs::trace::ContextScope trace_scope{obs::trace::TraceContext{
            request.trace_id, request.trace_parent, request.trace_flags}};
        if (auto response = fast_handler_(request)) {
            response->tag = request.tag;
            slot->response = std::move(*response);
            slot->done.store(true, std::memory_order_release);
            metrics_->fast.inc();
            return;
        }
    }

    const std::weak_ptr<Conn> wconn = reactor.conns.at(conn.fd);
    const bool submitted =
        submit([this, &reactor, wconn, slot, request = std::move(request)] {
            obs::trace::ContextScope trace_scope{obs::trace::TraceContext{
                request.trace_id, request.trace_parent, request.trace_flags}};
            obs::trace::Span span{"server.request", "service"};
            span.set_label(protocol::name(request.verb));
            protocol::Response response;
            try {
                response = handler_(request);
            } catch (const std::exception& e) {
                response.code = protocol::ErrorCode::Internal;
                response.payload = e.what();
            }
            response.tag = request.tag;
            slot->response = std::move(response);
            slot->done.store(true, std::memory_order_release);
            post_completion(reactor, wconn);
        });
    if (!submitted) {
        slot->response.code = protocol::ErrorCode::ShuttingDown;
        slot->response.payload = "server is stopping";
        slot->done.store(true, std::memory_order_release);
    }
}

void FrameServer::flush_ready(Reactor& reactor, Conn& conn) {
    if (conn.fd < 0) return;
    // Move completed slots into the output queue. Untagged responses only
    // flush from the head (strict request order, the pre-v1.3 contract);
    // tagged responses flush as soon as they are done.
    bool blocked = false;
    for (auto it = conn.slots.begin(); it != conn.slots.end();) {
        Slot& slot = **it;
        if (!slot.done.load(std::memory_order_acquire)) {
            blocked = true;
            ++it;
            continue;
        }
        if (blocked && !slot.tagged) {
            ++it;
            continue;
        }
        Conn::OutChunk chunk;
        const std::string_view payload = slot.response.payload_view();
        const std::uint32_t frame_len = static_cast<std::uint32_t>(
            slot.response.encode_header().size() + payload.size());
        const char prefix[4] = {
            static_cast<char>(frame_len >> 24), static_cast<char>(frame_len >> 16),
            static_cast<char>(frame_len >> 8), static_cast<char>(frame_len)};
        chunk.head.assign(prefix, sizeof prefix);
        chunk.head += slot.response.encode_header();
        if (slot.response.shared_payload) {
            chunk.body = slot.response.shared_payload;  // zero-copy body
        } else {
            chunk.head += slot.response.payload;
        }
        conn.out_bytes += chunk.size();
        conn.out.push_back(std::move(chunk));
        if (slot.shutdown) conn.shutdown_pending = true;
        it = conn.slots.erase(it);
    }
    if (!flush_output(reactor, conn)) return;  // connection died
    if (conn.reads_paused && conn.slots.size() < cfg_.max_pending_requests / 2 &&
        conn.out_bytes < cfg_.max_output_bytes / 2) {
        conn.reads_paused = false;
    }
    update_interest(reactor, conn);
    if (conn.shutdown_pending && conn.out.empty()) {
        // The shutdown response reached the kernel; now tear down.
        conn.shutdown_pending = false;
        request_stop_from_reactor();
    }
}

bool FrameServer::flush_output(Reactor& reactor, Conn& conn) {
    while (!conn.out.empty()) {
        iovec iov[kMaxIov];
        int iov_count = 0;
        for (const auto& chunk : conn.out) {
            if (iov_count >= kMaxIov - 1) break;
            std::size_t off = chunk.off;
            if (off < chunk.head.size()) {
                iov[iov_count].iov_base =
                    const_cast<char*>(chunk.head.data()) + off;
                iov[iov_count].iov_len = chunk.head.size() - off;
                ++iov_count;
                off = 0;
            } else {
                off -= chunk.head.size();
            }
            if (chunk.body && off < chunk.body->size()) {
                iov[iov_count].iov_base =
                    const_cast<char*>(chunk.body->data()) + off;
                iov[iov_count].iov_len = chunk.body->size() - off;
                ++iov_count;
            }
        }
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = static_cast<std::size_t>(iov_count);
        // sendmsg + MSG_NOSIGNAL: a dead peer surfaces as EPIPE -> close,
        // never SIGPIPE killing the process.
        const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                update_interest(reactor, conn);  // park on EPOLLOUT
                return true;
            }
            close_connection(reactor, conn);
            return false;
        }
        std::size_t advanced = static_cast<std::size_t>(n);
        conn.out_bytes -= advanced;
        while (advanced > 0 && !conn.out.empty()) {
            Conn::OutChunk& chunk = conn.out.front();
            const std::size_t remaining = chunk.size() - chunk.off;
            if (advanced >= remaining) {
                advanced -= remaining;
                conn.out.pop_front();
            } else {
                chunk.off += advanced;
                advanced = 0;
            }
        }
    }
    return true;
}

void FrameServer::on_writable(Reactor& reactor, Conn& conn) {
    if (!flush_output(reactor, conn)) return;
    if (conn.reads_paused && conn.slots.size() < cfg_.max_pending_requests / 2 &&
        conn.out_bytes < cfg_.max_output_bytes / 2) {
        conn.reads_paused = false;
    }
    update_interest(reactor, conn);
    if (conn.shutdown_pending && conn.out.empty()) {
        conn.shutdown_pending = false;
        request_stop_from_reactor();
    }
}
// hsw:end-reactor-thread

}  // namespace hsw::service
