#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/trace.hpp"

namespace hsw::service {

namespace {

void close_quietly(int fd) {
    if (fd >= 0) ::close(fd);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error{"bad IPv4 address: " + host};
    }
    return addr;
}

}  // namespace

SurveyServer::SurveyServer(ServerConfig cfg)
    : service_{std::make_unique<SurveyService>(cfg.service)} {
    FrameServerConfig front;
    front.bind_address = std::move(cfg.bind_address);
    front.port = cfg.port;
    front.max_connections = cfg.max_connections;
    front.reactor_threads = cfg.reactor_threads;
    front.handler_threads = cfg.handler_threads;
    frontend_ = std::make_unique<FrameServer>(
        std::move(front),
        [svc = service_.get()](const protocol::Request& request) {
            return svc->handle(request);
        },
        [svc = service_.get()] { svc->drain(); });
    // Hot queries, pings, and health checks complete inline on the
    // reactor thread -- zero handoffs between the socket and the caches.
    frontend_->set_fast_handler(
        [svc = service_.get()](const protocol::Request& request) {
            return svc->try_handle_fast(request);
        });
}

ServiceClient::ServiceClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error{"socket() failed"};
    sockaddr_in addr = make_address(host, port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string reason = std::system_category().message(errno);
        close_quietly(fd_);
        fd_ = -1;
        throw std::runtime_error{"connect(" + host + ":" + std::to_string(port) +
                                 ") failed: " + reason};
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

ServiceClient::~ServiceClient() { close_quietly(fd_); }

protocol::Response ServiceClient::call(const protocol::Request& request) {
    obs::trace::Span span{"client.call", "client"};
    if (span.armed()) span.set_label(protocol::name(request.verb));
    protocol::Request traced = request;
    const obs::trace::TraceContext ctx = obs::trace::current_context();
    if (ctx.valid() && trace_supported_ != false) {
        traced.trace_id = ctx.trace_id;
        traced.trace_parent = ctx.span_id;
        traced.trace_flags = ctx.flags;
    }
    if (!protocol::write_frame(fd_, traced.encode())) {
        throw std::runtime_error{"request write failed"};
    }
    auto frame = protocol::read_frame(fd_);
    if (!frame) throw std::runtime_error{"connection closed mid-response"};
    std::string error;
    auto response = protocol::parse_response(*frame, &error);
    if (!response) throw std::runtime_error{"bad response frame: " + error};
    if (traced.has_trace()) {
        if (protocol::is_unknown_trace_field(*response)) {
            // Pre-v1.4 server: remember, strip, retry this one call.
            trace_supported_ = false;
            traced.clear_trace();
            if (!protocol::write_frame(fd_, traced.encode())) {
                throw std::runtime_error{"request write failed"};
            }
            frame = protocol::read_frame(fd_);
            if (!frame) throw std::runtime_error{"connection closed mid-response"};
            response = protocol::parse_response(*frame, &error);
            if (!response) throw std::runtime_error{"bad response frame: " + error};
        } else {
            trace_supported_ = true;
        }
    }
    return *response;
}

std::vector<protocol::Response> ServiceClient::call_pipelined(
    const std::vector<protocol::Request>& requests) {
    obs::trace::Span span{"client.call", "client"};
    if (span.armed()) span.set_label("batch");
    std::vector<protocol::Request> traced = requests;
    const obs::trace::TraceContext ctx = obs::trace::current_context();
    if (ctx.valid() && trace_supported_ != false) {
        for (protocol::Request& req : traced) {
            req.trace_id = ctx.trace_id;
            req.trace_parent = ctx.span_id;
            req.trace_flags = ctx.flags;
        }
    }
    return protocol::call_batch_over_fd(fd_, traced, batch_supported_,
                                        trace_supported_);
}

}  // namespace hsw::service
