// SurveyService: the long-lived, concurrent front of the experiment engine.
//
// A query names a registered experiment (plus sweep point, seed, audit
// mode) and resolves to engine jobs by spec content hash. Three production
// mechanisms sit between the caller and the deterministic engine:
//
//   1. a sharded in-memory LRU hot cache (HotCache) in front of the
//      on-disk ResultCache -- repeat queries never touch the disk;
//   2. single-flight request coalescing (RequestCoalescer) -- concurrent
//      identical specs compute once and fan out to every waiter;
//   3. admission control -- compute runs on a bounded worker pool; a full
//      queue rejects with ErrorCode::Overloaded (never blocks the socket
//      threads indefinitely), per-request deadlines turn into
//      DeadlineExceeded rejections, and drain() finishes in-flight work
//      before shutdown.
//
// Determinism contract: payload bytes served by the service are identical
// to what `hsw_survey` writes for the same spec -- the service only adds
// caching and scheduling, never touches result bytes. Rejections are
// structured (protocol::ErrorCode) and mirrored as ServiceAdmission
// diagnostics; an overloaded service degrades by refusing, not by hanging.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "engine/result_cache.hpp"
#include "engine/survey_experiments.hpp"
#include "service/coalescer.hpp"
#include "service/hot_cache.hpp"
#include "service/protocol.hpp"
#include "util/sync.hpp"

namespace hsw::service {

struct ServiceConfig {
    /// Compute worker threads (clamped to at least 1). Socket/caller
    /// threads only wait; all job computation happens here.
    unsigned workers = 4;
    /// Pending (queued, not yet running) compute tasks before admission
    /// control rejects with Overloaded.
    std::size_t max_queue = 64;
    HotCacheConfig hot_cache;
    /// nullopt disables the on-disk layer (hot cache still applies).
    std::optional<std::filesystem::path> disk_cache_dir;
    std::string cache_salt{engine::kCodeVersion};
    /// Applied when a request carries deadline_ms == 0; zero = no deadline.
    std::chrono::milliseconds default_deadline{0};
    /// Test seam: builds the experiment registry a request resolves
    /// against. Defaults to survey_experiments() with the request's
    /// seed/audit/quick folded into SurveyTuning. Registries are memoized
    /// per (seed, audit, quick) for the life of the service, so returned
    /// Job objects must be self-contained.
    std::function<std::vector<engine::Experiment>(const protocol::Request&)>
        registry_factory;
};

struct ServiceStats {
    std::uint64_t received = 0;           // query() calls
    std::uint64_t completed = 0;          // successful responses
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t rejected_unknown = 0;   // unknown experiment or point
    std::uint64_t rejected_draining = 0;
    std::uint64_t failed = 0;             // job threw (ErrorCode::Internal)
    // Per-job provenance tallies (a whole-experiment query counts each job).
    std::uint64_t hot_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t computed = 0;
    std::uint64_t coalesced = 0;          // follower joins on in-flight specs
    /// Whole responses answered straight from the route_key cache -- the
    /// fastest path; such a query never touches the registry or its jobs.
    std::uint64_t response_hits = 0;
    HotCacheStats hot_cache;
    engine::ResultCache::Counters disk_cache;

    /// Multi-line text block (the `stats` verb's payload).
    [[nodiscard]] std::string render() const;
};

class SurveyService {
public:
    explicit SurveyService(ServiceConfig cfg = {});
    /// Drains: in-flight jobs complete, then workers exit.
    ~SurveyService();

    SurveyService(const SurveyService&) = delete;
    SurveyService& operator=(const SurveyService&) = delete;

    struct QueryResult {
        protocol::ErrorCode code = protocol::ErrorCode::None;
        protocol::Source source = protocol::Source::Computed;
        /// Shared payload bytes on success (hot-cache entries hand out the
        /// same allocation to every reader).
        std::shared_ptr<const std::string> payload;
        std::string message;  // rejection detail
        [[nodiscard]] bool ok() const { return code == protocol::ErrorCode::None; }
    };

    /// Blocking query; callable from any number of threads concurrently.
    /// point "*" runs every job of the experiment and returns the
    /// assembled artifacts packed as blob sections ("csv:<filename>",
    /// "render:<filename>"); a named point returns that job's raw payload
    /// blob, byte-identical to the batch engine's cached bytes.
    [[nodiscard]] QueryResult query(const protocol::Request& request);

    /// Full verb dispatch (ping/query/stats/shutdown) to a wire response.
    [[nodiscard]] protocol::Response handle(const protocol::Request& request);

    /// Non-blocking dispatch attempt for reactor threads: answers ping,
    /// health, and response-cache query hits inline (shared locks and
    /// atomics only -- never the worker pool, disk, or a wait). nullopt
    /// means "would block or needs the slow path"; the caller must then
    /// route the request through handle() on a handler thread.
    [[nodiscard]] std::optional<protocol::Response> try_handle_fast(
        const protocol::Request& request);

    /// Stops admitting new work, waits for queued + running jobs to
    /// finish, and joins the workers. Idempotent, callable concurrently
    /// with query() (late callers get ShuttingDown).
    void drain() EXCLUDES(pool_lock_);

    [[nodiscard]] bool draining() const;
    /// Set once a Shutdown verb has been handled; the server polls this.
    [[nodiscard]] bool shutdown_requested() const;

    [[nodiscard]] ServiceStats stats() const;
    /// Admission rejections as structured diagnostics (snapshot copy).
    [[nodiscard]] std::vector<analysis::Diagnostic> admission_diagnostics() const
        EXCLUDES(diag_lock_);

private:
    struct Registry {
        std::vector<engine::Experiment> experiments;
        std::unique_ptr<engine::JobIndex> index;
    };
    struct JobOutcome {
        protocol::ErrorCode code = protocol::ErrorCode::None;
        protocol::Source source = protocol::Source::Computed;
        std::shared_ptr<const std::string> payload;
        std::string message;
    };
    struct StartedJob {
        bool done = false;      // hot hit: `outcome` already holds the payload
        JobOutcome outcome;     // valid when done
        RequestCoalescer::Ticket ticket;  // valid when !done
    };

    [[nodiscard]] std::shared_ptr<const Registry> registry_for(
        const protocol::Request& request) EXCLUDES(registry_lock_);
    /// Hot-cache probe, coalescer join, and (for leaders) pool submission.
    [[nodiscard]] StartedJob start_job(const engine::Job& job,
                                       std::chrono::steady_clock::time_point deadline,
                                       bool has_deadline,
                                       std::shared_ptr<const Registry> keepalive);
    /// Waits out a ticket and maps exceptions to structured codes.
    [[nodiscard]] JobOutcome await_job(const engine::Job& job,
                                       const RequestCoalescer::Ticket& ticket,
                                       std::chrono::steady_clock::time_point deadline,
                                       bool has_deadline);
    bool try_submit(std::function<void()> task) EXCLUDES(pool_lock_);
    void worker_loop() EXCLUDES(pool_lock_);
    void note_rejection(protocol::ErrorCode code, const std::string& subject,
                        const std::string& message, double value, double bound)
        EXCLUDES(diag_lock_);

    ServiceConfig cfg_;
    HotCache hot_;
    std::optional<engine::ResultCache> disk_;
    RequestCoalescer coalescer_;

    // Reader-writer: every query resolves a registry, but new (seed,
    // audit, quick) tuples are rare -- reads must not serialize.
    mutable util::SharedMutex registry_lock_;
    std::map<std::string, std::shared_ptr<const Registry>> registries_
        GUARDED_BY(registry_lock_);

    // Bounded work queue + workers.
    util::Mutex pool_lock_;
    util::CondVar pool_task_cv_;
    util::CondVar pool_idle_cv_;
    std::deque<std::function<void()>> queue_ GUARDED_BY(pool_lock_);
    unsigned active_ GUARDED_BY(pool_lock_) = 0;
    bool stopping_ GUARDED_BY(pool_lock_) = false;
    std::vector<std::thread> workers_;  // written only by the constructor

    std::atomic<bool> draining_{false};
    std::atomic<bool> shutdown_requested_{false};
    std::once_flag drain_once_;

    // Counters (relaxed; stats() is a snapshot, not a barrier).
    std::atomic<std::uint64_t> received_{0}, completed_{0}, rejected_overload_{0},
        rejected_deadline_{0}, rejected_unknown_{0}, rejected_draining_{0},
        failed_{0}, hot_hits_{0}, disk_hits_{0}, computed_{0}, coalesced_{0},
        response_hits_{0};

    mutable util::Mutex diag_lock_;
    // Default-constructed capacity is the 256 this sink always used.
    analysis::DiagnosticSink diagnostics_ GUARDED_BY(diag_lock_);
};

}  // namespace hsw::service
