// Single-flight request coalescing keyed on spec content hashes.
//
// When identical ExperimentSpecs arrive concurrently, exactly one caller
// (the *leader*) computes the payload; everyone else (the *followers*)
// blocks on a shared future and receives the same shared payload bytes.
// The leader is chosen atomically at join() time: the first joiner of a
// key creates the flight, later joiners attach to it. Once the leader
// completes (or fails) the flight, it leaves the table -- a subsequent
// join starts a fresh computation, which is what a cache-fronted service
// wants: post-completion requests should hit the hot cache instead.
//
// Failure is not cached: fail() wakes the followers with the error and
// clears the key, so a transient failure doesn't poison later requests.
#pragma once

#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "service/protocol.hpp"
#include "util/sync.hpp"

namespace hsw::service {

class RequestCoalescer {
public:
    /// What a flight delivers: the payload bytes (shared between the
    /// leader and all followers) plus where the leader got them, so a
    /// follower's response reports the true provenance.
    struct Value {
        std::shared_ptr<const std::string> payload;
        protocol::Source source = protocol::Source::Computed;
    };

    struct Ticket {
        /// Resolves when the flight's leader completes or fails.
        std::shared_future<Value> result;
        /// True for exactly one joiner per flight: that caller MUST later
        /// call complete() or fail() for the same key, or followers hang.
        bool leader = false;
    };

    struct Stats {
        std::uint64_t leaders = 0;
        std::uint64_t followers = 0;
        std::size_t in_flight = 0;
    };

    /// Joins (or starts) the flight for `key`.
    [[nodiscard]] Ticket join(const std::string& key) EXCLUDES(lock_);

    /// Leader-only: publishes the payload to every waiter and retires the
    /// flight.
    void complete(const std::string& key, Value value) EXCLUDES(lock_);

    /// Leader-only: propagates `error` to every waiter and retires the
    /// flight.
    void fail(const std::string& key, std::exception_ptr error) EXCLUDES(lock_);

    [[nodiscard]] Stats stats() const EXCLUDES(lock_);

private:
    struct Flight {
        std::promise<Value> promise;
        std::shared_future<Value> future;
    };

    mutable util::Mutex lock_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
        GUARDED_BY(lock_);
    std::uint64_t leaders_ GUARDED_BY(lock_) = 0;
    std::uint64_t followers_ GUARDED_BY(lock_) = 0;
};

}  // namespace hsw::service
