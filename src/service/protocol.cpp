#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "engine/sha256.hpp"
#include "engine/spec.hpp"  // engine::name(AuditMode)

namespace hsw::service::protocol {

namespace {

void set_error(std::string* error, std::string_view reason) {
    if (error) *error = std::string{reason};
}

/// Consumes "<key> <value>\n" from the front of `text`; empty value lines
/// ("<key>\n") are legal. False when `text` is exhausted.
bool next_line(std::string_view& text, std::string_view& key, std::string_view& value) {
    if (text.empty()) return false;
    const std::size_t eol = text.find('\n');
    std::string_view line = eol == std::string_view::npos ? text : text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) {
        key = line;
        value = {};
    } else {
        key = line.substr(0, space);
        value = line.substr(space + 1);
    }
    return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    char* end = nullptr;
    const std::string copy{text};
    errno = 0;
    const unsigned long long v = std::strtoull(copy.c_str(), &end, 0);
    if (errno != 0 || end != copy.c_str() + copy.size()) return false;
    out = v;
    return true;
}

bool parse_bool(std::string_view text, bool& out) {
    if (text == "0") {
        out = false;
    } else if (text == "1") {
        out = true;
    } else {
        return false;
    }
    return true;
}

bool consume_magic(std::string_view& text, std::string* error) {
    std::string_view key, value;
    if (!next_line(text, key, value)) {
        set_error(error, "bad magic line");
        return false;
    }
    const std::string line = std::string{key} + ' ' + std::string{value};
    // Exact "hsw-survey-rpc v1", or "hsw-survey-rpc v1.<digits>" from a
    // peer that self-identifies a minor revision -- additive capabilities
    // only, so any v1.x magic is acceptable.
    if (line == kMagic) return true;
    if (line.size() > kMagic.size() + 1 &&
        line.compare(0, kMagic.size(), kMagic) == 0 &&
        line[kMagic.size()] == '.') {
        bool digits = true;
        for (std::size_t i = kMagic.size() + 1; i < line.size(); ++i) {
            if (line[i] < '0' || line[i] > '9') digits = false;
        }
        if (digits) return true;
    }
    set_error(error, "bad magic line");
    return false;
}

/// Full I/O loop; false on error or EOF before `len` bytes.
bool read_exact(int fd, char* buf, std::size_t len) {
    while (len > 0) {
        const ssize_t n = ::read(fd, buf, len);
        if (n == 0) return false;
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        buf += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool write_all(int fd, const char* buf, std::size_t len) {
    while (len > 0) {
        // MSG_NOSIGNAL: writing into a socket whose peer died must surface
        // as EPIPE (-> false -> the caller's failover path), not SIGPIPE
        // killing the process. The router hits this on every shard death.
        // Frames also flow over pipes (tests, future local IPC), where
        // send() is ENOTSOCK -- fall back to plain write() there.
        ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf, len);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        buf += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

std::string_view name(Verb v) {
    switch (v) {
        case Verb::Ping: return "ping";
        case Verb::Query: return "query";
        case Verb::Stats: return "stats";
        case Verb::Shutdown: return "shutdown";
        case Verb::Metrics: return "metrics";
        case Verb::Health: return "health";
        case Verb::TraceDump: return "trace_dump";
        case Verb::Dump: return "dump";
    }
    return "ping";
}

std::string_view name(MetricsFormat f) {
    switch (f) {
        case MetricsFormat::Prometheus: return "prometheus";
        case MetricsFormat::Json: return "json";
    }
    return "prometheus";
}

std::string_view name(ErrorCode c) {
    switch (c) {
        case ErrorCode::None: return "none";
        case ErrorCode::MalformedRequest: return "malformed-request";
        case ErrorCode::UnknownExperiment: return "unknown-experiment";
        case ErrorCode::UnknownPoint: return "unknown-point";
        case ErrorCode::Overloaded: return "overloaded";
        case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
        case ErrorCode::ShuttingDown: return "shutting-down";
        case ErrorCode::Internal: return "internal";
        case ErrorCode::Unavailable: return "unavailable";
    }
    return "internal";
}

std::string_view name(Source s) {
    switch (s) {
        case Source::HotCache: return "hot-cache";
        case Source::DiskCache: return "disk-cache";
        case Source::Computed: return "computed";
    }
    return "computed";
}

std::string Request::encode() const {
    std::string out{kMagic};
    out += '\n';
    out += "verb ";
    out += name(verb);
    out += '\n';
    if (verb == Verb::Query) {
        out += "experiment " + experiment + '\n';
        out += "point " + point + '\n';
        char seed_buf[32];
        std::snprintf(seed_buf, sizeof seed_buf, "seed 0x%016llx\n",
                      static_cast<unsigned long long>(seed));
        out += seed_buf;
        out += "audit ";
        out += engine::name(audit);
        out += '\n';
        out += "quick ";
        out += quick ? '1' : '0';
        out += '\n';
    }
    if (verb == Verb::Metrics) {
        out += "format ";
        out += name(format);
        out += '\n';
    }
    if (tag != 0) out += "tag " + std::to_string(tag) + '\n';
    if (trace_id != 0) {
        char trace_buf[64];
        std::snprintf(trace_buf, sizeof trace_buf,
                      "trace 0x%016llx 0x%016llx %u\n",
                      static_cast<unsigned long long>(trace_id),
                      static_cast<unsigned long long>(trace_parent),
                      trace_flags);
        out += trace_buf;
    }
    out += "deadline-ms " + std::to_string(deadline_ms) + '\n';
    return out;
}

std::optional<Request> parse_request(std::string_view text, std::string* error) {
    if (!consume_magic(text, error)) return std::nullopt;

    Request req;
    bool have_verb = false;
    std::string_view key, value;
    while (next_line(text, key, value)) {
        if (key == "verb") {
            if (value == "ping") {
                req.verb = Verb::Ping;
            } else if (value == "query") {
                req.verb = Verb::Query;
            } else if (value == "stats") {
                req.verb = Verb::Stats;
            } else if (value == "shutdown") {
                req.verb = Verb::Shutdown;
            } else if (value == "metrics") {
                req.verb = Verb::Metrics;
            } else if (value == "health") {
                req.verb = Verb::Health;
            } else if (value == "trace_dump") {
                req.verb = Verb::TraceDump;
            } else if (value == "dump") {
                req.verb = Verb::Dump;
            } else {
                set_error(error, "unknown verb");
                return std::nullopt;
            }
            have_verb = true;
        } else if (key == "experiment") {
            req.experiment = std::string{value};
        } else if (key == "point") {
            if (value.empty()) {
                set_error(error, "empty point");
                return std::nullopt;
            }
            req.point = std::string{value};
        } else if (key == "seed") {
            if (!parse_u64(value, req.seed)) {
                set_error(error, "bad seed");
                return std::nullopt;
            }
        } else if (key == "audit") {
            if (value == "off") {
                req.audit = analysis::AuditMode::Off;
            } else if (value == "warn") {
                req.audit = analysis::AuditMode::Warn;
            } else if (value == "strict") {
                req.audit = analysis::AuditMode::Strict;
            } else {
                set_error(error, "bad audit mode");
                return std::nullopt;
            }
        } else if (key == "quick") {
            if (!parse_bool(value, req.quick)) {
                set_error(error, "bad quick flag");
                return std::nullopt;
            }
        } else if (key == "format") {
            if (value == "prometheus") {
                req.format = MetricsFormat::Prometheus;
            } else if (value == "json") {
                req.format = MetricsFormat::Json;
            } else {
                set_error(error, "bad metrics format");
                return std::nullopt;
            }
        } else if (key == "deadline-ms") {
            std::uint64_t ms = 0;
            if (!parse_u64(value, ms) || ms > 0xFFFFFFFFull) {
                set_error(error, "bad deadline-ms");
                return std::nullopt;
            }
            req.deadline_ms = static_cast<std::uint32_t>(ms);
        } else if (key == "tag") {
            if (!parse_u64(value, req.tag) || req.tag == 0) {
                set_error(error, "bad tag");
                return std::nullopt;
            }
        } else if (key == "trace") {
            // v1.4: "<trace_id> <parent_span_id> <flags>".
            const std::size_t s1 = value.find(' ');
            const std::size_t s2 =
                s1 == std::string_view::npos ? s1 : value.find(' ', s1 + 1);
            std::uint64_t flags = 0;
            if (s2 == std::string_view::npos ||
                value.find(' ', s2 + 1) != std::string_view::npos ||
                !parse_u64(value.substr(0, s1), req.trace_id) ||
                !parse_u64(value.substr(s1 + 1, s2 - s1 - 1), req.trace_parent) ||
                !parse_u64(value.substr(s2 + 1), flags) || req.trace_id == 0 ||
                flags > 0xFFFFFFFFull) {
                set_error(error, "bad trace header");
                return std::nullopt;
            }
            req.trace_flags = static_cast<std::uint32_t>(flags);
        } else if (!key.empty()) {
            set_error(error, "unknown request field: " + std::string{key});
            return std::nullopt;
        }
    }
    if (!have_verb) {
        set_error(error, "missing verb");
        return std::nullopt;
    }
    if (req.verb == Verb::Query && req.experiment.empty()) {
        set_error(error, "query without experiment");
        return std::nullopt;
    }
    return req;
}

std::string route_key(const Request& req) {
    if (req.verb != Verb::Query) {
        return engine::sha256_hex(std::string{"verb:"} + std::string{name(req.verb)});
    }
    // Canonical identity text: the query fields that determine the payload
    // bytes, in a fixed order. deadline-ms is a client-side QoS knob and
    // format only applies to metrics, so neither participates.
    std::string canon;
    canon += "experiment " + req.experiment + '\n';
    canon += "point " + req.point + '\n';
    char seed_buf[32];
    std::snprintf(seed_buf, sizeof seed_buf, "seed 0x%016llx\n",
                  static_cast<unsigned long long>(req.seed));
    canon += seed_buf;
    canon += "audit ";
    canon += engine::name(req.audit);
    canon += '\n';
    canon += "quick ";
    canon += req.quick ? '1' : '0';
    canon += '\n';
    return engine::sha256_hex(canon);
}

std::string Response::encode_header() const {
    std::string out{kMagic};
    out += '\n';
    out += ok() ? "status ok\n" : "status error\n";
    if (!ok()) {
        out += "code ";
        out += name(code);
        out += '\n';
    } else {
        out += "source ";
        out += name(source);
        out += '\n';
    }
    if (tag != 0) out += "tag " + std::to_string(tag) + '\n';
    out += "payload-bytes " + std::to_string(payload_view().size()) + '\n';
    return out;
}

std::string Response::encode() const {
    std::string out = encode_header();
    out += payload_view();
    return out;
}

std::optional<Response> parse_response(std::string_view text, std::string* error) {
    if (!consume_magic(text, error)) return std::nullopt;

    Response resp;
    bool have_status = false;
    bool status_ok = false;
    std::string_view key, value;
    while (next_line(text, key, value)) {
        if (key == "status") {
            if (value == "ok") {
                status_ok = true;
            } else if (value == "error") {
                status_ok = false;
            } else {
                set_error(error, "bad status");
                return std::nullopt;
            }
            have_status = true;
        } else if (key == "code") {
            bool known = false;
            for (const ErrorCode c :
                 {ErrorCode::MalformedRequest, ErrorCode::UnknownExperiment,
                  ErrorCode::UnknownPoint, ErrorCode::Overloaded,
                  ErrorCode::DeadlineExceeded, ErrorCode::ShuttingDown,
                  ErrorCode::Internal, ErrorCode::Unavailable}) {
                if (value == name(c)) {
                    resp.code = c;
                    known = true;
                }
            }
            if (!known) {
                set_error(error, "unknown error code");
                return std::nullopt;
            }
        } else if (key == "source") {
            bool known = false;
            for (const Source s :
                 {Source::HotCache, Source::DiskCache, Source::Computed}) {
                if (value == name(s)) {
                    resp.source = s;
                    known = true;
                }
            }
            if (!known) {
                set_error(error, "unknown source");
                return std::nullopt;
            }
        } else if (key == "tag") {
            if (!parse_u64(value, resp.tag) || resp.tag == 0) {
                set_error(error, "bad tag");
                return std::nullopt;
            }
        } else if (key == "payload-bytes") {
            std::uint64_t n = 0;
            if (!parse_u64(value, n) || n != text.size()) {
                set_error(error, "payload length mismatch");
                return std::nullopt;
            }
            resp.payload = std::string{text};
            break;  // everything after this line is payload
        } else {
            set_error(error, "unknown response field: " + std::string{key});
            return std::nullopt;
        }
    }
    if (!have_status) {
        set_error(error, "missing status");
        return std::nullopt;
    }
    if (!status_ok && resp.code == ErrorCode::None) {
        set_error(error, "error status without code");
        return std::nullopt;
    }
    if (status_ok) resp.code = ErrorCode::None;
    return resp;
}

bool is_unknown_trace_field(const Response& resp) {
    return resp.code == ErrorCode::MalformedRequest &&
           resp.payload_view().find("unknown request field: trace") !=
               std::string_view::npos;
}

bool looks_like_batch(std::string_view text) {
    std::string_view probe = text;
    if (!consume_magic(probe, nullptr)) return false;
    std::string_view key, value;
    if (!next_line(probe, key, value)) return false;
    return key == "verb" && value == "batch";
}

std::string encode_batch(const std::vector<Request>& requests) {
    std::string out{kMagic};
    out += '\n';
    out += "verb batch\n";
    out += "count " + std::to_string(requests.size()) + '\n';
    for (const Request& req : requests) {
        const std::string body = req.encode();
        const std::uint32_t len = static_cast<std::uint32_t>(body.size());
        const char prefix[4] = {
            static_cast<char>(len >> 24), static_cast<char>(len >> 16),
            static_cast<char>(len >> 8), static_cast<char>(len)};
        out.append(prefix, sizeof prefix);
        out += body;
    }
    return out;
}

std::optional<std::vector<Request>> parse_batch(std::string_view text,
                                                std::string* error) {
    if (!consume_magic(text, error)) return std::nullopt;
    std::string_view key, value;
    if (!next_line(text, key, value) || key != "verb" || value != "batch") {
        set_error(error, "not a batch frame");
        return std::nullopt;
    }
    if (!next_line(text, key, value) || key != "count") {
        set_error(error, "batch missing count");
        return std::nullopt;
    }
    std::uint64_t count = 0;
    if (!parse_u64(value, count) || count == 0 || count > kMaxBatchRequests) {
        set_error(error, "bad batch count");
        return std::nullopt;
    }
    std::vector<Request> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        if (text.size() < 4) {
            set_error(error, "truncated batch length prefix");
            return std::nullopt;
        }
        const auto* p = reinterpret_cast<const unsigned char*>(text.data());
        const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                                  (static_cast<std::uint32_t>(p[1]) << 16) |
                                  (static_cast<std::uint32_t>(p[2]) << 8) |
                                  static_cast<std::uint32_t>(p[3]);
        text.remove_prefix(4);
        if (text.size() < len) {
            set_error(error, "truncated batch sub-request");
            return std::nullopt;
        }
        std::string sub_error;
        auto req = parse_request(text.substr(0, len), &sub_error);
        if (!req) {
            set_error(error,
                      "batch sub-request " + std::to_string(i) + ": " + sub_error);
            return std::nullopt;
        }
        out.push_back(std::move(*req));
        text.remove_prefix(len);
    }
    if (!text.empty()) {
        set_error(error, "trailing bytes after batch");
        return std::nullopt;
    }
    return out;
}

bool write_frame(int fd, std::string_view payload) {
    if (payload.size() > kMaxFrameBytes) return false;
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const char prefix[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                            static_cast<char>(len >> 8), static_cast<char>(len)};
    return write_all(fd, prefix, sizeof prefix) &&
           write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
    unsigned char prefix[4];
    if (!read_exact(fd, reinterpret_cast<char*>(prefix), sizeof prefix)) {
        return std::nullopt;
    }
    const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                              (static_cast<std::uint32_t>(prefix[1]) << 16) |
                              (static_cast<std::uint32_t>(prefix[2]) << 8) |
                              static_cast<std::uint32_t>(prefix[3]);
    if (len > kMaxFrameBytes) return std::nullopt;
    std::string payload(len, '\0');
    if (!read_exact(fd, payload.data(), payload.size())) return std::nullopt;
    return payload;
}

std::vector<Response> call_batch_over_fd(int fd,
                                         const std::vector<Request>& requests,
                                         std::optional<bool>& batch_supported,
                                         std::optional<bool>& trace_supported) {
    std::vector<Response> responses;
    if (requests.empty()) return responses;
    if (batch_supported == false) {
        // Known pre-v1.3 peer: sequential call/response, no batch frames.
        responses.reserve(requests.size());
        for (const auto& request_in : requests) {
            Request request = request_in;
            if (trace_supported == false) request.clear_trace();
            if (!write_frame(fd, request.encode())) {
                throw std::runtime_error{"request write failed"};
            }
            auto frame = read_frame(fd);
            if (!frame) throw std::runtime_error{"connection closed mid-response"};
            std::string error;
            auto response = parse_response(*frame, &error);
            if (!response) {
                throw std::runtime_error{"bad response frame: " + error};
            }
            if (request.has_trace() && trace_supported != false &&
                is_unknown_trace_field(*response)) {
                // Pre-v1.4 peer: remember, strip, resend this request.
                trace_supported = false;
                request.clear_trace();
                if (!write_frame(fd, request.encode())) {
                    throw std::runtime_error{"request write failed"};
                }
                frame = read_frame(fd);
                if (!frame) {
                    throw std::runtime_error{"connection closed mid-response"};
                }
                response = parse_response(*frame, &error);
                if (!response) {
                    throw std::runtime_error{"bad response frame: " + error};
                }
            } else if (request.has_trace()) {
                trace_supported = true;
            }
            responses.push_back(std::move(*response));
        }
        return responses;
    }

    // Tag every sub-request so out-of-order responses can be matched back
    // to their slot; caller-assigned nonzero tags are preserved.
    std::vector<Request> tagged{requests};
    if (trace_supported == false) {
        for (Request& req : tagged) req.clear_trace();
    }
    std::unordered_map<std::uint64_t, std::size_t> slot_by_tag;
    std::uint64_t next_tag = 1;
    for (std::size_t i = 0; i < tagged.size(); ++i) {
        if (tagged[i].tag == 0) {
            while (slot_by_tag.count(next_tag) != 0) ++next_tag;
            tagged[i].tag = next_tag;
        }
        if (!slot_by_tag.emplace(tagged[i].tag, i).second) {
            throw std::runtime_error{"duplicate request tag in batch"};
        }
    }
    if (!write_frame(fd, encode_batch(tagged))) {
        throw std::runtime_error{"batch write failed"};
    }

    responses.resize(tagged.size());
    for (std::size_t received = 0; received < tagged.size(); ++received) {
        const auto frame = read_frame(fd);
        if (!frame) throw std::runtime_error{"connection closed mid-batch"};
        std::string error;
        auto response = parse_response(*frame, &error);
        if (!response) throw std::runtime_error{"bad response frame: " + error};
        if (received == 0 && response->tag == 0 &&
            response->code == ErrorCode::MalformedRequest) {
            if (trace_supported != false && is_unknown_trace_field(*response)) {
                // v1.3 peer: it parsed the batch frame (so batching is
                // fine) but rejected a traced sub-request. Strip and
                // resend the whole batch.
                trace_supported = false;
                return call_batch_over_fd(fd, requests, batch_supported,
                                          trace_supported);
            }
            if (!batch_supported.has_value()) {
                // Capability probe failed: a pre-v1.3 peer rejected the
                // whole batch frame with one untagged MalformedRequest.
                // Fall back to sequential calls, now and for the life of
                // this connection.
                batch_supported = false;
                return call_batch_over_fd(fd, requests, batch_supported,
                                          trace_supported);
            }
        }
        const auto slot = slot_by_tag.find(response->tag);
        if (slot == slot_by_tag.end()) {
            throw std::runtime_error{"response carries unknown tag " +
                                     std::to_string(response->tag)};
        }
        responses[slot->second] = std::move(*response);
        slot_by_tag.erase(slot);
    }
    batch_supported = true;
    for (const Request& req : tagged) {
        if (req.has_trace()) {
            // The peer answered a traced sub-request without the v1.3
            // rejection: it understands the header.
            trace_supported = true;
            break;
        }
    }
    // Sub-requests the caller left untagged get their responses untagged
    // again -- the wire tag was this helper's bookkeeping, not the
    // caller's.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i].tag == 0) responses[i].tag = 0;
    }
    return responses;
}

std::vector<Response> call_batch_over_fd(int fd,
                                         const std::vector<Request>& requests,
                                         std::optional<bool>& batch_supported) {
    std::optional<bool> trace_supported;
    return call_batch_over_fd(fd, requests, batch_supported, trace_supported);
}

}  // namespace hsw::service::protocol
