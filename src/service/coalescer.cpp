#include "service/coalescer.hpp"

#include <utility>

namespace hsw::service {

RequestCoalescer::Ticket RequestCoalescer::join(const std::string& key) {
    util::LockGuard lock{lock_};
    if (const auto it = flights_.find(key); it != flights_.end()) {
        ++followers_;
        return Ticket{it->second->future, false};
    }
    auto flight = std::make_shared<Flight>();
    flight->future = flight->promise.get_future().share();
    flights_.emplace(key, flight);
    ++leaders_;
    return Ticket{flight->future, true};
}

void RequestCoalescer::complete(const std::string& key, Value value) {
    std::shared_ptr<Flight> flight;
    {
        // Retire the key before waking waiters: a request arriving after
        // completion must start fresh (and find the hot cache populated),
        // never attach to a finished flight.
        util::LockGuard lock{lock_};
        const auto it = flights_.find(key);
        if (it == flights_.end()) return;
        flight = std::move(it->second);
        flights_.erase(it);
    }
    flight->promise.set_value(std::move(value));
}

void RequestCoalescer::fail(const std::string& key, std::exception_ptr error) {
    std::shared_ptr<Flight> flight;
    {
        util::LockGuard lock{lock_};
        const auto it = flights_.find(key);
        if (it == flights_.end()) return;
        flight = std::move(it->second);
        flights_.erase(it);
    }
    flight->promise.set_exception(std::move(error));
}

RequestCoalescer::Stats RequestCoalescer::stats() const {
    util::LockGuard lock{lock_};
    return Stats{leaders_, followers_, flights_.size()};
}

}  // namespace hsw::service
