// Sharded in-memory LRU cache for job payload blobs.
//
// Sits in front of the on-disk ResultCache: a hot-cache hit costs one shard
// mutex and a map lookup instead of a file read plus a SHA-256 verify. Keys
// are spec content hashes (hex), so shard selection and equality never
// touch payload bytes. The byte budget is split evenly across shards, each
// with its own mutex and LRU list -- concurrent lookups of different specs
// rarely contend.
//
// Values are shared_ptr<const string>: eviction drops the cache's
// reference, never the bytes a reader still holds. On top of that, entries
// can be *pinned* (a coalescing leader pins while fanning a fresh result
// out to its waiters); a pinned entry is skipped by eviction even when the
// shard is over budget, so an in-flight entry can never be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"

namespace hsw::service {

struct HotCacheConfig {
    /// Total payload-byte budget across all shards. 0 disables the cache
    /// entirely (every lookup misses, inserts are dropped) -- useful for
    /// isolating the warm-disk path in benches.
    std::size_t max_bytes = 64u << 20;
    /// Shard count; clamped to at least 1. More shards = less lock
    /// contention, coarser per-shard budget.
    unsigned shards = 8;
};

struct HotCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  // payload bytes currently resident
};

class HotCache {
public:
    using Value = std::shared_ptr<const std::string>;

    explicit HotCache(HotCacheConfig cfg = {});

    /// The cached payload, or nullptr on miss. A hit moves the entry to
    /// the front of its shard's LRU list.
    [[nodiscard]] Value lookup(const std::string& key);

    /// Inserts (or refreshes) the entry and returns the stored value.
    /// `pinned` entries are exempt from eviction until unpin(); eviction of
    /// *other* entries still runs to make room. With max_bytes == 0 the
    /// payload is returned but not retained.
    Value insert(const std::string& key, std::string payload, bool pinned = false);

    /// Drops the eviction exemption; a no-op for absent keys. Entries whose
    /// shard is over budget become evictable on the next insert, not
    /// immediately -- unpin never frees memory itself.
    void unpin(const std::string& key);

    /// Aggregated over all shards; counters are lifetime totals.
    [[nodiscard]] HotCacheStats stats() const;

    void clear();

    [[nodiscard]] std::size_t max_bytes() const { return cfg_.max_bytes; }

private:
    struct Entry {
        std::string key;
        Value value;
        unsigned pins = 0;
    };
    using LruList = std::list<Entry>;

    struct Shard {
        mutable util::Mutex lock;
        LruList lru GUARDED_BY(lock);  // front = most recently used
        std::unordered_map<std::string, LruList::iterator> map GUARDED_BY(lock);
        std::size_t bytes GUARDED_BY(lock) = 0;
        std::uint64_t hits GUARDED_BY(lock) = 0;
        std::uint64_t misses GUARDED_BY(lock) = 0;
        std::uint64_t insertions GUARDED_BY(lock) = 0;
        std::uint64_t evictions GUARDED_BY(lock) = 0;
    };

    Shard& shard_for(const std::string& key);
    /// Evicts unpinned LRU-tail entries until `shard` fits its budget (or
    /// only pinned entries remain). The dropped payload references are
    /// moved into `evicted` so the caller frees the bytes *after*
    /// releasing the shard lock -- destroying multi-MB payloads inside the
    /// critical section would stall every concurrent hot lookup.
    void evict_over_budget(Shard& shard, std::vector<Value>& evicted)
        REQUIRES(shard.lock);

    HotCacheConfig cfg_;
    std::size_t per_shard_budget_ = 0;
    std::vector<Shard> shards_;
};

}  // namespace hsw::service
