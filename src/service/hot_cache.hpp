// Sharded in-memory LRU cache for job payload blobs.
//
// Sits in front of the on-disk ResultCache: a hot-cache hit costs one
// shared-lock acquire and a map lookup instead of a file read plus a
// SHA-256 verify. Keys are spec content hashes (hex), so shard selection
// and equality never touch payload bytes. The byte budget is split evenly
// across shards, each with its own reader-writer lock -- and because hits
// take only the *shared* side, concurrent lookups of the SAME spec no
// longer contend either. That property is what fixed the hot-path
// concurrency collapse: duplicate-heavy traffic all lands on one key, and
// the old design's exclusive lock + LRU list splice per hit serialized
// every client behind a single futex.
//
// Recency is tracked with per-entry atomic stamps drawn from a global
// relaxed counter instead of a linked LRU list: a hit just stores a fresh
// stamp (one relaxed atomic write, no structural mutation, no exclusive
// lock). Eviction -- the cold path -- takes the exclusive side and scans
// its shard for the smallest-stamp unpinned entry. Shards are small, and
// eviction only runs when an insert pushes a shard over budget, so the
// O(entries) scan is paid where latency does not matter.
//
// Values are shared_ptr<const string>: eviction drops the cache's
// reference, never the bytes a reader still holds. On top of that, entries
// can be *pinned* (a coalescing leader pins while fanning a fresh result
// out to its waiters); a pinned entry is skipped by eviction even when the
// shard is over budget, so an in-flight entry can never be dropped.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"

namespace hsw::service {

struct HotCacheConfig {
    /// Total payload-byte budget across all shards. 0 disables the cache
    /// entirely (every lookup misses, inserts are dropped) -- useful for
    /// isolating the warm-disk path in benches.
    std::size_t max_bytes = 64u << 20;
    /// Shard count; clamped to at least 1. More shards = less lock
    /// contention, coarser per-shard budget.
    unsigned shards = 8;
};

struct HotCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  // payload bytes currently resident
};

class HotCache {
public:
    using Value = std::shared_ptr<const std::string>;

    explicit HotCache(HotCacheConfig cfg = {});

    /// The cached payload, or nullptr on miss. A hit refreshes the entry's
    /// recency stamp; it takes the shard lock *shared*, so any number of
    /// clients can hit the same entry concurrently without serializing.
    [[nodiscard]] Value lookup(const std::string& key);

    /// Inserts (or refreshes) the entry and returns the stored value.
    /// `pinned` entries are exempt from eviction until unpin(); eviction of
    /// *other* entries still runs to make room. With max_bytes == 0 the
    /// payload is returned but not retained.
    Value insert(const std::string& key, std::string payload, bool pinned = false);

    /// Inserts an already-refcounted payload without copying the bytes.
    Value insert_shared(const std::string& key, Value payload, bool pinned = false);

    /// Drops the eviction exemption; a no-op for absent keys. Entries whose
    /// shard is over budget become evictable on the next insert, not
    /// immediately -- unpin never frees memory itself.
    void unpin(const std::string& key);

    /// Aggregated over all shards; counters are lifetime totals.
    [[nodiscard]] HotCacheStats stats() const;

    void clear();

    [[nodiscard]] std::size_t max_bytes() const { return cfg_.max_bytes; }

private:
    struct Entry {
        Value value;
        unsigned pins = 0;
        /// Recency stamp from clock_; larger = more recently used. Written
        /// with a relaxed store on every shared-lock hit, so it is atomic
        /// even though the rest of the entry is guarded by the shard lock.
        std::atomic<std::uint64_t> stamp{0};
    };

    struct Shard {
        mutable util::SharedMutex lock;
        // unordered_map references are stable across other keys'
        // insert/erase, so a hit can store into entry.stamp under the
        // shared lock while another thread inserts a different key.
        std::unordered_map<std::string, Entry> map GUARDED_BY(lock);
        std::size_t bytes GUARDED_BY(lock) = 0;
        std::uint64_t insertions GUARDED_BY(lock) = 0;
        std::uint64_t evictions GUARDED_BY(lock) = 0;
        /// Hit/miss tallies are relaxed atomics, not guarded fields: the
        /// lookup path increments them under the *shared* lock.
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
    };

    Shard& shard_for(const std::string& key);
    /// Evicts smallest-stamp unpinned entries until `shard` fits its
    /// budget (or only pinned entries remain). The dropped payload
    /// references are moved into `evicted` so the caller frees the bytes
    /// *after* releasing the shard lock -- destroying multi-MB payloads
    /// inside the critical section would stall every concurrent insert.
    void evict_over_budget(Shard& shard, std::vector<Value>& evicted)
        REQUIRES(shard.lock);

    HotCacheConfig cfg_;
    std::size_t per_shard_budget_ = 0;
    std::vector<Shard> shards_;
    /// Global recency clock; relaxed fetch_add per touch. Ties cannot
    /// happen (each touch gets a unique value), and cross-shard skew is
    /// irrelevant because eviction only compares stamps within a shard.
    std::atomic<std::uint64_t> clock_{0};
};

}  // namespace hsw::service
