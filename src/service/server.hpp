// Loopback TCP front-end for SurveyService.
//
// SurveyServer composes the generic FrameServer accept loop (see
// frame_server.hpp) with a SurveyService: connections speak the
// length-prefixed protocol and may pipeline any number of requests. The
// connection threads only parse, dispatch to the service (which enforces
// admission control on its own bounded pool), and write responses -- so a
// slow compute never blocks accept(), and an overloaded service answers
// with structured rejections instead of stalling the socket.
//
// Shutdown paths converge on stop(): the `shutdown` verb, a signal
// handler, or the owner calling it directly. stop() closes the listening
// socket (unblocking accept), lets in-flight requests finish, drains the
// service, and joins every thread.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/frame_server.hpp"
#include "service/service.hpp"

namespace hsw::service {

struct ServerConfig {
    /// Loopback only by default; this is a measurement service, not an
    /// internet-facing one.
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (read it back via port()).
    std::uint16_t port = 0;
    /// Concurrent connections; excess connects receive one Overloaded
    /// response and are closed.
    unsigned max_connections = 64;
    /// Reactor event-loop threads (see FrameServerConfig).
    unsigned reactor_threads = 2;
    /// Handler-pool threads; 0 = auto (see FrameServerConfig).
    unsigned handler_threads = 0;
    ServiceConfig service;
};

class SurveyServer {
public:
    /// Binds and listens; throws std::runtime_error on socket failure.
    explicit SurveyServer(ServerConfig cfg = {});

    SurveyServer(const SurveyServer&) = delete;
    SurveyServer& operator=(const SurveyServer&) = delete;

    /// The bound port (useful with cfg.port == 0).
    [[nodiscard]] std::uint16_t port() const { return frontend_->port(); }

    /// Runs the accept loop on a background thread and returns.
    void start() { frontend_->start(); }

    /// Blocks until the server has stopped (shutdown verb or stop()).
    void wait() { frontend_->wait(); }

    /// Idempotent: stop accepting, finish in-flight connections, drain the
    /// service, join all threads.
    void stop() { frontend_->stop(); }

    [[nodiscard]] bool stopped() const { return frontend_->stopped(); }

    [[nodiscard]] SurveyService& service() { return *service_; }

private:
    std::unique_ptr<SurveyService> service_;
    std::unique_ptr<FrameServer> frontend_;  // after service_: stops first
};

/// Blocking protocol client used by hsw_query and the tests. One
/// connection, synchronous call(); not thread-safe -- use one client per
/// thread.
///
/// Distributed tracing: when the calling thread carries a TraceContext
/// (obs/ctx.hpp) each call opens a "client.call" span and stamps the
/// request's v1.4 trace header from it, so the server's spans parent to
/// this client's. A pre-v1.4 server rejecting the header is detected
/// (is_unknown_trace_field), memoized per connection, and the call is
/// transparently retried without the header.
class ServiceClient {
public:
    /// Throws std::runtime_error when the connection fails.
    ServiceClient(const std::string& host, std::uint16_t port);
    ~ServiceClient();

    ServiceClient(const ServiceClient&) = delete;
    ServiceClient& operator=(const ServiceClient&) = delete;

    /// Sends the request and waits for the response; throws
    /// std::runtime_error on transport or framing errors.
    [[nodiscard]] protocol::Response call(const protocol::Request& request);

    /// Sends many requests as one v1.3 `batch` frame and returns the
    /// responses in request order (the client tags each sub-request and
    /// reorders tagged responses as they arrive). The first batch doubles
    /// as a capability probe: a pre-v1.3 server answers the unknown verb
    /// with MalformedRequest, and the client transparently falls back to
    /// sequential single-request calls -- on this call and every later
    /// one. Throws std::runtime_error on transport or framing errors.
    [[nodiscard]] std::vector<protocol::Response> call_pipelined(
        const std::vector<protocol::Request>& requests);

    /// True once call_pipelined has confirmed (or ruled out) server-side
    /// batch support; unset before the first probe.
    [[nodiscard]] std::optional<bool> batch_supported() const {
        return batch_supported_;
    }

    /// True once a traced call has confirmed (or ruled out) server-side
    /// v1.4 trace-header support; unset before the first traced call.
    [[nodiscard]] std::optional<bool> trace_supported() const {
        return trace_supported_;
    }

private:
    int fd_ = -1;
    std::optional<bool> batch_supported_;
    std::optional<bool> trace_supported_;
};

}  // namespace hsw::service
