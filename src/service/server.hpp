// Loopback TCP front-end for SurveyService.
//
// One acceptor thread plus one thread per connection; connections speak
// the length-prefixed protocol (see protocol.hpp) and may pipeline any
// number of requests. The connection threads only parse, dispatch to the
// service (which enforces admission control on its own bounded pool), and
// write responses -- so a slow compute never blocks accept(), and an
// overloaded service answers with structured rejections instead of
// stalling the socket.
//
// Shutdown paths converge on stop(): the `shutdown` verb, a signal
// handler, or the owner calling it directly. stop() closes the listening
// socket (unblocking accept), lets in-flight requests finish, drains the
// service, and joins every thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "util/sync.hpp"

namespace hsw::service {

struct ServerConfig {
    /// Loopback only by default; this is a measurement service, not an
    /// internet-facing one.
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (read it back via port()).
    std::uint16_t port = 0;
    /// Concurrent connections; excess connects receive one Overloaded
    /// response and are closed.
    unsigned max_connections = 64;
    ServiceConfig service;
};

class SurveyServer {
public:
    /// Binds and listens; throws std::runtime_error on socket failure.
    explicit SurveyServer(ServerConfig cfg = {});
    ~SurveyServer();

    SurveyServer(const SurveyServer&) = delete;
    SurveyServer& operator=(const SurveyServer&) = delete;

    /// The bound port (useful with cfg.port == 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Runs the accept loop on a background thread and returns.
    void start();

    /// Blocks until the server has stopped (shutdown verb or stop()).
    void wait() EXCLUDES(stopped_lock_);

    /// Idempotent: stop accepting, finish in-flight connections, drain the
    /// service, join all threads.
    void stop();

    [[nodiscard]] bool stopped() const;

    [[nodiscard]] SurveyService& service() { return *service_; }

private:
    void accept_loop();
    void serve_connection(int fd);

    ServerConfig cfg_;
    std::unique_ptr<SurveyService> service_;
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;

    std::thread acceptor_;
    // Spawned by the `shutdown` verb so the connection thread itself is
    // never asked to join itself; reaped by the destructor.
    util::Mutex stopper_lock_;
    std::thread stopper_ GUARDED_BY(stopper_lock_);
    util::Mutex connections_lock_;
    std::vector<std::thread> connections_ GUARDED_BY(connections_lock_);
    // Sockets currently served; stop() shuts them down to unblock reads.
    // Entries are removed (under the lock) before close(), so a shutdown
    // can never hit a recycled descriptor.
    std::vector<int> open_fds_ GUARDED_BY(connections_lock_);
    std::atomic<unsigned> open_connections_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::once_flag stop_once_;
    util::Mutex stopped_lock_;
    util::CondVar stopped_cv_;
};

/// Blocking protocol client used by hsw_query and the tests. One
/// connection, synchronous call(); not thread-safe -- use one client per
/// thread.
class ServiceClient {
public:
    /// Throws std::runtime_error when the connection fails.
    ServiceClient(const std::string& host, std::uint16_t port);
    ~ServiceClient();

    ServiceClient(const ServiceClient&) = delete;
    ServiceClient& operator=(const ServiceClient&) = delete;

    /// Sends the request and waits for the response; throws
    /// std::runtime_error on transport or framing errors.
    [[nodiscard]] protocol::Response call(const protocol::Request& request);

private:
    int fd_ = -1;
};

}  // namespace hsw::service
