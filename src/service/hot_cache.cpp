#include "service/hot_cache.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"

namespace hsw::service {

namespace {
obs::Counter& hits_counter() {
    static obs::Counter& c =
        obs::counter("hsw_hot_cache_hits", "Hot-cache lookups that found an entry");
    return c;
}
obs::Counter& misses_counter() {
    static obs::Counter& c =
        obs::counter("hsw_hot_cache_misses", "Hot-cache lookups that missed");
    return c;
}
obs::Counter& evictions_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_hot_cache_evictions", "Hot-cache entries dropped by the byte budget");
    return c;
}
obs::Gauge& bytes_gauge() {
    static obs::Gauge& g =
        obs::gauge("hsw_hot_cache_bytes", "Bytes currently held by the hot cache");
    return g;
}
}  // namespace

HotCache::HotCache(HotCacheConfig cfg) : cfg_{cfg} {
    cfg_.shards = std::max(1u, cfg_.shards);
    per_shard_budget_ = cfg_.max_bytes / cfg_.shards;
    shards_ = std::vector<Shard>(cfg_.shards);
}

HotCache::Shard& HotCache::shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

// hsw:hot-path -- every service query starts with this probe; it must
// stay a shared-lock find plus one relaxed stamp store, never take the
// exclusive lock, allocate, or block.
HotCache::Value HotCache::lookup(const std::string& key) {
    Shard& shard = shard_for(key);
    util::SharedLockGuard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        shard.misses.fetch_add(1, std::memory_order_relaxed);
        misses_counter().inc();
        return nullptr;
    }
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    hits_counter().inc();
    it->second.stamp.store(clock_.fetch_add(1, std::memory_order_relaxed),
                           std::memory_order_relaxed);
    return it->second.value;
}
// hsw:end-hot-path

HotCache::Value HotCache::insert(const std::string& key, std::string payload,
                                 bool pinned) {
    return insert_shared(key, std::make_shared<const std::string>(std::move(payload)),
                         pinned);
}

HotCache::Value HotCache::insert_shared(const std::string& key, Value payload,
                                        bool pinned) {
    if (cfg_.max_bytes == 0 || payload == nullptr) return payload;

    Shard& shard = shard_for(key);
    // Declared before the guard so evicted payloads are destroyed after
    // unlock; freeing megabytes of string inside the critical section would
    // block every concurrent insert on this shard.
    std::vector<Value> evicted;
    util::ExclusiveLockGuard lock{shard.lock};
    const std::size_t bytes_before = shard.bytes;
    const auto [it, fresh] = shard.map.try_emplace(key);
    Entry& entry = it->second;
    if (!fresh) {
        // Refresh in place; identical specs produce identical bytes, but a
        // refresh still replaces the value so the byte accounting is exact.
        shard.bytes -= entry.value->size();
        evicted.push_back(std::move(entry.value));  // freed after unlock
    } else {
        ++shard.insertions;
    }
    entry.value = payload;
    if (pinned) ++entry.pins;
    shard.bytes += payload->size();
    entry.stamp.store(clock_.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_relaxed);
    evict_over_budget(shard, evicted);
    bytes_gauge().add(static_cast<std::int64_t>(shard.bytes) -
                      static_cast<std::int64_t>(bytes_before));
    return payload;
}

void HotCache::evict_over_budget(Shard& shard, std::vector<Value>& evicted) {
    while (shard.bytes > per_shard_budget_) {
        auto victim = shard.map.end();
        std::uint64_t victim_stamp = std::numeric_limits<std::uint64_t>::max();
        for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
            if (it->second.pins > 0) continue;  // in-flight fan-out; never dropped
            const std::uint64_t stamp =
                it->second.stamp.load(std::memory_order_relaxed);
            if (stamp < victim_stamp) {
                victim_stamp = stamp;
                victim = it;
            }
        }
        if (victim == shard.map.end()) return;  // only pinned entries remain
        shard.bytes -= victim->second.value->size();
        evicted.push_back(std::move(victim->second.value));
        shard.map.erase(victim);
        ++shard.evictions;
        evictions_counter().inc();
    }
}

void HotCache::unpin(const std::string& key) {
    Shard& shard = shard_for(key);
    util::ExclusiveLockGuard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.pins > 0) --it->second.pins;
}

HotCacheStats HotCache::stats() const {
    HotCacheStats out;
    for (const auto& shard : shards_) {
        util::ExclusiveLockGuard lock{shard.lock};
        out.hits += shard.hits.load(std::memory_order_relaxed);
        out.misses += shard.misses.load(std::memory_order_relaxed);
        out.insertions += shard.insertions;
        out.evictions += shard.evictions;
        out.entries += shard.map.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void HotCache::clear() {
    for (auto& shard : shards_) {
        std::vector<Value> dropped;
        util::ExclusiveLockGuard lock{shard.lock};
        bytes_gauge().add(-static_cast<std::int64_t>(shard.bytes));
        dropped.reserve(shard.map.size());
        for (auto& [key, entry] : shard.map) dropped.push_back(std::move(entry.value));
        shard.map.clear();  // payloads freed after unlock
        shard.bytes = 0;
    }
}

}  // namespace hsw::service
