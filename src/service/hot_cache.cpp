#include "service/hot_cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

namespace hsw::service {

HotCache::HotCache(HotCacheConfig cfg) : cfg_{cfg} {
    cfg_.shards = std::max(1u, cfg_.shards);
    per_shard_budget_ = cfg_.max_bytes / cfg_.shards;
    shards_ = std::vector<Shard>(cfg_.shards);
}

HotCache::Shard& HotCache::shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

HotCache::Value HotCache::lookup(const std::string& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        ++shard.misses;
        return nullptr;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
}

HotCache::Value HotCache::insert(const std::string& key, std::string payload,
                                 bool pinned) {
    Value value = std::make_shared<const std::string>(std::move(payload));
    if (cfg_.max_bytes == 0) return value;

    Shard& shard = shard_for(key);
    std::lock_guard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        // Refresh in place; identical specs produce identical bytes, but a
        // refresh still replaces the value so the byte accounting is exact.
        shard.bytes -= it->second->value->size();
        it->second->value = value;
        if (pinned) ++it->second->pins;
        shard.bytes += value->size();
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(Entry{key, value, pinned ? 1u : 0u});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += value->size();
        ++shard.insertions;
    }
    evict_over_budget(shard);
    return value;
}

void HotCache::evict_over_budget(Shard& shard) {
    auto it = shard.lru.end();
    while (shard.bytes > per_shard_budget_ && it != shard.lru.begin()) {
        --it;
        if (it->pins > 0) continue;  // in-flight fan-out; never dropped
        shard.bytes -= it->value->size();
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.evictions;
    }
}

void HotCache::unpin(const std::string& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second->pins > 0) --it->second->pins;
}

HotCacheStats HotCache::stats() const {
    HotCacheStats out;
    for (const auto& shard : shards_) {
        std::lock_guard lock{shard.lock};
        out.hits += shard.hits;
        out.misses += shard.misses;
        out.insertions += shard.insertions;
        out.evictions += shard.evictions;
        out.entries += shard.map.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void HotCache::clear() {
    for (auto& shard : shards_) {
        std::lock_guard lock{shard.lock};
        shard.lru.clear();
        shard.map.clear();
        shard.bytes = 0;
    }
}

}  // namespace hsw::service
