#include "service/hot_cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.hpp"

namespace hsw::service {

namespace {
obs::Counter& hits_counter() {
    static obs::Counter& c =
        obs::counter("hsw_hot_cache_hits", "Hot-cache lookups that found an entry");
    return c;
}
obs::Counter& misses_counter() {
    static obs::Counter& c =
        obs::counter("hsw_hot_cache_misses", "Hot-cache lookups that missed");
    return c;
}
obs::Counter& evictions_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_hot_cache_evictions", "Hot-cache entries dropped by the byte budget");
    return c;
}
obs::Gauge& bytes_gauge() {
    static obs::Gauge& g =
        obs::gauge("hsw_hot_cache_bytes", "Bytes currently held by the hot cache");
    return g;
}
}  // namespace

HotCache::HotCache(HotCacheConfig cfg) : cfg_{cfg} {
    cfg_.shards = std::max(1u, cfg_.shards);
    per_shard_budget_ = cfg_.max_bytes / cfg_.shards;
    shards_ = std::vector<Shard>(cfg_.shards);
}

HotCache::Shard& HotCache::shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

// hsw:hot-path -- every service query starts with this probe; it must
// stay a find + splice under the shard lock, never allocate or block.
HotCache::Value HotCache::lookup(const std::string& key) {
    Shard& shard = shard_for(key);
    util::LockGuard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        ++shard.misses;
        misses_counter().inc();
        return nullptr;
    }
    ++shard.hits;
    hits_counter().inc();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
}
// hsw:end-hot-path

HotCache::Value HotCache::insert(const std::string& key, std::string payload,
                                 bool pinned) {
    Value value = std::make_shared<const std::string>(std::move(payload));
    if (cfg_.max_bytes == 0) return value;

    Shard& shard = shard_for(key);
    // Declared before the guard so evicted payloads are destroyed after
    // unlock; freeing megabytes of string inside the critical section would
    // block every concurrent lookup on this shard.
    std::vector<Value> evicted;
    util::LockGuard lock{shard.lock};
    const std::size_t bytes_before = shard.bytes;
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        // Refresh in place; identical specs produce identical bytes, but a
        // refresh still replaces the value so the byte accounting is exact.
        shard.bytes -= it->second->value->size();
        it->second->value = value;
        if (pinned) ++it->second->pins;
        shard.bytes += value->size();
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(Entry{key, value, pinned ? 1u : 0u});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += value->size();
        ++shard.insertions;
    }
    evict_over_budget(shard, evicted);
    bytes_gauge().add(static_cast<std::int64_t>(shard.bytes) -
                      static_cast<std::int64_t>(bytes_before));
    return value;
}

void HotCache::evict_over_budget(Shard& shard, std::vector<Value>& evicted) {
    auto it = shard.lru.end();
    while (shard.bytes > per_shard_budget_ && it != shard.lru.begin()) {
        --it;
        if (it->pins > 0) continue;  // in-flight fan-out; never dropped
        shard.bytes -= it->value->size();
        shard.map.erase(it->key);
        evicted.push_back(std::move(it->value));
        it = shard.lru.erase(it);
        ++shard.evictions;
        evictions_counter().inc();
    }
}

void HotCache::unpin(const std::string& key) {
    Shard& shard = shard_for(key);
    util::LockGuard lock{shard.lock};
    const auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second->pins > 0) --it->second->pins;
}

HotCacheStats HotCache::stats() const {
    HotCacheStats out;
    for (const auto& shard : shards_) {
        util::LockGuard lock{shard.lock};
        out.hits += shard.hits;
        out.misses += shard.misses;
        out.insertions += shard.insertions;
        out.evictions += shard.evictions;
        out.entries += shard.map.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void HotCache::clear() {
    for (auto& shard : shards_) {
        LruList dropped;
        util::LockGuard lock{shard.lock};
        bytes_gauge().add(-static_cast<std::int64_t>(shard.bytes));
        dropped.swap(shard.lru);  // payloads freed after unlock
        shard.map.clear();
        shard.bytes = 0;
    }
}

}  // namespace hsw::service
