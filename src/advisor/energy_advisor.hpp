// Energy advisor: the paper's motivation turned into an API.
//
// Section I frames the survey as groundwork for "energy efficiency
// optimization strategies such as dynamic voltage and frequency scaling
// (DVFS) and dynamic concurrency throttling (DCT)", and Section IX
// concludes that on Haswell-EP "DCT becomes a more viable approach" while
// DVFS suffers from the 500 us p-state grid in dynamic scenarios. The
// advisor runs a candidate sweep on a simulated node and recommends the
// (frequency, concurrency) operating point for a chosen objective.
#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "workloads/workload.hpp"

namespace hsw::advisor {

using util::Frequency;
using util::Time;

enum class Objective {
    Performance,       // maximize instructions/s
    Energy,            // minimize energy per instruction
    EnergyDelay,       // minimize EDP (energy * time per instruction)
    PerformanceCapped, // max instructions/s subject to a power cap
};

struct OperatingPoint {
    unsigned cores = 0;           // active cores per socket
    unsigned threads_per_core = 1;
    double set_ghz = 0.0;         // 0 = turbo request
    // measured at this point:
    double gips = 0.0;            // node instructions/s (giga)
    double watts = 0.0;           // node RAPL pkg+DRAM
    double joules_per_giga_instr = 0.0;
    double edp = 0.0;             // J*s per 10^18 instr^2 (relative metric)
};

struct Recommendation {
    OperatingPoint best;
    std::vector<OperatingPoint> sweep;  // everything evaluated
    /// How much the best point saves vs the naive all-cores-turbo point.
    double energy_saving_vs_turbo = 0.0;   // fraction
    double performance_loss_vs_turbo = 0.0;  // fraction
    [[nodiscard]] std::string render() const;
};

struct AdvisorConfig {
    Objective objective = Objective::Energy;
    double power_cap_watts = 0.0;        // for PerformanceCapped
    Time dwell = Time::ms(300);          // measurement window per point
    unsigned frequency_step = 3;         // evaluate every Nth ratio
    std::uint64_t seed = 0xC0FFEE;
    /// Tolerated performance loss for the Energy objective (points slower
    /// than (1 - tolerance) * best-gips are discarded).
    double performance_tolerance = 0.5;
};

class EnergyAdvisor {
public:
    explicit EnergyAdvisor(AdvisorConfig cfg = {});

    /// Sweep (frequency x concurrency) for `workload` and recommend.
    [[nodiscard]] Recommendation recommend(const workloads::Workload& workload,
                                           unsigned threads_per_core = 1);

private:
    [[nodiscard]] OperatingPoint evaluate(core::Node& node,
                                          const workloads::Workload& workload,
                                          unsigned cores, unsigned threads,
                                          Frequency setting);

    AdvisorConfig cfg_;
};

}  // namespace hsw::advisor
