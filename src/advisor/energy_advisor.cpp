#include "advisor/energy_advisor.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "msr/addresses.hpp"
#include "perfmon/counters.hpp"
#include "util/table.hpp"

namespace hsw::advisor {

EnergyAdvisor::EnergyAdvisor(AdvisorConfig cfg) : cfg_{cfg} {}

OperatingPoint EnergyAdvisor::evaluate(core::Node& node,
                                       const workloads::Workload& workload,
                                       unsigned cores, unsigned threads,
                                       Frequency setting) {
    node.clear_all_workloads();
    for (unsigned s = 0; s < node.socket_count(); ++s) {
        for (unsigned c = 0; c < cores; ++c) {
            node.set_workload(node.cpu_id(s, c), &workload, threads);
        }
    }
    node.set_pstate_all(setting);
    node.run_for(util::Time::ms(10));  // settle the PCU

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    std::vector<perfmon::CounterSnapshot> before;
    for (unsigned s = 0; s < node.socket_count(); ++s) {
        before.push_back(reader.snapshot(node.cpu_id(s, 0), node.now()));
    }
    const util::Power watts = node.rapl_power_over(cfg_.dwell);

    double gips = 0.0;
    for (unsigned s = 0; s < node.socket_count(); ++s) {
        const auto after = reader.snapshot(node.cpu_id(s, 0), node.now());
        const auto m = reader.derive(before[s], after);
        // One sampled core per socket; all active cores run identically.
        gips += m.giga_instructions_per_sec * cores;
    }

    OperatingPoint p;
    p.cores = cores;
    p.threads_per_core = threads;
    p.set_ghz = setting > node.sku().nominal_frequency ? 0.0 : setting.as_ghz();
    p.gips = gips;
    p.watts = watts.as_watts();
    p.joules_per_giga_instr = gips > 0.0 ? watts.as_watts() / gips : 1e18;
    p.edp = gips > 0.0 ? watts.as_watts() / (gips * gips) : 1e18;
    return p;
}

Recommendation EnergyAdvisor::recommend(const workloads::Workload& workload,
                                        unsigned threads_per_core) {
    core::NodeConfig node_cfg;
    node_cfg.seed = cfg_.seed;
    core::Node node{node_cfg};

    const unsigned max_cores = node.cores_per_socket();
    const unsigned nominal = node.sku().nominal_frequency.ratio();
    const unsigned min_ratio = node.sku().min_frequency.ratio();

    Recommendation rec;

    // The naive baseline: everything on, turbo requested.
    const OperatingPoint turbo_point =
        evaluate(node, workload, max_cores, threads_per_core,
                 Frequency::from_ratio(nominal + 1));
    rec.sweep.push_back(turbo_point);

    for (unsigned cores : {max_cores, max_cores * 3 / 4, max_cores / 2, max_cores / 4}) {
        if (cores == 0) continue;
        for (unsigned r = min_ratio; r <= nominal + 1; r += cfg_.frequency_step) {
            if (cores == max_cores && r == nominal + 1) continue;  // baseline
            rec.sweep.push_back(evaluate(node, workload, cores, threads_per_core,
                                         Frequency::from_ratio(std::min(r, nominal + 1))));
        }
    }

    // Pick by objective.
    double best_gips = 0.0;
    for (const auto& p : rec.sweep) best_gips = std::max(best_gips, p.gips);

    const OperatingPoint* best = &rec.sweep.front();
    double best_score = -std::numeric_limits<double>::infinity();
    for (const auto& p : rec.sweep) {
        double score = -std::numeric_limits<double>::infinity();
        switch (cfg_.objective) {
            case Objective::Performance:
                score = p.gips;
                break;
            case Objective::Energy:
                if (p.gips < best_gips * (1.0 - cfg_.performance_tolerance)) continue;
                score = -p.joules_per_giga_instr;
                break;
            case Objective::EnergyDelay:
                score = -p.edp;
                break;
            case Objective::PerformanceCapped:
                if (cfg_.power_cap_watts > 0.0 && p.watts > cfg_.power_cap_watts) continue;
                score = p.gips;
                break;
        }
        if (score > best_score) {
            best_score = score;
            best = &p;
        }
    }
    rec.best = *best;
    if (turbo_point.watts > 0.0 && turbo_point.gips > 0.0) {
        rec.energy_saving_vs_turbo = 1.0 - rec.best.joules_per_giga_instr /
                                               turbo_point.joules_per_giga_instr;
        rec.performance_loss_vs_turbo = 1.0 - rec.best.gips / turbo_point.gips;
    }
    return rec;
}

std::string Recommendation::render() const {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "recommended: %u cores/socket x %u threads @ %s GHz\n"
                  "  %.1f GIPS at %.1f W -> %.2f J/Ginstr\n"
                  "  vs all-cores turbo: %.1f %% less energy/instr, %.1f %% less "
                  "performance\n",
                  best.cores, best.threads_per_core,
                  best.set_ghz == 0.0 ? "turbo" : util::Table::fmt(best.set_ghz, 1).c_str(),
                  best.gips, best.watts, best.joules_per_giga_instr,
                  energy_saving_vs_turbo * 100.0, performance_loss_vs_turbo * 100.0);
    return buf;
}

}  // namespace hsw::advisor
