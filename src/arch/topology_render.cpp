#include "arch/topology_render.hpp"

#include <cstdio>

namespace hsw::arch {

std::string render_die_ascii(const DieTopology& topo) {
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%s, %u cores enabled\n",
                  std::string{DieTopology::variant_name(topo.variant)}.c_str(),
                  topo.enabled_cores);
    out += line;

    for (std::size_t p = 0; p < topo.partitions.size(); ++p) {
        const RingPartition& part = topo.partitions[p];
        std::snprintf(line, sizeof line,
                      "+-- ring partition %zu (%zu cores) %s\n", p,
                      part.core_ids.size(),
                      part.has_imc ? "--- IMC" : "");
        out += line;
        // Cores around the bidirectional ring, with their L3 slices.
        std::string row = "|  ";
        for (unsigned id : part.core_ids) {
            char cell[32];
            std::snprintf(cell, sizeof cell, "[C%02u|L3] ", id);
            row += cell;
        }
        out += row + "\n";
        if (part.has_imc) {
            std::snprintf(line, sizeof line, "|  IMC: %u x DDR channel\n",
                          part.memory_channels);
            out += line;
        }
        out += "+--\n";
        if (p + 1 < topo.partitions.size()) {
            for (unsigned q = 0; q < topo.queue_links; ++q) {
                out += "      || queue ||\n";
            }
        }
    }
    return out;
}

}  // namespace hsw::arch
