// ASCII rendering of the die layouts (paper Figure 1).
#pragma once

#include <string>

#include "arch/topology.hpp"

namespace hsw::arch {

/// Render the die as ASCII art: one box per ring partition with its cores,
/// IMC/channel annotations, and the inter-ring queues.
[[nodiscard]] std::string render_die_ascii(const DieTopology& topo);

}  // namespace hsw::arch
