// Microarchitecture parameter database (paper Table I).
//
// These numbers parameterize the core performance model: issue width bounds
// the achievable IPC, FLOPS/cycle bounds the arithmetic throughput, and the
// L1/L2 bytes-per-cycle figures feed the cache bandwidth model.
#pragma once

#include <cstdint>
#include <string_view>

#include "arch/generation.hpp"

namespace hsw::arch {

struct MicroarchParams {
    std::string_view name;

    // Front end / out-of-order resources (Table I rows).
    unsigned decode_per_cycle;        // x86 instructions decoded per cycle
    unsigned allocation_queue;        // entries (per thread for SNB)
    bool allocation_queue_per_thread; // SNB: 28/thread; HSW: 56 shared
    unsigned execute_uops_per_cycle;  // dispatch ports
    unsigned retire_uops_per_cycle;
    unsigned scheduler_entries;
    unsigned rob_entries;
    unsigned int_register_file;
    unsigned fp_register_file;

    // SIMD / FP.
    std::string_view simd_isa;        // "AVX" / "AVX2"
    bool has_fma;
    unsigned flops_per_cycle_double;  // peak double-precision FLOPS/cycle
    unsigned avx_issue_per_cycle;     // AVX/FMA ops issued per cycle

    // Memory pipeline.
    unsigned load_buffers;
    unsigned store_buffers;
    unsigned l1d_load_bytes_per_cycle;   // total load bandwidth
    unsigned l1d_store_bytes_per_cycle;  // total store bandwidth
    unsigned l2_bytes_per_cycle;

    // Platform.
    std::string_view supported_memory;  // "4x DDR3-1600" / "4x DDR4-2133"
    double dram_bandwidth_gbs;          // per-socket peak (GB/s)
    double qpi_speed_gts;               // GT/s
    double qpi_bandwidth_gbs;
};

/// Table I, left column.
[[nodiscard]] const MicroarchParams& sandy_bridge_ep_params();

/// Table I, right column.
[[nodiscard]] const MicroarchParams& haswell_ep_params();

/// Westmere-EP (for the Figure 7 generation comparison).
[[nodiscard]] const MicroarchParams& westmere_ep_params();

/// Parameters for a generation (IvyBridge maps to the SNB entry).
[[nodiscard]] const MicroarchParams& params_for(Generation g);

}  // namespace hsw::arch
