#include "arch/topology.hpp"

#include <stdexcept>

namespace hsw::arch {

unsigned DieTopology::partition_of(unsigned core) const {
    for (unsigned p = 0; p < partitions.size(); ++p) {
        for (unsigned id : partitions[p].core_ids) {
            if (id == core) return p;
        }
    }
    throw std::out_of_range{"DieTopology::partition_of: core not on die"};
}

unsigned DieTopology::total_channels() const {
    unsigned n = 0;
    for (const auto& p : partitions) n += p.memory_channels;
    return n;
}

bool DieTopology::crosses_partition(unsigned a, unsigned b) const {
    return partition_of(a) != partition_of(b);
}

std::string_view DieTopology::variant_name(DieVariant v) {
    switch (v) {
        case DieVariant::EightCore: return "8-core die (single ring)";
        case DieVariant::TwelveCore: return "12-core die (8+4 partitions)";
        case DieVariant::EighteenCore: return "18-core die (8+10 partitions)";
    }
    return "unknown die";
}

DieTopology make_die_topology(unsigned cores) {
    if (cores == 0 || cores > 18) {
        throw std::invalid_argument{"make_die_topology: Haswell-EP ships 1-18 cores"};
    }

    DieTopology topo;
    topo.enabled_cores = cores;

    auto fill = [](unsigned first, unsigned count) {
        std::vector<unsigned> ids;
        ids.reserve(count);
        for (unsigned i = 0; i < count; ++i) ids.push_back(first + i);
        return ids;
    };

    if (cores <= 8) {
        topo.variant = DieVariant::EightCore;
        topo.partitions = {RingPartition{fill(0, cores), true, 4}};
        topo.queue_links = 0;
        // Single-ring die: one IMC complex drives all four channels.
        return topo;
    }
    if (cores <= 12) {
        topo.variant = DieVariant::TwelveCore;
        // 8-core primary partition + up-to-4-core secondary partition.
        const unsigned secondary = cores - 8;
        topo.partitions = {RingPartition{fill(0, 8), true, 2},
                           RingPartition{fill(8, secondary), true, 2}};
        topo.queue_links = 2;
        return topo;
    }
    topo.variant = DieVariant::EighteenCore;
    // 8-core partition + up-to-10-core partition.
    const unsigned secondary = cores - 8;
    topo.partitions = {RingPartition{fill(0, 8), true, 2},
                       RingPartition{fill(8, secondary), true, 2}};
    topo.queue_links = 2;
    return topo;
}

}  // namespace hsw::arch
