#include "arch/sku.hpp"

#include <algorithm>

namespace hsw::arch {

Frequency Sku::max_turbo(unsigned active_cores) const {
    if (turbo_bins.empty()) return nominal_frequency;
    const std::size_t idx =
        std::min<std::size_t>(active_cores == 0 ? 0 : active_cores - 1, turbo_bins.size() - 1);
    return turbo_bins[idx];
}

Frequency Sku::max_avx_turbo(unsigned active_cores) const {
    if (avx_turbo_bins.empty()) return max_turbo(active_cores);
    const std::size_t idx = std::min<std::size_t>(active_cores == 0 ? 0 : active_cores - 1,
                                                  avx_turbo_bins.size() - 1);
    return avx_turbo_bins[idx];
}

Frequency Sku::max_avx512_turbo(unsigned active_cores) const {
    if (avx512_turbo_bins.empty()) return max_avx_turbo(active_cores);
    const std::size_t idx = std::min<std::size_t>(active_cores == 0 ? 0 : active_cores - 1,
                                                  avx512_turbo_bins.size() - 1);
    return avx512_turbo_bins[idx];
}

std::vector<Frequency> Sku::selectable_pstates() const {
    std::vector<Frequency> out;
    for (unsigned r = min_frequency.ratio(); r <= nominal_frequency.ratio(); ++r) {
        out.push_back(Frequency::from_ratio(r));
    }
    // The turbo request level is encoded as nominal ratio + 1.
    out.push_back(Frequency::from_ratio(nominal_frequency.ratio() + 1));
    return out;
}

namespace {

constexpr auto G = [](double v) { return Frequency::ghz(v); };

std::vector<Frequency> ghz_bins(std::initializer_list<double> vs) {
    std::vector<Frequency> out;
    for (double v : vs) out.push_back(Frequency::ghz(v));
    return out;
}

}  // namespace

const Sku& xeon_e5_2680_v3() {
    static const Sku sku{
        .model = "Intel Xeon E5-2680 v3",
        .generation = Generation::HaswellEP,
        .cores = 12,
        .hyperthreading = true,
        .min_frequency = G(1.2),
        .nominal_frequency = G(2.5),
        .tdp = Power::watts(120),
        // 1-2 active cores may reach 3.3 GHz, all-core non-AVX turbo 2.9 GHz.
        .turbo_bins = ghz_bins({3.3, 3.3, 3.2, 3.1, 3.1, 3.0, 3.0, 3.0, 3.0, 3.0, 2.9, 2.9}),
        .avx_base_frequency = G(2.1),
        // "AVX turbo frequencies are between 2.8 and 3.1 GHz, depending on the
        // number of active cores" (Section II-F).
        .avx_turbo_bins = ghz_bins({3.1, 3.1, 3.0, 3.0, 2.9, 2.9, 2.9, 2.8, 2.8, 2.8, 2.8, 2.8}),
        .uncore_min = G(1.2),
        .uncore_max = G(3.0),
        .l3_bytes = 12ull * 5ull * 512ull * 1024ull,  // 30 MiB = 12 x 2.5 MiB
    };
    return sku;
}

const Sku& xeon_e5_2667_v3() {
    static const Sku sku{
        .model = "Intel Xeon E5-2667 v3",
        .generation = Generation::HaswellEP,
        .cores = 8,
        .hyperthreading = true,
        .min_frequency = G(1.2),
        .nominal_frequency = G(3.2),
        .tdp = Power::watts(135),
        .turbo_bins = ghz_bins({3.6, 3.6, 3.5, 3.5, 3.4, 3.4, 3.4, 3.4}),
        .avx_base_frequency = G(2.7),
        .avx_turbo_bins = ghz_bins({3.5, 3.5, 3.4, 3.4, 3.3, 3.3, 3.2, 3.2}),
        .uncore_min = G(1.2),
        .uncore_max = G(3.0),
        .l3_bytes = 8ull * 5ull * 512ull * 1024ull,  // 20 MiB
    };
    return sku;
}

const Sku& xeon_e5_2699_v3() {
    static const Sku sku{
        .model = "Intel Xeon E5-2699 v3",
        .generation = Generation::HaswellEP,
        .cores = 18,
        .hyperthreading = true,
        .min_frequency = G(1.2),
        .nominal_frequency = G(2.3),
        .tdp = Power::watts(145),
        .turbo_bins = ghz_bins({3.6, 3.6, 3.4, 3.3, 3.2, 3.1, 3.0, 2.9, 2.9, 2.8, 2.8, 2.8,
                                2.8, 2.8, 2.8, 2.8, 2.8, 2.8}),
        .avx_base_frequency = G(1.9),
        .avx_turbo_bins = ghz_bins({3.4, 3.4, 3.2, 3.1, 3.0, 2.9, 2.8, 2.7, 2.7, 2.6, 2.6,
                                    2.6, 2.6, 2.6, 2.6, 2.6, 2.6, 2.6}),
        .uncore_min = G(1.2),
        .uncore_max = G(3.0),
        .l3_bytes = 18ull * 5ull * 512ull * 1024ull,  // 45 MiB
    };
    return sku;
}

const Sku& core_i7_4770() {
    static const Sku sku{
        .model = "Intel Core i7-4770",
        .generation = Generation::HaswellHE,
        .cores = 4,
        .hyperthreading = true,
        .min_frequency = G(0.8),
        .nominal_frequency = G(3.4),
        .tdp = Power::watts(84),
        .turbo_bins = ghz_bins({3.9, 3.9, 3.8, 3.7}),
        // Desktop Haswell has no published AVX frequency levels; the
        // nominal clock is guaranteed.
        .avx_base_frequency = G(3.4),
        .avx_turbo_bins = {},
        .uncore_min = G(0.8),
        .uncore_max = G(3.4),
        .l3_bytes = 8ull * 1024ull * 1024ull,
    };
    return sku;
}

const Sku& xeon_e5_2670() {
    static const Sku sku{
        .model = "Intel Xeon E5-2670",
        .generation = Generation::SandyBridgeEP,
        .cores = 8,
        .hyperthreading = true,
        .min_frequency = G(1.2),
        .nominal_frequency = G(2.6),
        .tdp = Power::watts(115),
        .turbo_bins = ghz_bins({3.3, 3.3, 3.2, 3.2, 3.1, 3.1, 3.0, 3.0}),
        // Sandy Bridge has no separate AVX frequency level (Section V-B:
        // the concept was introduced with Haswell).
        .avx_base_frequency = G(2.6),
        .avx_turbo_bins = {},
        .uncore_min = G(1.2),
        .uncore_max = G(2.6),  // uncore is clocked with the cores
        .l3_bytes = 20ull * 1024ull * 1024ull,
    };
    return sku;
}

const Sku& xeon_e5_2690_v2() {
    static const Sku sku{
        .model = "Intel Xeon E5-2690 v2",
        .generation = Generation::IvyBridgeEP,
        .cores = 10,
        .hyperthreading = true,
        .min_frequency = G(1.2),
        .nominal_frequency = G(3.0),
        .tdp = Power::watts(130),
        .turbo_bins = ghz_bins({3.6, 3.6, 3.5, 3.4, 3.4, 3.3, 3.3, 3.3, 3.3, 3.3}),
        // Like Sandy Bridge, no separate AVX frequency level yet.
        .avx_base_frequency = G(3.0),
        .avx_turbo_bins = {},
        .uncore_min = G(1.2),
        .uncore_max = G(3.0),  // uncore is clocked with the cores
        .l3_bytes = 25ull * 1024ull * 1024ull,
    };
    return sku;
}

const Sku& xeon_gold_6150() {
    static const Sku sku{
        .model = "Intel Xeon Gold 6150",
        .generation = Generation::SkylakeSP,
        .cores = 18,
        .hyperthreading = true,
        .min_frequency = G(1.2),
        .nominal_frequency = G(2.7),
        .tdp = Power::watts(165),
        .turbo_bins = ghz_bins({3.7, 3.7, 3.5, 3.5, 3.5, 3.5, 3.5, 3.5, 3.4, 3.4, 3.4, 3.4,
                                3.4, 3.4, 3.4, 3.4, 3.4, 3.4}),
        // AVX2 license (L1) base and turbo table.
        .avx_base_frequency = G(2.2),
        .avx_turbo_bins = ghz_bins({3.6, 3.6, 3.4, 3.4, 3.3, 3.3, 3.1, 3.1, 3.1, 3.1, 3.1,
                                    3.1, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0}),
        // AVX-512 license (L2) table: the steep all-core drop the Skylake-SP
        // paper highlights (2.7 GHz nominal -> 1.9 GHz all-core AVX-512).
        .avx512_base_frequency = G(1.9),
        .avx512_turbo_bins = ghz_bins({3.5, 3.5, 3.2, 3.2, 3.0, 3.0, 2.8, 2.8, 2.7, 2.7,
                                       2.7, 2.7, 2.6, 2.6, 2.6, 2.6, 2.6, 2.6}),
        // Skylake-SP uncore tops out lower than Haswell-EP and scales per die.
        .uncore_min = G(1.2),
        .uncore_max = G(2.4),
        .l3_bytes = 18ull * 1408ull * 1024ull,  // 24.75 MiB = 18 x 1.375 MiB
    };
    return sku;
}

const Sku& xeon_x5670() {
    static const Sku sku{
        .model = "Intel Xeon X5670",
        .generation = Generation::WestmereEP,
        .cores = 6,
        .hyperthreading = true,
        .min_frequency = G(1.6),
        .nominal_frequency = G(2.93),
        .tdp = Power::watts(95),
        .turbo_bins = ghz_bins({3.33, 3.33, 3.06, 3.06, 3.06, 3.06}),
        .avx_base_frequency = G(2.93),
        .avx_turbo_bins = {},
        .uncore_min = G(2.66),
        .uncore_max = G(2.66),  // fixed uncore clock
        .l3_bytes = 12ull * 1024ull * 1024ull,
    };
    return sku;
}

}  // namespace hsw::arch
