#include "arch/microarch.hpp"

namespace hsw::arch {

const MicroarchParams& sandy_bridge_ep_params() {
    static constexpr MicroarchParams p{
        .name = "Sandy Bridge-EP",
        .decode_per_cycle = 4,
        .allocation_queue = 28,
        .allocation_queue_per_thread = true,
        .execute_uops_per_cycle = 6,
        .retire_uops_per_cycle = 4,
        .scheduler_entries = 54,
        .rob_entries = 168,
        .int_register_file = 160,
        .fp_register_file = 144,
        .simd_isa = "AVX",
        .has_fma = false,
        .flops_per_cycle_double = 8,   // 1x256-bit add + 1x256-bit mul
        .avx_issue_per_cycle = 2,
        .load_buffers = 64,
        .store_buffers = 36,
        .l1d_load_bytes_per_cycle = 32,   // 2x16 B loads
        .l1d_store_bytes_per_cycle = 16,  // 1x16 B store
        .l2_bytes_per_cycle = 32,
        .supported_memory = "4x DDR3-1600",
        .dram_bandwidth_gbs = 51.2,
        .qpi_speed_gts = 8.0,
        .qpi_bandwidth_gbs = 32.0,
    };
    return p;
}

const MicroarchParams& haswell_ep_params() {
    static constexpr MicroarchParams p{
        .name = "Haswell-EP",
        .decode_per_cycle = 4,
        .allocation_queue = 56,
        .allocation_queue_per_thread = false,
        .execute_uops_per_cycle = 8,
        .retire_uops_per_cycle = 4,
        .scheduler_entries = 60,
        .rob_entries = 192,
        .int_register_file = 168,
        .fp_register_file = 168,
        .simd_isa = "AVX2",
        .has_fma = true,
        .flops_per_cycle_double = 16,  // 2x256-bit FMA
        .avx_issue_per_cycle = 2,
        .load_buffers = 72,
        .store_buffers = 42,
        .l1d_load_bytes_per_cycle = 64,   // 2x32 B loads
        .l1d_store_bytes_per_cycle = 32,  // 1x32 B store
        .l2_bytes_per_cycle = 64,
        .supported_memory = "4x DDR4-2133",
        .dram_bandwidth_gbs = 68.2,
        .qpi_speed_gts = 9.6,
        .qpi_bandwidth_gbs = 38.4,
    };
    return p;
}

const MicroarchParams& westmere_ep_params() {
    static constexpr MicroarchParams p{
        .name = "Westmere-EP",
        .decode_per_cycle = 4,
        .allocation_queue = 28,
        .allocation_queue_per_thread = true,
        .execute_uops_per_cycle = 6,
        .retire_uops_per_cycle = 4,
        .scheduler_entries = 36,
        .rob_entries = 128,
        .int_register_file = 0,   // unified RRF design; not comparable
        .fp_register_file = 0,
        .simd_isa = "SSE4.2",
        .has_fma = false,
        .flops_per_cycle_double = 4,
        .avx_issue_per_cycle = 0,
        .load_buffers = 48,
        .store_buffers = 32,
        .l1d_load_bytes_per_cycle = 16,
        .l1d_store_bytes_per_cycle = 16,
        .l2_bytes_per_cycle = 32,
        .supported_memory = "3x DDR3-1333",
        .dram_bandwidth_gbs = 32.0,
        .qpi_speed_gts = 6.4,
        .qpi_bandwidth_gbs = 25.6,
    };
    return p;
}

const MicroarchParams& params_for(Generation g) {
    switch (g) {
        case Generation::WestmereEP:
            return westmere_ep_params();
        case Generation::SandyBridgeEP:
        case Generation::IvyBridgeEP:
            return sandy_bridge_ep_params();
        case Generation::HaswellEP:
        case Generation::HaswellHE:
            return haswell_ep_params();
    }
    return haswell_ep_params();
}

}  // namespace hsw::arch
