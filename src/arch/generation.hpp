// Processor generations and their power-management traits.
//
// The paper contrasts Haswell-EP against Westmere-EP and Sandy Bridge-EP in
// three dimensions that matter for energy efficiency (Sections IV, VI, VII):
// how the uncore clock is derived, how RAPL values are produced, and whether
// p-state changes apply immediately or on the PCU opportunity grid.
#pragma once

#include <string_view>

namespace hsw::arch {

enum class Generation {
    WestmereEP,     // fixed uncore clock, no DRAM RAPL
    SandyBridgeEP,  // uncore clock == core clock, modeled RAPL
    IvyBridgeEP,    // like Sandy Bridge for our purposes
    HaswellEP,      // UFS, measured RAPL, FIVR, PCPS
    HaswellHE,      // desktop Haswell: FIVR + measured RAPL, immediate p-states
    // New generations append here: the integer value participates in
    // serialized experiment blobs (fig56/fig7 data sections).
    SkylakeSP,      // HWP/EPP, AVX-512 licenses, per-die UFS (Schoene et al.)
};

enum class UncoreClocking {
    Fixed,           // Nehalem-EP / Westmere-EP
    CoupledToCore,   // Sandy Bridge-EP / Ivy Bridge-EP
    IndependentUfs,  // Haswell-EP uncore frequency scaling
};

enum class RaplBackend {
    None,      // pre-SNB
    Modeled,   // event-counter based estimate, workload-biased (SNB/IVB)
    Measured,  // FIVR current sensing (Haswell)
};

struct GenerationTraits {
    Generation generation;
    std::string_view name;
    UncoreClocking uncore_clocking;
    RaplBackend rapl_backend;
    bool has_dram_rapl_domain;  // HSW-EP: yes; SNB-EP server: yes; desktop: no
    bool has_pp0_domain;        // PP0 unsupported on Haswell-EP (Section IV)
    bool per_core_pstates;      // PCPS requires FIVR (Haswell-EP / Skylake-SP)
    bool deferred_pstate_grid;  // 500 us opportunity mechanism (Section VI-A)
    bool fixed_dram_energy_unit;  // 15.3 uJ DRAM unit (Haswell on; SKX keeps it)
    bool dram_mode0_garbage;      // mode-0 DRAM counter garbage (Haswell quirk)
    bool has_hwp;                 // hardware-managed p-states (IA32_HWP_*)
    bool has_avx512;              // 512-bit license levels above the AVX one
};

[[nodiscard]] constexpr GenerationTraits traits(Generation g) {
    switch (g) {
        case Generation::WestmereEP:
            return {g, "Westmere-EP", UncoreClocking::Fixed, RaplBackend::None,
                    false, false, false, false, false, false, false, false};
        case Generation::SandyBridgeEP:
            return {g, "Sandy Bridge-EP", UncoreClocking::CoupledToCore,
                    RaplBackend::Modeled, true, true, false, false,
                    false, false, false, false};
        case Generation::IvyBridgeEP:
            return {g, "Ivy Bridge-EP", UncoreClocking::CoupledToCore,
                    RaplBackend::Modeled, true, true, false, false,
                    false, false, false, false};
        case Generation::HaswellEP:
            return {g, "Haswell-EP", UncoreClocking::IndependentUfs,
                    RaplBackend::Measured, true, false, true, true,
                    true, true, false, false};
        case Generation::HaswellHE:
            return {g, "Haswell-HE", UncoreClocking::IndependentUfs,
                    RaplBackend::Measured, true, false, false, false,
                    true, true, false, false};
        case Generation::SkylakeSP:
            return {g, "Skylake-SP", UncoreClocking::IndependentUfs,
                    RaplBackend::Measured, true, false, true, true,
                    true, false, true, true};
    }
    return {Generation::HaswellEP, "Haswell-EP", UncoreClocking::IndependentUfs,
            RaplBackend::Measured, true, false, true, true,
            true, true, false, false};
}

}  // namespace hsw::arch
