// Processor generations and their power-management traits.
//
// The paper contrasts Haswell-EP against Westmere-EP and Sandy Bridge-EP in
// three dimensions that matter for energy efficiency (Sections IV, VI, VII):
// how the uncore clock is derived, how RAPL values are produced, and whether
// p-state changes apply immediately or on the PCU opportunity grid.
#pragma once

#include <string_view>

namespace hsw::arch {

enum class Generation {
    WestmereEP,     // fixed uncore clock, no DRAM RAPL
    SandyBridgeEP,  // uncore clock == core clock, modeled RAPL
    IvyBridgeEP,    // like Sandy Bridge for our purposes
    HaswellEP,      // UFS, measured RAPL, FIVR, PCPS
    HaswellHE,      // desktop Haswell: FIVR + measured RAPL, immediate p-states
};

enum class UncoreClocking {
    Fixed,           // Nehalem-EP / Westmere-EP
    CoupledToCore,   // Sandy Bridge-EP / Ivy Bridge-EP
    IndependentUfs,  // Haswell-EP uncore frequency scaling
};

enum class RaplBackend {
    None,      // pre-SNB
    Modeled,   // event-counter based estimate, workload-biased (SNB/IVB)
    Measured,  // FIVR current sensing (Haswell)
};

struct GenerationTraits {
    Generation generation;
    std::string_view name;
    UncoreClocking uncore_clocking;
    RaplBackend rapl_backend;
    bool has_dram_rapl_domain;  // HSW-EP: yes; SNB-EP server: yes; desktop: no
    bool has_pp0_domain;        // PP0 unsupported on Haswell-EP (Section IV)
    bool per_core_pstates;      // PCPS requires FIVR (Haswell-EP only)
    bool deferred_pstate_grid;  // 500 us opportunity mechanism (Section VI-A)
};

[[nodiscard]] constexpr GenerationTraits traits(Generation g) {
    switch (g) {
        case Generation::WestmereEP:
            return {g, "Westmere-EP", UncoreClocking::Fixed, RaplBackend::None,
                    false, false, false, false};
        case Generation::SandyBridgeEP:
            return {g, "Sandy Bridge-EP", UncoreClocking::CoupledToCore,
                    RaplBackend::Modeled, true, true, false, false};
        case Generation::IvyBridgeEP:
            return {g, "Ivy Bridge-EP", UncoreClocking::CoupledToCore,
                    RaplBackend::Modeled, true, true, false, false};
        case Generation::HaswellEP:
            return {g, "Haswell-EP", UncoreClocking::IndependentUfs,
                    RaplBackend::Measured, true, false, true, true};
        case Generation::HaswellHE:
            return {g, "Haswell-HE", UncoreClocking::IndependentUfs,
                    RaplBackend::Measured, true, false, false, false};
    }
    return {Generation::HaswellEP, "Haswell-EP", UncoreClocking::IndependentUfs,
            RaplBackend::Measured, true, false, true, true};
}

}  // namespace hsw::arch
