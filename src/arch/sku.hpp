// SKU catalogue: per-model frequency tables, turbo bins, AVX frequencies
// and TDP. The test-system part (Xeon E5-2680 v3) follows the paper's
// Table II and Section II-F; sibling SKUs exercise the 8- and 18-core dies.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "arch/generation.hpp"
#include "util/units.hpp"

namespace hsw::arch {

using util::Frequency;
using util::Power;

struct Sku {
    std::string_view model;
    Generation generation = Generation::HaswellEP;
    unsigned cores = 0;
    bool hyperthreading = true;

    Frequency min_frequency;      // lowest selectable p-state
    Frequency nominal_frequency;  // "base" frequency; opportunistic on HSW-EP!
    Power tdp;

    /// Max non-AVX turbo frequency indexed by (active cores - 1).
    std::vector<Frequency> turbo_bins;

    /// Guaranteed frequency under all-core AVX load (Section II-F).
    Frequency avx_base_frequency;
    /// Max AVX turbo indexed by (active cores - 1).
    std::vector<Frequency> avx_turbo_bins;

    /// Guaranteed frequency under all-core AVX-512 load (license level 2,
    /// Skylake-SP only; zero elsewhere).
    Frequency avx512_base_frequency;
    /// Max AVX-512 turbo indexed by (active cores - 1).
    std::vector<Frequency> avx512_turbo_bins;

    /// Uncore clock range (Haswell UFS; Table III observes 1.2 - 3.0 GHz).
    Frequency uncore_min;
    Frequency uncore_max;

    /// L3 capacity (2.5 MiB per core on HSW-EP).
    std::size_t l3_bytes = 0;

    [[nodiscard]] Frequency max_turbo(unsigned active_cores) const;
    [[nodiscard]] Frequency max_avx_turbo(unsigned active_cores) const;
    /// License-2 ceiling; SKUs without AVX-512 tables fall back to the AVX one.
    [[nodiscard]] Frequency max_avx512_turbo(unsigned active_cores) const;
    /// All selectable p-state frequencies, ascending (min..nominal in 100 MHz
    /// steps, plus the turbo request level).
    [[nodiscard]] std::vector<Frequency> selectable_pstates() const;
};

/// The paper's test-system processor: 12 cores, 2.5 GHz nominal, 3.3 GHz max
/// turbo, 2.1 GHz AVX base, 120 W TDP (Table II, Section II-F).
[[nodiscard]] const Sku& xeon_e5_2680_v3();

/// 8-core die representative (single ring).
[[nodiscard]] const Sku& xeon_e5_2667_v3();

/// 18-core die representative (8+10 dual ring).
[[nodiscard]] const Sku& xeon_e5_2699_v3();

/// Haswell-HE desktop part: FIVR and measured RAPL like Haswell-EP, but
/// immediate p-states and no PCPS (Sections IV and VI-A).
[[nodiscard]] const Sku& core_i7_4770();

/// Sandy Bridge-EP comparison part (used by the Fig. 2a / Fig. 5-7 series).
[[nodiscard]] const Sku& xeon_e5_2670();

/// Westmere-EP comparison part (Fig. 7 series).
[[nodiscard]] const Sku& xeon_x5670();

/// Ivy Bridge-EP representative (registry completeness; uncore coupled).
[[nodiscard]] const Sku& xeon_e5_2690_v2();

/// Skylake-SP survey part: 18 cores, HWP, AVX-512 license levels, per-die
/// uncore scaling (Schoene et al., "Energy Efficiency Features of the Intel
/// Skylake-SP Processor").
[[nodiscard]] const Sku& xeon_gold_6150();

}  // namespace hsw::arch
