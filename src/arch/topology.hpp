// Haswell-EP die topology (paper Figure 1 and Section II-A).
//
// Three dies cover the 4-18 core range: the 8-core die has a single
// bidirectional ring; the 12-core die has an 8-core and a 4-core partition;
// the 18-core die has an 8-core and a 10-core partition. Each partition has
// its own IMC with two DDR4 channels, and the rings are connected by queues.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace hsw::arch {

enum class DieVariant {
    EightCore,     // 4/6/8-core units, one ring
    TwelveCore,    // 10/12-core units, 8+4 partitions
    EighteenCore,  // 14/16/18-core units, 8+10 partitions
};

struct RingPartition {
    std::vector<unsigned> core_ids;  // physical core ids on this ring
    bool has_imc = true;             // each partition has an IMC on HSW-EP
    unsigned memory_channels = 2;    // 2 channels per IMC
};

struct DieTopology {
    DieVariant variant;
    unsigned enabled_cores;                // cores fused on for this SKU
    std::vector<RingPartition> partitions;
    unsigned queue_links;                  // buffered queues joining the rings

    /// Partition index hosting physical core `core`.
    [[nodiscard]] unsigned partition_of(unsigned core) const;
    /// Number of L3 slices (one per enabled core).
    [[nodiscard]] unsigned l3_slices() const { return enabled_cores; }
    /// Total memory channels across partitions.
    [[nodiscard]] unsigned total_channels() const;
    /// True when `a` and `b` sit on different ring partitions (transfers
    /// cross the inter-ring queues).
    [[nodiscard]] bool crosses_partition(unsigned a, unsigned b) const;

    [[nodiscard]] static std::string_view variant_name(DieVariant v);
};

/// Choose the die for a core count and lay out the partitions as in Fig. 1.
/// Throws std::invalid_argument for core counts outside 1-18.
[[nodiscard]] DieTopology make_die_topology(unsigned cores);

}  // namespace hsw::arch
