// Calibration constants anchoring the simulator to the paper's published
// measurements. Every constant cites the paper section/table/figure it is
// anchored to. These are the *only* place where paper numbers enter the
// model; all tables and figures are then produced by running the mechanisms
// (PCU loops, RAPL integration, workload execution) against these physics.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace hsw::arch::cal {

using util::Frequency;
using util::Power;
using util::Time;

// ---------------------------------------------------------------------------
// P-state transition mechanism (Section VI-A, Figures 3/4)
// ---------------------------------------------------------------------------

/// The PCU grants frequency-change opportunities on a regular grid:
/// "frequency changes only occur in regular intervals of about 500 us".
inline constexpr Time kPstateOpportunityPeriod = Time::us(500);

/// Jitter of the opportunity grid (the paper's 500 us-delay experiment shows
/// a race, i.e. the grid is not perfectly rigid relative to software timing).
inline constexpr Time kPstateOpportunityJitter = Time::us(4);

/// Voltage/PLL switching time once an opportunity is taken: the minimum
/// observed transition latency is 21 us (Figure 3).
inline constexpr Time kPstateSwitchTimeMin = Time::us(19);
inline constexpr Time kPstateSwitchTimeMax = Time::us(24);

/// Pre-Haswell (and Haswell-HE) parts execute p-state requests immediately,
/// paying only the switching time (Section VI-A, last paragraph).
inline constexpr Time kLegacyPstateSwitchTime = Time::us(10);

/// ACPI-reported p-state transition latency -- "not supported by the
/// measurements and can hence be considered inapplicable".
inline constexpr Time kAcpiReportedPstateLatency = Time::us(10);

// ---------------------------------------------------------------------------
// PCU firmware cadence (Sections II-E, II-F)
// ---------------------------------------------------------------------------

/// Energy-efficient turbo polls stall data sporadically; the patent lists a
/// period of 1 ms (Section II-E).
inline constexpr Time kEetPollPeriod = Time::ms(1);

/// "The PCU returns to regular (non-AVX) operating mode 1 ms after AVX
/// instructions are completed" (Section II-F).
inline constexpr Time kAvxRelaxDelay = Time::ms(1);

/// RAPL running-average window used for TDP enforcement.
inline constexpr Time kRaplLimitWindow = Time::ms(1);

// ---------------------------------------------------------------------------
// RAPL energy units (Section IV)
// ---------------------------------------------------------------------------

/// Package energy status unit: 2^-14 J (61.04 uJ), MSR_RAPL_POWER_UNIT.
inline constexpr double kPackageEnergyUnitJoules = 1.0 / 16384.0;

/// "ENERGY_UNIT for DRAM domain is 15.3 uJ" (Haswell-EP registers datasheet,
/// quoted in Section IV). Valid only in DRAM RAPL mode 1.
inline constexpr double kDramEnergyUnitJoules = 15.3e-6;

/// RAPL counter update period (MSR counters refresh roughly every 1 ms).
inline constexpr Time kRaplUpdatePeriod = Time::ms(1);

// ---------------------------------------------------------------------------
// Voltage/frequency curves (Sections II-B, III)
// ---------------------------------------------------------------------------
// Core: V(f) = a + b*f + c*f^2 (f in GHz). The quadratic term models the
// steep voltage cost of the turbo region. Chosen so that the Table IV
// TDP-limited equilibria ((core, uncore) = (2.32, 2.32) at turbo request,
// (2.2, ~2.85) at the 2.2 GHz setting, uncore 3.0 with margin at 2.1 GHz)
// solve to the paper's measured operating points.

inline constexpr double kCoreVfA = 0.55;    // V
inline constexpr double kCoreVfB = 0.10;    // V/GHz
inline constexpr double kCoreVfC = 0.035;   // V/GHz^2

// Uncore: flatter linear curve (uncore tops out at 3.0 GHz).
inline constexpr double kUncoreVfA = 0.70;  // V
inline constexpr double kUncoreVfB = 0.09;  // V/GHz

/// Section III: "the cores of the second processor have a higher voltage
/// than the cores of the first processor" -- in the paper's numbering the
/// *first* processor is the less efficient one (lower sustained turbo).
/// We give socket 0 a +1.5 % voltage offset and socket 1 the baseline.
inline constexpr double kSocket0VoltageFactor = 1.015;
inline constexpr double kSocket1VoltageFactor = 1.000;

/// Per-core silicon variation (one-sigma relative voltage spread).
inline constexpr double kPerCoreVoltageSigma = 0.004;

// ---------------------------------------------------------------------------
// Power model coefficients (calibrated to Table IV / Table V / Fig. 2b)
// ---------------------------------------------------------------------------
// Dynamic power = cdyn * V^2 * f, with cdyn in W / (V^2 * GHz).
// The FIRESTARTER payload defines the reference activity (cdyn_core = 1.0
// in workload units maps to kCoreCdynFullLoad).

/// Per-core dynamic coefficient at full FIRESTARTER activity, in
/// W/(V^2 GHz). Solves the Table IV equilibria together with
/// kUncoreCdynFullLoad: P(2.3, 2.3) barely fits the 120 W budget (so the
/// turbo equilibrium dithers 2.3/2.4 -> ~2.31 GHz), P(2.2, ~2.85) = TDP,
/// and P(2.1, 3.0) < TDP.
inline constexpr double kCoreCdynFullLoad = 2.86;

/// Uncore (ring + L3 + IMC front) at full FIRESTARTER traffic.
inline constexpr double kUncoreCdynFullLoad = 14.35;

/// Fraction of uncore dynamic power that persists at idle traffic (clock
/// distribution etc.).
inline constexpr double kUncoreIdleActivityFloor = 0.33;

/// Per-socket static power (IO, fuses, PLLs) counted inside the package
/// RAPL domain.
inline constexpr Power kSocketStaticPower = Power::watts(9.0);

/// Per-core leakage at C0 (scales with V^2); cores in C6 are power-gated.
inline constexpr double kCoreLeakagePerV2 = 0.35;  // W/V^2 per core

/// DRAM power: background per socket plus bandwidth-proportional part.
/// Calibrated so idle node RAPL ~32 W total (AC 261.5 W via the PSU model)
/// and FIRESTARTER R ~ 283 W (AC ~560 W, Table V).
inline constexpr Power kDramBackgroundPerSocket = Power::watts(7.15);
inline constexpr double kDramWattsPerGBs = 0.35;

/// Peak-current guardband (Table V discussion): code whose peak-current
/// intensity exceeds the threshold gets its power budget shaved below TDP,
/// which is why LINPACK runs at both lower frequency *and* lower power.
inline constexpr double kGuardbandCurrentThreshold = 0.85;
inline constexpr double kGuardbandWattsPerUnit = 36.7;  // W per unit over threshold

// ---------------------------------------------------------------------------
// AC reference domain (Section III / Figure 2b, footnote 2)
// ---------------------------------------------------------------------------
// Paper fit: P_AC = 0.0003 * P_RAPL^2 + 1.097 * P_RAPL + 225.7 W, R^2>0.9998.
// We model the node overhead + PSU losses to match: the constant term is
// fans-at-max + mainboard + PSU idle loss; the linear/quadratic terms are
// conversion losses.

inline constexpr double kAcQuadCoeff = 0.0003;   // W^-1
inline constexpr double kAcLinCoeff = 1.097;
inline constexpr double kAcConstCoeff = 225.7;   // W

/// Idle node AC power at maximum fan speed (Table II): 261.5 W.
inline constexpr Power kIdleNodeAcPower = Power::watts(261.5);

/// LMG450 accuracy: 0.07 % + 0.23 W (Table II), 20 Sa/s.
inline constexpr double kMeterRelativeError = 0.0007;
inline constexpr Power kMeterAbsoluteError = Power::watts(0.23);
inline constexpr Time kMeterSamplePeriod = Time::ms(50);

/// Sandy Bridge-EP comparison node (Fig. 2a, from [20]): lower-power system
/// without full-speed fans; AC = c0 + c1 * DC (approximately linear PSU).
inline constexpr double kSnbAcConstCoeff = 74.0;
inline constexpr double kSnbAcLinCoeff = 1.12;
inline constexpr double kSnbAcQuadCoeff = 0.00012;

// ---------------------------------------------------------------------------
// Uncore frequency scaling policy (Section V-A, Table III)
// ---------------------------------------------------------------------------
// In the *no-stall* scenario the uncore tracks the fastest active core's
// frequency through a firmware ladder. Entries observed in Table III:
//   core  2.5  2.4  2.3  2.2  2.1  2.0  1.9   1.8  1.7  1.6  1.5  1.4-1.2
//   unc   2.2  2.1  2.0  1.9  1.8  1.75 1.65  1.6  1.5  1.4  1.3  1.2
// Turbo request -> 3.0 GHz. The passive socket sits one step lower.
// With memory stalls (or EPB=performance) the target is the 3.0 GHz max.

/// Ladder as (core ratio in 100 MHz units -> uncore target in 100 MHz
/// units); interpolation uses the nearest lower entry.
struct UncoreLadderEntry {
    unsigned core_ratio;
    unsigned uncore_ratio_x2;  // in 50 MHz units to represent 1.75/1.65
};
inline constexpr UncoreLadderEntry kUncoreLadder[] = {
    {25, 44}, {24, 42}, {23, 40}, {22, 38}, {21, 36}, {20, 35},
    {19, 33}, {18, 32}, {17, 30}, {16, 28}, {15, 26}, {14, 24},
    {13, 24}, {12, 24},
};

/// The passive processor's uncore runs one 100 MHz step below the active
/// one's ladder value (floor 1.2 GHz); at turbo it fluctuates 2.9-3.0 GHz.
inline constexpr unsigned kPassiveUncoreStepX2 = 2;  // 100 MHz in 50 MHz units

/// Stall-cycle fraction above which UFS drives the uncore toward its
/// maximum (memory-bound detection threshold in the patent-described loop).
inline constexpr double kUfsStallHighWatermark = 0.25;

/// Under moderate-stall compute load (e.g. FIRESTARTER) the uncore floor
/// tracks the core frequency 1:1 (Table IV: uncore ~= core at turbo).
inline constexpr double kUfsTrackingStallThreshold = 0.05;

// ---------------------------------------------------------------------------
// C-state latencies (Section VI-B, Figures 5/6)
// ---------------------------------------------------------------------------
// Haswell-EP model anchors:
//   C1: <= 1.6 us local, up to 2.1 us remote at 1.2 GHz.
//   C3: ~independent of frequency; +1.5 us above 1.5 GHz;
//       package C3 adds 2-4 us; remote adds ~1 us.
//   C6: adds 2-8 us over C3 depending on frequency (more at low f);
//       package C6 adds 8 us over package C3.
// ACPI tables report 33 us (C3) and 133 us (C6) -- higher than measured.

inline constexpr double kHswC1BaseUs = 0.9;
inline constexpr double kHswC1FreqTermUsGhz = 0.8;   // + term/f
inline constexpr double kHswC1RemoteExtraUs = 0.5;

inline constexpr double kHswC3BaseUs = 14.0;
inline constexpr double kHswC3HighFreqExtraUs = 1.5;  // when f > 1.5 GHz
inline constexpr double kHswC3RemoteExtraUs = 1.0;
inline constexpr double kHswPkgC3ExtraMinUs = 2.0;    // at 1.2 GHz
inline constexpr double kHswPkgC3ExtraMaxUs = 4.0;    // at 2.5+ GHz

inline constexpr double kHswC6ExtraMinUs = 2.0;       // at high frequency
inline constexpr double kHswC6ExtraMaxUs = 8.0;       // at 1.2 GHz
inline constexpr double kHswPkgC6ExtraUs = 8.0;       // over package C3

// Sandy Bridge-EP comparison series (grey in Figures 5/6; from [27]).
inline constexpr double kSnbC1BaseUs = 1.3;
inline constexpr double kSnbC1FreqTermUsGhz = 1.2;
inline constexpr double kSnbC3BaseUs = 20.0;
inline constexpr double kSnbC3FreqTermUsGhz = 6.0;
inline constexpr double kSnbC3RemoteExtraUs = 2.0;
inline constexpr double kSnbPkgC3ExtraUs = 5.0;
inline constexpr double kSnbC6BaseUs = 28.0;
inline constexpr double kSnbC6FreqTermUsGhz = 16.0;
inline constexpr double kSnbPkgC6ExtraUs = 12.0;

// Skylake-SP comparison series (Schoene et al., "Energy Efficiency Features
// of the Intel Skylake-SP Processor"): the core C3 state is gone -- its OS
// ladder slot degenerates to a C1E-like shallow state -- and C6 wake-ups
// land in the 20-40 us band, slightly above Haswell-EP.
inline constexpr double kSkxC1BaseUs = 1.0;
inline constexpr double kSkxC1FreqTermUsGhz = 0.7;
inline constexpr double kSkxC1RemoteExtraUs = 0.6;
inline constexpr double kSkxC1eUs = 8.0;            // the C3 slot maps here
inline constexpr double kSkxC1eRemoteExtraUs = 1.0;
inline constexpr double kSkxC6BaseUs = 26.0;
inline constexpr double kSkxC6FreqTermUsGhz = 7.0;
inline constexpr double kSkxC6RemoteExtraUs = 2.0;
inline constexpr double kSkxPkgC6ExtraUs = 14.0;

/// ACPI _CST-reported worst-case latencies (used by the OS idle governor).
inline constexpr Time kAcpiC1Latency = Time::us(3);
inline constexpr Time kAcpiC3Latency = Time::us(33);
inline constexpr Time kAcpiC6Latency = Time::us(133);

/// Measurement noise on wake-up latency probes (one sigma, microseconds).
inline constexpr double kCstateNoiseSigmaUs = 0.15;

// ---------------------------------------------------------------------------
// Memory performance model (Section VII, Figures 7/8)
// ---------------------------------------------------------------------------
// Per-core achievable read bandwidth follows a two-resource latency model:
//   bw_core = 1 / (c_core / f_core + c_unc / f_unc + c_flat)
// and the aggregate is min(n * bw_core * eff(n), domain capacity).

// L3 (Haswell-EP): strongly core-frequency bound; flattens at high f as the
// uncore term dominates (Fig. 7a / Fig. 8 left).
inline constexpr double kHswL3CoreCyclesPerByte = 0.085;   // c_core (GHz*s/GB)
inline constexpr double kHswL3UncoreCyclesPerByte = 0.030; // c_unc
inline constexpr double kHswL3FlatSecPerGB = 0.004;
inline constexpr double kHswL3RingCapacityBytesPerCycle = 110.0;  // * f_unc

// DRAM (Haswell-EP): per-core demand saturates the IMCs at ~8 cores
// (Fig. 8 right); capacity is uncore/IMC side, not core side.
inline constexpr double kHswDramCoreCyclesPerByte = 0.16;
inline constexpr double kHswDramUncoreCyclesPerByte = 0.05;
inline constexpr double kHswDramFlatSecPerGB = 0.065;
inline constexpr double kHswDramPeakGBs = 58.0;  // measured read peak/socket
/// The IMCs sit in the uncore domain: below this uncore clock the peak
/// DRAM capacity throttles proportionally. UFS keeps the uncore at/above
/// this knee under memory load, which is why the paper never observes the
/// throttle -- but a software UNCORE_RATIO_LIMIT cap exposes it.
inline constexpr double kHswDramCapacityUncoreKneeGhz = 2.2;

// Sandy Bridge-EP: uncore clocked with cores, lower per-core width.
inline constexpr double kSnbL3CoreCyclesPerByte = 0.11;
inline constexpr double kSnbL3UncoreCyclesPerByte = 0.055;
inline constexpr double kSnbL3FlatSecPerGB = 0.004;
inline constexpr double kSnbL3RingCapacityBytesPerCycle = 90.0;
inline constexpr double kSnbDramCoreCyclesPerByte = 0.18;
inline constexpr double kSnbDramUncoreCyclesPerByte = 0.06;
inline constexpr double kSnbDramFlatSecPerGB = 0.075;
inline constexpr double kSnbDramPeakGBs = 44.0;
/// On SNB the effective DRAM capacity is throttled by the (core-coupled)
/// uncore clock: capacity * min(1, f_unc / nominal).
inline constexpr bool kSnbDramCapacityTracksUncore = true;

// Westmere-EP: fixed uncore.
inline constexpr double kWsmL3CoreCyclesPerByte = 0.16;
inline constexpr double kWsmL3UncoreCyclesPerByte = 0.07;
inline constexpr double kWsmL3FlatSecPerGB = 0.006;
inline constexpr double kWsmL3RingCapacityBytesPerCycle = 60.0;
inline constexpr double kWsmDramCoreCyclesPerByte = 0.20;
inline constexpr double kWsmDramUncoreCyclesPerByte = 0.07;
inline constexpr double kWsmDramFlatSecPerGB = 0.10;
inline constexpr double kWsmDramPeakGBs = 21.0;

/// Small arbitration bonus at low concurrency (L3 scales "slightly better
/// than linear ... at low levels of concurrency", Section VII).
inline constexpr double kL3LowConcurrencyBonus = 0.05;

/// Hyper-Threading: second thread on a core adds this fraction of demand
/// ("multiple threads per core only is beneficial for low-concurrency").
inline constexpr double kHtBandwidthBonus = 0.18;

// ---------------------------------------------------------------------------
// FIRESTARTER payload (Section VIII)
// ---------------------------------------------------------------------------

/// Group ratios: 27.8 % reg, 62.7 % L1, 7.1 % L2, 0.8 % L3, 1.6 % mem.
inline constexpr double kFsRegRatio = 0.278;
inline constexpr double kFsL1Ratio = 0.627;
inline constexpr double kFsL2Ratio = 0.071;
inline constexpr double kFsL3Ratio = 0.008;
inline constexpr double kFsMemRatio = 0.016;

/// Achieved instructions per cycle: 3.1 with Hyper-Threading, 2.8 without.
inline constexpr double kFsIpcHt = 3.1;
inline constexpr double kFsIpcNoHt = 2.8;

/// Sensitivity of FIRESTARTER IPC to the core/uncore clock ratio, fitted to
/// the Table IV GIPS column: ipc(r) = ipc_unity - sens * (r - 1) with
/// r = f_core / f_uncore.
inline constexpr double kFsIpcUncoreSensitivity = 0.944;

/// Instruction fetch window is 16 bytes; payload groups are 4 instructions.
inline constexpr unsigned kFetchWindowBytes = 16;
inline constexpr unsigned kFsGroupInstructions = 4;

/// The loop must exceed the uop cache (~1.5 K uops) but fit in L1I (32 KiB).
inline constexpr unsigned kUopCacheCapacityUops = 1536;
inline constexpr unsigned kL1ICapacityBytes = 32 * 1024;

// ---------------------------------------------------------------------------
// Energy performance bias (Section II-C)
// ---------------------------------------------------------------------------
// MSR values: 0 = performance, 6 = balanced, 15 = energy saving; measured
// mapping: 1-7 -> balanced, 8-14 -> energy saving.
inline constexpr std::uint64_t kEpbPerformance = 0;
inline constexpr std::uint64_t kEpbBalanced = 6;
inline constexpr std::uint64_t kEpbEnergySaving = 15;

}  // namespace hsw::arch::cal
