#include "cstates/wake_latency.hpp"

#include <algorithm>

#include "arch/calibration.hpp"

namespace hsw::cstates {

namespace cal = hsw::arch::cal;

WakeProfile profile_for(arch::Generation generation) {
    switch (generation) {
        case arch::Generation::HaswellEP:
        case arch::Generation::HaswellHE:
            return WakeProfile::Haswell;
        case arch::Generation::SkylakeSP:
            return WakeProfile::Skylake;
        default:
            return WakeProfile::SandyBridge;
    }
}

WakeLatencyModel::WakeLatencyModel(arch::Generation generation)
    : profile_{profile_for(generation)} {}

WakeLatencyModel::WakeLatencyModel(WakeProfile profile) : profile_{profile} {}

double WakeLatencyModel::haswell_us(CState state, double f_ghz,
                                    WakeScenario scenario) const {
    const bool remote = scenario != WakeScenario::Local;
    const bool package_sleep = scenario == WakeScenario::RemoteIdle;

    switch (state) {
        case CState::C0:
            return 0.0;
        case CState::C1:
            // "below 1.6 us for local ... up to 2.1 us for remote (at 1.2 GHz)".
            return cal::kHswC1BaseUs + cal::kHswC1FreqTermUsGhz / f_ghz -
                   cal::kHswC1FreqTermUsGhz / 2.5 +
                   (remote ? cal::kHswC1RemoteExtraUs : 0.0);
        case CState::C3: {
            // "mostly independent of the core frequencies ... 1.5 us higher
            // when frequencies are greater than 1.5 GHz".
            double us = cal::kHswC3BaseUs;
            if (f_ghz > 1.5) us += cal::kHswC3HighFreqExtraUs;
            if (remote) us += cal::kHswC3RemoteExtraUs;
            if (package_sleep) {
                // "the package C3 state increases the latency by another two
                // to four microseconds" (more at higher frequency).
                const double t = std::clamp((f_ghz - 1.2) / (2.5 - 1.2), 0.0, 1.0);
                us += cal::kHswPkgC3ExtraMinUs +
                      (cal::kHswPkgC3ExtraMaxUs - cal::kHswPkgC3ExtraMinUs) * t;
            }
            return us;
        }
        case CState::C6: {
            // C6 = C3 + 2..8 us, strongly frequency dependent (more at low f).
            double us = haswell_us(CState::C3, f_ghz,
                                   package_sleep ? WakeScenario::RemoteActive : scenario);
            const double t = std::clamp((2.5 - f_ghz) / (2.5 - 1.2), 0.0, 1.0);
            us += cal::kHswC6ExtraMinUs + (cal::kHswC6ExtraMaxUs - cal::kHswC6ExtraMinUs) * t;
            if (package_sleep) {
                // Package C6 adds 8 us over package C3's extra.
                us += cal::kHswPkgC6ExtraUs;
            }
            return us;
        }
    }
    return 0.0;
}

double WakeLatencyModel::sandy_bridge_us(CState state, double f_ghz,
                                         WakeScenario scenario) const {
    const bool remote = scenario != WakeScenario::Local;
    const bool package_sleep = scenario == WakeScenario::RemoteIdle;
    switch (state) {
        case CState::C0:
            return 0.0;
        case CState::C1:
            return cal::kSnbC1BaseUs + cal::kSnbC1FreqTermUsGhz / f_ghz -
                   cal::kSnbC1FreqTermUsGhz / 2.6 + (remote ? 0.6 : 0.0);
        case CState::C3: {
            double us = cal::kSnbC3BaseUs + cal::kSnbC3FreqTermUsGhz / f_ghz -
                        cal::kSnbC3FreqTermUsGhz / 2.6;
            if (remote) us += cal::kSnbC3RemoteExtraUs;
            if (package_sleep) us += cal::kSnbPkgC3ExtraUs;
            return us;
        }
        case CState::C6: {
            double us = cal::kSnbC6BaseUs + cal::kSnbC6FreqTermUsGhz / f_ghz -
                        cal::kSnbC6FreqTermUsGhz / 2.6;
            if (remote) us += cal::kSnbC3RemoteExtraUs;
            if (package_sleep) us += cal::kSnbPkgC6ExtraUs;
            return us;
        }
    }
    return 0.0;
}

double WakeLatencyModel::skylake_us(CState state, double f_ghz,
                                    WakeScenario scenario) const {
    const bool remote = scenario != WakeScenario::Local;
    const bool package_sleep = scenario == WakeScenario::RemoteIdle;
    switch (state) {
        case CState::C0:
            return 0.0;
        case CState::C1:
            return cal::kSkxC1BaseUs + cal::kSkxC1FreqTermUsGhz / f_ghz -
                   cal::kSkxC1FreqTermUsGhz / 2.7 +
                   (remote ? cal::kSkxC1RemoteExtraUs : 0.0);
        case CState::C3:
            // Skylake-SP dropped the core C3 state; the ladder slot behaves
            // like a shallow C1E (clock stopped, caches retained), nearly
            // frequency independent.
            return cal::kSkxC1eUs + (remote ? cal::kSkxC1eRemoteExtraUs : 0.0);
        case CState::C6: {
            double us = cal::kSkxC6BaseUs + cal::kSkxC6FreqTermUsGhz / f_ghz -
                        cal::kSkxC6FreqTermUsGhz / 2.7;
            if (remote) us += cal::kSkxC6RemoteExtraUs;
            if (package_sleep) us += cal::kSkxPkgC6ExtraUs;
            return us;
        }
    }
    return 0.0;
}

Time WakeLatencyModel::mean_latency(CState state, Frequency f,
                                    WakeScenario scenario) const {
    const double f_ghz = std::max(f.as_ghz(), 0.1);
    double us = 0.0;
    switch (profile_) {
        case WakeProfile::Haswell:
            us = haswell_us(state, f_ghz, scenario);
            break;
        case WakeProfile::SandyBridge:
            us = sandy_bridge_us(state, f_ghz, scenario);
            break;
        case WakeProfile::Skylake:
            us = skylake_us(state, f_ghz, scenario);
            break;
    }
    return Time::from_us(us);
}

Time WakeLatencyModel::sample(CState state, Frequency f, WakeScenario scenario,
                              util::Rng& rng) const {
    const Time mean = mean_latency(state, f, scenario);
    const double noisy_us =
        std::max(0.0, mean.as_us() + rng.normal(0.0, cal::kCstateNoiseSigmaUs));
    return Time::from_us(noisy_us);
}

}  // namespace hsw::cstates
