// ACPI processor idle states and package state resolution (Section VI-B).
//
// Core states: C0 (running), C1 (halt), C3 (clock gated, caches flushed to
// L3), C6 (power gated). A package enters PC3/PC6 only when *no core in the
// whole system* is active -- the paper observes that a running core on the
// other socket keeps both packages out of deep sleep, and that the uncore
// clock halts in PC3/PC6.
#pragma once

#include <span>
#include <string_view>

#include "util/units.hpp"

namespace hsw::cstates {

enum class CState { C0, C1, C3, C6 };

enum class PackageCState { PC0, PC2, PC3, PC6 };

[[nodiscard]] constexpr std::string_view name(CState s) {
    switch (s) {
        case CState::C0: return "C0";
        case CState::C1: return "C1";
        case CState::C3: return "C3";
        case CState::C6: return "C6";
    }
    return "?";
}

[[nodiscard]] constexpr std::string_view name(PackageCState s) {
    switch (s) {
        case PackageCState::PC0: return "PC0";
        case PackageCState::PC2: return "PC2";
        case PackageCState::PC3: return "PC3";
        case PackageCState::PC6: return "PC6";
    }
    return "?";
}

/// True when the core consumes no leakage (power gated).
[[nodiscard]] constexpr bool power_gated(CState s) { return s == CState::C6; }

/// True when the core clock runs (only C0 executes instructions).
[[nodiscard]] constexpr bool executing(CState s) { return s == CState::C0; }

/// Resolve the package state from this socket's core states and the
/// system-wide activity flag. `any_core_active_in_system` covers *both*
/// sockets (Section V-A: "these states are not used when there is still any
/// core active in the system -- even if this core is located on the other
/// processor").
[[nodiscard]] PackageCState resolve_package_state(std::span<const CState> core_states,
                                                  bool any_core_active_in_system);

/// The uncore clock is halted in deep package sleep (Section V-A).
[[nodiscard]] constexpr bool uncore_clock_halted(PackageCState s) {
    return s == PackageCState::PC3 || s == PackageCState::PC6;
}

/// ACPI _CST worst-case latency reported to the OS (higher than measured;
/// Section VI-B argues for a runtime-updatable interface).
[[nodiscard]] util::Time acpi_reported_latency(CState s);

}  // namespace hsw::cstates
