#include "cstates/cstate.hpp"

#include "arch/calibration.hpp"

namespace hsw::cstates {

namespace cal = hsw::arch::cal;

PackageCState resolve_package_state(std::span<const CState> core_states,
                                    bool any_core_active_in_system) {
    if (any_core_active_in_system) return PackageCState::PC0;

    // The package can only sleep as deep as its shallowest core.
    bool all_c6 = true;
    bool all_c3_or_deeper = true;
    for (CState s : core_states) {
        if (s == CState::C0) return PackageCState::PC0;
        if (s != CState::C6) all_c6 = false;
        if (s == CState::C1) all_c3_or_deeper = false;
    }
    if (all_c6) return PackageCState::PC6;
    if (all_c3_or_deeper) return PackageCState::PC3;
    return PackageCState::PC2;
}

util::Time acpi_reported_latency(CState s) {
    switch (s) {
        case CState::C0: return util::Time::zero();
        case CState::C1: return cal::kAcpiC1Latency;
        case CState::C3: return cal::kAcpiC3Latency;
        case CState::C6: return cal::kAcpiC6Latency;
    }
    return util::Time::zero();
}

}  // namespace hsw::cstates
