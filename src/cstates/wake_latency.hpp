// Wake-up latency model (Section VI-B, Figures 5/6, following [27]).
//
// Transition latency back to C0 depends on the wakee's C-state, its core
// frequency, whether the waker sits on the same socket (local) or the other
// one (remote), and whether the wakee's package was in a deep sleep state
// (package C3/C6 adds the uncore restart).
#pragma once

#include "arch/generation.hpp"
#include "cstates/cstate.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hsw::cstates {

using util::Frequency;
using util::Time;

/// The three measurement scenarios of Figures 5/6.
enum class WakeScenario {
    Local,       // waker and wakee on the same processor
    RemoteActive,// waker on the other processor, third core keeps wakee's
                 // package out of deep sleep ("remote C3/C6")
    RemoteIdle,  // waker on the other processor, wakee's package fully idle
                 // ("package C3/C6")
};

[[nodiscard]] constexpr std::string_view name(WakeScenario s) {
    switch (s) {
        case WakeScenario::Local: return "local";
        case WakeScenario::RemoteActive: return "remote-active";
        case WakeScenario::RemoteIdle: return "remote-idle";
    }
    return "?";
}

class WakeLatencyModel {
public:
    explicit WakeLatencyModel(arch::Generation generation);

    /// Deterministic mean latency for waking a core in `state` at core
    /// frequency `f` under the given scenario.
    [[nodiscard]] Time mean_latency(CState state, Frequency f, WakeScenario scenario) const;

    /// One noisy probe sample (what the measurement tool observes).
    [[nodiscard]] Time sample(CState state, Frequency f, WakeScenario scenario,
                              util::Rng& rng) const;

private:
    [[nodiscard]] double haswell_us(CState state, double f_ghz, WakeScenario scenario) const;
    [[nodiscard]] double sandy_bridge_us(CState state, double f_ghz,
                                         WakeScenario scenario) const;

    arch::Generation generation_;
};

}  // namespace hsw::cstates
