// Wake-up latency model (Section VI-B, Figures 5/6, following [27]).
//
// Transition latency back to C0 depends on the wakee's C-state, its core
// frequency, whether the waker sits on the same socket (local) or the other
// one (remote), and whether the wakee's package was in a deep sleep state
// (package C3/C6 adds the uncore restart).
#pragma once

#include "arch/generation.hpp"
#include "cstates/cstate.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hsw::cstates {

using util::Frequency;
using util::Time;

/// The three measurement scenarios of Figures 5/6.
enum class WakeScenario {
    Local,       // waker and wakee on the same processor
    RemoteActive,// waker on the other processor, third core keeps wakee's
                 // package out of deep sleep ("remote C3/C6")
    RemoteIdle,  // waker on the other processor, wakee's package fully idle
                 // ("package C3/C6")
};

[[nodiscard]] constexpr std::string_view name(WakeScenario s) {
    switch (s) {
        case WakeScenario::Local: return "local";
        case WakeScenario::RemoteActive: return "remote-active";
        case WakeScenario::RemoteIdle: return "remote-idle";
    }
    return "?";
}

/// The latency families the model distinguishes. Generations collapse onto
/// one of these (platform backends pick; profile_for() is the default map).
enum class WakeProfile {
    Haswell,      // Figures 5/6 main series
    SandyBridge,  // grey comparison series (also Westmere/Ivy Bridge here)
    Skylake,      // no core C3; C6 wake-ups in the 20-40 us band
};

/// Default generation -> profile mapping (Haswell parts -> Haswell,
/// Skylake-SP -> Skylake, everything older -> SandyBridge).
[[nodiscard]] WakeProfile profile_for(arch::Generation generation);

class WakeLatencyModel {
public:
    explicit WakeLatencyModel(arch::Generation generation);
    explicit WakeLatencyModel(WakeProfile profile);

    /// Deterministic mean latency for waking a core in `state` at core
    /// frequency `f` under the given scenario.
    [[nodiscard]] Time mean_latency(CState state, Frequency f, WakeScenario scenario) const;

    /// One noisy probe sample (what the measurement tool observes).
    [[nodiscard]] Time sample(CState state, Frequency f, WakeScenario scenario,
                              util::Rng& rng) const;

private:
    [[nodiscard]] double haswell_us(CState state, double f_ghz, WakeScenario scenario) const;
    [[nodiscard]] double sandy_bridge_us(CState state, double f_ghz,
                                         WakeScenario scenario) const;
    [[nodiscard]] double skylake_us(CState state, double f_ghz, WakeScenario scenario) const;

    WakeProfile profile_;
};

}  // namespace hsw::cstates
