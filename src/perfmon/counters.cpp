#include "perfmon/counters.hpp"

#include "msr/addresses.hpp"

namespace hsw::perfmon {

CounterReader::CounterReader(const msr::MsrFile& file, Frequency nominal)
    : file_{&file}, nominal_{nominal} {}

CounterSnapshot CounterReader::snapshot(unsigned cpu, Time now) const {
    CounterSnapshot s;
    s.when = now;
    s.aperf = file_->read(cpu, msr::IA32_APERF);
    s.mperf = file_->read(cpu, msr::IA32_MPERF);
    s.instructions = file_->read(cpu, msr::IA32_FIXED_CTR0);
    s.core_cycles = file_->read(cpu, msr::IA32_FIXED_CTR1);
    s.stall_cycles = file_->read(cpu, msr::MSR_STALL_CYCLES);
    s.uncore_cycles = file_->read(cpu, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    return s;
}

DerivedMetrics CounterReader::derive(const CounterSnapshot& begin,
                                     const CounterSnapshot& end) const {
    DerivedMetrics m;
    m.wall_seconds = (end.when - begin.when).as_seconds();
    if (m.wall_seconds <= 0.0) return m;

    const auto d = [](std::uint64_t a, std::uint64_t b) {
        return static_cast<double>(b - a);  // wraparound-safe for uint64
    };
    const double aperf = d(begin.aperf, end.aperf);
    const double mperf = d(begin.mperf, end.mperf);
    const double instr = d(begin.instructions, end.instructions);
    const double cycles = d(begin.core_cycles, end.core_cycles);
    const double stalls = d(begin.stall_cycles, end.stall_cycles);
    const double uclk = d(begin.uncore_cycles, end.uncore_cycles);

    // Effective frequency over the C0 share: APERF/MPERF * nominal gives
    // the average clock while running; over a fully busy interval this
    // equals d(APERF)/dt.
    m.c0_residency = mperf / (nominal_.as_hz() * m.wall_seconds);
    if (mperf > 0.0) {
        m.effective_frequency =
            Frequency::hz(aperf / mperf * nominal_.as_hz());
    }
    m.uncore_frequency = Frequency::hz(uclk / m.wall_seconds);
    if (cycles > 0.0) {
        m.ipc = instr / cycles;
        m.stall_fraction = stalls / cycles;
    }
    m.giga_instructions_per_sec = instr / m.wall_seconds * 1e-9;
    return m;
}

}  // namespace hsw::perfmon
