// LIKWID-like performance counter access (Section III / V, [22]).
//
// Everything is read through the MSR file, exactly like likwid-perfctr:
// APERF/MPERF for the effective frequency, the fixed counters for
// instructions and core clocks, the U-box fixed counter for the uncore
// clock (UNCORE_CLOCK:UBOXFIX). Derived metrics come from deltas between
// two snapshots.
#pragma once

#include <cstdint>

#include "msr/msr_file.hpp"
#include "util/units.hpp"

namespace hsw::perfmon {

using util::Frequency;
using util::Time;

struct CounterSnapshot {
    Time when;
    std::uint64_t aperf = 0;
    std::uint64_t mperf = 0;
    std::uint64_t instructions = 0;
    std::uint64_t core_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t uncore_cycles = 0;  // UBOXFIX, package scope
};

/// Metrics derived from two snapshots of the same cpu.
struct DerivedMetrics {
    double wall_seconds = 0.0;
    Frequency effective_frequency;   // d(APERF)/dt while in C0
    Frequency uncore_frequency;      // d(UBOXFIX)/dt
    double ipc = 0.0;                // instructions / core cycle
    double giga_instructions_per_sec = 0.0;
    double stall_fraction = 0.0;
    double c0_residency = 0.0;       // d(MPERF)/(nominal*dt)
};

class CounterReader {
public:
    CounterReader(const msr::MsrFile& file, Frequency nominal);

    [[nodiscard]] CounterSnapshot snapshot(unsigned cpu, Time now) const;

    [[nodiscard]] DerivedMetrics derive(const CounterSnapshot& begin,
                                        const CounterSnapshot& end) const;

private:
    const msr::MsrFile* file_;
    Frequency nominal_;
};

}  // namespace hsw::perfmon
