#include "meter/lmg450.hpp"

#include "arch/calibration.hpp"

namespace hsw::meter {

namespace cal = hsw::arch::cal;

Lmg450::Lmg450(std::function<Power()> true_ac_power, std::uint64_t seed)
    : true_ac_power_{std::move(true_ac_power)}, rng_{seed} {}

MeterSample Lmg450::sample(Time now) {
    const double truth = true_ac_power_().as_watts();
    // Specified accuracy: 0.07 % of reading + 0.23 W; treat as the 2-sigma
    // band of a Gaussian error.
    const double sigma = (truth * cal::kMeterRelativeError +
                          cal::kMeterAbsoluteError.as_watts()) / 2.0;
    const MeterSample s{now, Power::watts(truth + rng_.normal(0.0, sigma))};
    series_.push_back(s);
    return s;
}

Power Lmg450::average(Time from, Time to) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : series_) {
        if (s.when >= from && s.when < to) {
            sum += s.power.as_watts();
            ++n;
        }
    }
    return n == 0 ? Power::zero() : Power::watts(sum / static_cast<double>(n));
}

}  // namespace hsw::meter
