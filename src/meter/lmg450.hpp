// ZES ZIMMER LMG450 power meter model (Section III, [19]).
//
// Provides AC power readings for the full node at 20 Sa/s with an accuracy
// of 0.07 % + 0.23 W. Internally the real instrument samples much faster;
// we model each published sample as the true power plus the specified
// error band.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace hsw::meter {

using util::Power;
using util::Time;

struct MeterSample {
    Time when;
    Power power;
};

class Lmg450 {
public:
    /// `true_ac_power` supplies the instantaneous ground-truth wall power.
    Lmg450(std::function<Power()> true_ac_power, std::uint64_t seed = 42);

    /// Take one sample at simulation time `now` (the harness drives the
    /// 20 Sa/s cadence).
    MeterSample sample(Time now);

    [[nodiscard]] const std::vector<MeterSample>& series() const { return series_; }
    void clear() { series_.clear(); }

    /// Mean power over all samples in [from, to).
    [[nodiscard]] Power average(Time from, Time to) const;

    static constexpr Time kSamplePeriod = Time::ms(50);  // 20 Sa/s

private:
    std::function<Power()> true_ac_power_;
    util::Rng rng_;
    std::vector<MeterSample> series_;
};

}  // namespace hsw::meter
