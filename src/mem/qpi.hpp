// QPI link and remote (NUMA) memory access model.
//
// Table I: QPI runs at 8 GT/s (32 GB/s) on Sandy Bridge-EP and 9.6 GT/s
// (38.4 GB/s) on Haswell-EP. Remote DRAM reads ride the link and the
// remote socket's uncore, so remote bandwidth is capped by min(QPI,
// remote IMC) and remote latency adds the link hop.
#pragma once

#include "arch/generation.hpp"
#include "mem/bandwidth_model.hpp"
#include "util/units.hpp"

namespace hsw::mem {

class QpiLink {
public:
    explicit QpiLink(arch::Generation generation);

    /// Raw signalling bandwidth (Table I).
    [[nodiscard]] Bandwidth raw_bandwidth() const { return raw_; }

    /// Usable payload bandwidth after protocol overhead (headers, snoops).
    [[nodiscard]] Bandwidth effective_bandwidth() const {
        return raw_ * kProtocolEfficiency;
    }

    /// One-way hop latency in nanoseconds.
    [[nodiscard]] double hop_latency_ns() const { return hop_ns_; }

    static constexpr double kProtocolEfficiency = 0.75;

private:
    Bandwidth raw_;
    double hop_ns_;
};

/// Remote DRAM read bandwidth: the local cores' demand, throttled by the
/// extra remote latency, capped by min(QPI payload, remote IMC peak).
class RemoteMemoryModel {
public:
    RemoteMemoryModel(arch::Generation generation, unsigned socket_cores);

    [[nodiscard]] Bandwidth remote_dram_read(ConcurrencyConfig c, Frequency core,
                                             Frequency local_uncore,
                                             Frequency remote_uncore) const;

    /// Remote/local bandwidth ratio at a given operating point (the usual
    /// NUMA factor, ~0.55-0.7 on these parts).
    [[nodiscard]] double numa_factor(ConcurrencyConfig c, Frequency core,
                                     Frequency uncore) const;

    [[nodiscard]] const QpiLink& link() const { return link_; }

private:
    BandwidthModel local_;
    QpiLink link_;
    unsigned socket_cores_;
};

}  // namespace hsw::mem
