// Ring interconnect model (Section II-A, Figure 1).
//
// On-die transfers ride bidirectional rings clocked at the uncore frequency.
// Partitioned dies (12/18-core) join their rings through buffered queues;
// crossing them adds latency and shares queue bandwidth.
#pragma once

#include "arch/topology.hpp"
#include "util/units.hpp"

namespace hsw::mem {

using util::Bandwidth;
using util::Frequency;

class RingInterconnect {
public:
    RingInterconnect(const arch::DieTopology& topo, double bytes_per_cycle_capacity);

    /// Aggregate transfer capacity of the ring complex at an uncore clock.
    [[nodiscard]] Bandwidth capacity(Frequency uncore) const;

    /// Capacity available to a transfer between two cores (or core and L3
    /// slice); crossing partitions is constrained by the inter-ring queues.
    [[nodiscard]] Bandwidth path_capacity(unsigned core_a, unsigned core_b,
                                          Frequency uncore) const;

    /// Extra hop latency in uncore cycles when a transfer crosses partitions.
    [[nodiscard]] unsigned cross_partition_penalty_cycles(unsigned core_a,
                                                          unsigned core_b) const;

    [[nodiscard]] const arch::DieTopology& topology() const { return topo_; }

    /// Queue capacity fraction relative to ring capacity.
    static constexpr double kQueueCapacityFraction = 0.5;
    static constexpr unsigned kQueueHopCycles = 5;

private:
    arch::DieTopology topo_;
    double bytes_per_cycle_;
};

}  // namespace hsw::mem
