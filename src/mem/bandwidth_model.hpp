// Shared L3 / DRAM read bandwidth model (Section VII, Figures 7/8).
//
// Per-thread achievable bandwidth follows a two-resource latency model,
//     bw = 1 / (c_core/f_core + c_unc/f_unc + c_flat),
// so it is core-bound at low core clocks and flattens as the uncore term
// dominates. The aggregate is capped by the domain capacity: the ring/L3
// complex (scales with the uncore clock) or the IMCs (fixed DRAM peak;
// on Sandy Bridge-EP effectively scaled by the core-coupled uncore clock,
// which is what makes its DRAM bandwidth frequency dependent).
#pragma once

#include "arch/generation.hpp"
#include "util/units.hpp"

namespace hsw::mem {

using util::Bandwidth;
using util::Frequency;

struct ConcurrencyConfig {
    unsigned cores = 1;             // distinct physical cores in use
    unsigned threads_per_core = 1;  // 1 or 2 (Hyper-Threading)
};

class BandwidthModel {
public:
    explicit BandwidthModel(arch::Generation generation, unsigned socket_cores);

    /// Aggregate L3 read bandwidth of the socket.
    [[nodiscard]] Bandwidth l3_read(ConcurrencyConfig c, Frequency core,
                                    Frequency uncore) const;

    /// Aggregate local-DRAM read bandwidth of the socket.
    [[nodiscard]] Bandwidth dram_read(ConcurrencyConfig c, Frequency core,
                                      Frequency uncore) const;

    /// Per-core demand the workload places on DRAM (used by the power model
    /// and the UFS stall estimate).
    [[nodiscard]] Bandwidth dram_demand_per_core(Frequency core) const;

    [[nodiscard]] arch::Generation generation() const { return generation_; }

private:
    struct LevelCoeffs {
        double core_cpb;   // core cycles per byte term
        double unc_cpb;    // uncore cycles per byte term
        double flat;       // frequency-independent term (s/GB)
        double capacity_bytes_per_uncore_cycle;  // 0 => fixed capacity
        double fixed_capacity_gbs;               // used when above is 0
    };

    [[nodiscard]] Bandwidth aggregate(const LevelCoeffs& k, ConcurrencyConfig c,
                                      Frequency core, Frequency uncore,
                                      bool l3_bonus) const;

    arch::Generation generation_;
    unsigned socket_cores_;
    LevelCoeffs l3_{};
    LevelCoeffs dram_{};
};

}  // namespace hsw::mem
