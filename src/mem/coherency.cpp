#include "mem/coherency.hpp"

#include <algorithm>

#include "mem/cache.hpp"

namespace hsw::mem {

namespace {

/// Latency composition per source: core-clocked cycles, uncore-clocked
/// cycles, and QPI hops (one way).
struct Composition {
    double core_cycles;
    double uncore_cycles;
    double qpi_hops;
    double dram_ns;  // fixed DRAM array access time
};

Composition compose(LineSource source, const CacheHierarchy& h) {
    const double l1 = h.at(Level::L1D).latency_cycles;
    const double l2 = h.at(Level::L2).latency_cycles;
    const double l3_unc = 22.0;  // L3 slice + ring share, uncore cycles
    switch (source) {
        case LineSource::OwnL1:
            return {l1, 0.0, 0.0, 0.0};
        case LineSource::OwnL2:
            return {l2, 0.0, 0.0, 0.0};
        case LineSource::L3Clean:
            // L1/L2 miss handling at the core clock + slice at the uncore.
            return {l2, l3_unc, 0.0, 0.0};
        case LineSource::PeerModified:
            // Home slice snoop + forward from the peer's private cache:
            // roughly double the uncore path plus the peer's L2 readout.
            return {l2 + l2, 2.2 * l3_unc, 0.0, 0.0};
        case LineSource::RemoteL3:
            return {l2, 1.6 * l3_unc, 2.0, 0.0};
        case LineSource::RemoteModified:
            return {l2 + l2, 2.6 * l3_unc, 2.0, 0.0};
        case LineSource::Dram:
            return {l2, 1.4 * l3_unc, 0.0, 50.0};
    }
    return {l1, 0.0, 0.0, 0.0};
}

}  // namespace

CoherencyModel::CoherencyModel(arch::Generation generation,
                               const arch::DieTopology& topology)
    : generation_{generation}, topo_{topology}, link_{generation} {}

double CoherencyModel::latency_ns(LineSource source, unsigned requester,
                                  unsigned holder, Frequency core,
                                  Frequency uncore) const {
    const auto& hierarchy = hierarchy_for(generation_);
    Composition c = compose(source, hierarchy);

    // Cross-partition transfers ride the inter-ring queues (Figure 1).
    if (source == LineSource::PeerModified &&
        topo_.crosses_partition(requester % topo_.enabled_cores,
                                holder % topo_.enabled_cores)) {
        c.uncore_cycles += 2.0 * RingInterconnect::kQueueHopCycles;
    }

    const double core_ghz = std::max(core.as_ghz(), 0.1);
    const double unc_ghz = std::max(uncore.as_ghz(), 0.1);
    return c.core_cycles / core_ghz + c.uncore_cycles / unc_ghz +
           c.qpi_hops * link_.hop_latency_ns() + c.dram_ns;
}

double CoherencyModel::uncore_share(LineSource source) const {
    const auto& hierarchy = hierarchy_for(generation_);
    const Composition c = compose(source, hierarchy);
    // Evaluate at the reference point (2.5 GHz core, 3.0 GHz uncore).
    const double core_ns = c.core_cycles / 2.5;
    const double unc_ns = c.uncore_cycles / 3.0;
    const double fixed = c.qpi_hops * link_.hop_latency_ns() + c.dram_ns;
    const double total = core_ns + unc_ns + fixed;
    return total > 0.0 ? unc_ns / total : 0.0;
}

}  // namespace hsw::mem
