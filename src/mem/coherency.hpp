// Cache-line transfer latency model (the paper's companion methodology,
// [28]: "Memory Performance and Cache Coherency Effects").
//
// Reading a line that another core holds traverses the ring to the home
// L3 slice, possibly a cross-partition queue (Figure 1), and for modified
// remote-socket lines the QPI link. Latencies therefore split into a
// core-clocked part (L1/L2 pipelines) and an uncore-clocked part (ring
// hops, L3 slice, snoop) -- which is why the paper notes the uncore
// frequency has "a significant impact on on-die cache-line transfer
// rates" (Section II-D).
#pragma once

#include "arch/topology.hpp"
#include "mem/qpi.hpp"
#include "mem/ring.hpp"
#include "util/units.hpp"

namespace hsw::mem {

using util::Frequency;

/// Where the requested line currently lives.
enum class LineSource {
    OwnL1,          // hit in the requesting core's L1D
    OwnL2,          // hit in the requesting core's L2
    L3Clean,        // unowned copy in the home L3 slice
    PeerModified,   // modified in another core's L1/L2 (same socket)
    RemoteL3,       // clean in the other socket's L3
    RemoteModified, // modified in a core of the other socket
    Dram,           // nowhere cached: home IMC access
};

[[nodiscard]] constexpr const char* name(LineSource s) {
    switch (s) {
        case LineSource::OwnL1: return "own L1";
        case LineSource::OwnL2: return "own L2";
        case LineSource::L3Clean: return "L3 (clean)";
        case LineSource::PeerModified: return "peer modified";
        case LineSource::RemoteL3: return "remote L3";
        case LineSource::RemoteModified: return "remote modified";
        case LineSource::Dram: return "local DRAM";
    }
    return "?";
}

class CoherencyModel {
public:
    CoherencyModel(arch::Generation generation, const arch::DieTopology& topology);

    /// Load-to-use latency for a line from `source`, in nanoseconds.
    /// `requester`/`holder` are physical core ids on the die (used for the
    /// cross-partition queue penalty); `holder` is ignored for own-cache,
    /// DRAM and remote sources.
    [[nodiscard]] double latency_ns(LineSource source, unsigned requester,
                                    unsigned holder, Frequency core,
                                    Frequency uncore) const;

    /// Fraction of the latency paid in uncore cycles (the UFS-sensitive
    /// share; 0 for own-cache hits).
    [[nodiscard]] double uncore_share(LineSource source) const;

private:
    arch::Generation generation_;
    arch::DieTopology topo_;
    QpiLink link_;
};

}  // namespace hsw::mem
