#include "mem/bandwidth_model.hpp"

#include <algorithm>
#include <cmath>

#include "arch/calibration.hpp"

namespace hsw::mem {

namespace cal = hsw::arch::cal;

BandwidthModel::BandwidthModel(arch::Generation generation, unsigned socket_cores)
    : generation_{generation}, socket_cores_{socket_cores} {
    switch (generation) {
        case arch::Generation::HaswellEP:
        case arch::Generation::HaswellHE:
            l3_ = {cal::kHswL3CoreCyclesPerByte, cal::kHswL3UncoreCyclesPerByte,
                   cal::kHswL3FlatSecPerGB, cal::kHswL3RingCapacityBytesPerCycle, 0.0};
            dram_ = {cal::kHswDramCoreCyclesPerByte, cal::kHswDramUncoreCyclesPerByte,
                     cal::kHswDramFlatSecPerGB, 0.0, cal::kHswDramPeakGBs};
            break;
        case arch::Generation::SandyBridgeEP:
        case arch::Generation::IvyBridgeEP:
            l3_ = {cal::kSnbL3CoreCyclesPerByte, cal::kSnbL3UncoreCyclesPerByte,
                   cal::kSnbL3FlatSecPerGB, cal::kSnbL3RingCapacityBytesPerCycle, 0.0};
            dram_ = {cal::kSnbDramCoreCyclesPerByte, cal::kSnbDramUncoreCyclesPerByte,
                     cal::kSnbDramFlatSecPerGB, 0.0, cal::kSnbDramPeakGBs};
            break;
        case arch::Generation::WestmereEP:
            l3_ = {cal::kWsmL3CoreCyclesPerByte, cal::kWsmL3UncoreCyclesPerByte,
                   cal::kWsmL3FlatSecPerGB, cal::kWsmL3RingCapacityBytesPerCycle, 0.0};
            dram_ = {cal::kWsmDramCoreCyclesPerByte, cal::kWsmDramUncoreCyclesPerByte,
                     cal::kWsmDramFlatSecPerGB, 0.0, cal::kWsmDramPeakGBs};
            break;
    }
}

Bandwidth BandwidthModel::aggregate(const LevelCoeffs& k, ConcurrencyConfig c,
                                    Frequency core, Frequency uncore,
                                    bool l3_bonus) const {
    const double f_core = std::max(core.as_ghz(), 0.1);
    const double f_unc = std::max(uncore.as_ghz(), 0.1);

    // Per-thread latency-limited bandwidth (GB/s).
    const double per_thread = 1.0 / (k.core_cpb / f_core + k.unc_cpb / f_unc + k.flat);

    // A second hardware thread hides part of the latency but shares the
    // core's ports: worth kHtBandwidthBonus of one thread's bandwidth.
    double per_core = per_thread;
    if (c.threads_per_core >= 2) per_core *= 1.0 + cal::kHtBandwidthBonus;

    // Slightly superlinear core scaling at low concurrency (Section VII).
    double demand = per_core * static_cast<double>(c.cores);
    if (l3_bonus && socket_cores_ > 1) {
        const double ramp = 1.0 - std::exp(-static_cast<double>(c.cores - 1) / 3.0);
        demand *= 1.0 + cal::kL3LowConcurrencyBonus * ramp;
    }

    // Domain capacity.
    double capacity_gbs;
    if (k.capacity_bytes_per_uncore_cycle > 0.0) {
        capacity_gbs = k.capacity_bytes_per_uncore_cycle * f_unc;
    } else {
        capacity_gbs = k.fixed_capacity_gbs;
        const bool haswell = generation_ == arch::Generation::HaswellEP ||
                             generation_ == arch::Generation::HaswellHE;
        if (haswell) {
            // The IMCs clock with the uncore: UFS normally holds it above
            // the knee, but a software uncore cap throttles the peak.
            capacity_gbs *=
                std::min(1.0, f_unc / cal::kHswDramCapacityUncoreKneeGhz);
        } else if (generation_ != arch::Generation::WestmereEP &&
                   cal::kSnbDramCapacityTracksUncore) {
            // Sandy Bridge-EP: the (core-coupled) uncore clock throttles the
            // effective IMC capacity below nominal speed.
            const double nominal = 2.6;
            capacity_gbs *= std::min(1.0, f_unc / nominal);
        }
    }

    return Bandwidth::gb_per_sec(std::min(demand, capacity_gbs));
}

Bandwidth BandwidthModel::l3_read(ConcurrencyConfig c, Frequency core,
                                  Frequency uncore) const {
    return aggregate(l3_, c, core, uncore, /*l3_bonus=*/true);
}

Bandwidth BandwidthModel::dram_read(ConcurrencyConfig c, Frequency core,
                                    Frequency uncore) const {
    return aggregate(dram_, c, core, uncore, /*l3_bonus=*/false);
}

Bandwidth BandwidthModel::dram_demand_per_core(Frequency core) const {
    const double f_core = std::max(core.as_ghz(), 0.1);
    return Bandwidth::gb_per_sec(
        1.0 / (dram_.core_cpb / f_core + dram_.unc_cpb / 3.0 + dram_.flat));
}

}  // namespace hsw::mem
