#include "mem/ring.hpp"

namespace hsw::mem {

RingInterconnect::RingInterconnect(const arch::DieTopology& topo,
                                   double bytes_per_cycle_capacity)
    : topo_{topo}, bytes_per_cycle_{bytes_per_cycle_capacity} {}

Bandwidth RingInterconnect::capacity(Frequency uncore) const {
    return Bandwidth::bytes_per_sec(bytes_per_cycle_ * uncore.as_hz());
}

Bandwidth RingInterconnect::path_capacity(unsigned core_a, unsigned core_b,
                                          Frequency uncore) const {
    if (!topo_.crosses_partition(core_a, core_b)) return capacity(uncore);
    return capacity(uncore) * kQueueCapacityFraction;
}

unsigned RingInterconnect::cross_partition_penalty_cycles(unsigned core_a,
                                                          unsigned core_b) const {
    return topo_.crosses_partition(core_a, core_b) ? kQueueHopCycles : 0;
}

}  // namespace hsw::mem
