#include "mem/qpi.hpp"

#include <algorithm>

namespace hsw::mem {

QpiLink::QpiLink(arch::Generation generation) {
    switch (generation) {
        case arch::Generation::HaswellEP:
        case arch::Generation::HaswellHE:
            raw_ = Bandwidth::gb_per_sec(38.4);  // 9.6 GT/s (Table I)
            hop_ns_ = 40.0;
            break;
        case arch::Generation::SandyBridgeEP:
        case arch::Generation::IvyBridgeEP:
            raw_ = Bandwidth::gb_per_sec(32.0);  // 8 GT/s
            hop_ns_ = 45.0;
            break;
        case arch::Generation::WestmereEP:
            raw_ = Bandwidth::gb_per_sec(25.6);  // 6.4 GT/s
            hop_ns_ = 55.0;
            break;
    }
}

RemoteMemoryModel::RemoteMemoryModel(arch::Generation generation, unsigned socket_cores)
    : local_{generation, socket_cores}, link_{generation}, socket_cores_{socket_cores} {}

Bandwidth RemoteMemoryModel::remote_dram_read(ConcurrencyConfig c, Frequency core,
                                              Frequency local_uncore,
                                              Frequency remote_uncore) const {
    // Per-thread demand shrinks with the extra round-trip latency: scale
    // the local latency-limited bandwidth by t_local / (t_local + t_link).
    const Bandwidth local_single =
        local_.dram_read(ConcurrencyConfig{1, c.threads_per_core}, core, local_uncore);
    const double t_local_ns = local_single.as_gb_per_sec() > 0.0
                                  ? 64.0 / local_single.as_gb_per_sec()
                                  : 1e9;  // ns per cache line per thread
    const double t_link_ns = 2.0 * link_.hop_latency_ns() /
                             std::max(1u, c.cores);  // pipelined across cores
    const double latency_scale = t_local_ns / (t_local_ns + t_link_ns);

    const Bandwidth local_aggregate = local_.dram_read(c, core, local_uncore);
    const double demand = local_aggregate.as_gb_per_sec() * latency_scale;

    // Caps: the QPI payload bandwidth and the remote socket's IMCs (which
    // run at the remote uncore clock).
    const double qpi_cap = link_.effective_bandwidth().as_gb_per_sec();
    const double remote_imc_cap =
        local_.dram_read(ConcurrencyConfig{socket_cores_, 2}, core, remote_uncore)
            .as_gb_per_sec();
    return Bandwidth::gb_per_sec(std::min({demand, qpi_cap, remote_imc_cap}));
}

double RemoteMemoryModel::numa_factor(ConcurrencyConfig c, Frequency core,
                                      Frequency uncore) const {
    const double local = local_.dram_read(c, core, uncore).as_gb_per_sec();
    if (local <= 0.0) return 0.0;
    return remote_dram_read(c, core, uncore, uncore).as_gb_per_sec() / local;
}

}  // namespace hsw::mem
