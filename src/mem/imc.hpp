// Integrated memory controller model.
//
// Haswell-EP hosts one IMC per ring partition, each driving two DDR4-2133
// channels (Figure 1); theoretical peak is 68.2 GB/s per socket (Table I).
#pragma once

#include "arch/generation.hpp"
#include "util/units.hpp"

namespace hsw::mem {

using util::Bandwidth;

struct DdrConfig {
    const char* type;       // "DDR3-1600" / "DDR4-2133"
    double mega_transfers;  // MT/s
    unsigned bus_bytes = 8; // 64-bit channel
};

[[nodiscard]] DdrConfig ddr_config_for(arch::Generation g);

class Imc {
public:
    Imc(arch::Generation generation, unsigned channels);

    /// Theoretical peak = channels * bus bytes * MT/s.
    [[nodiscard]] Bandwidth theoretical_peak() const;

    /// Sustained read bandwidth (efficiency-derated theoretical peak).
    [[nodiscard]] Bandwidth sustained_read_peak() const;

    [[nodiscard]] unsigned channels() const { return channels_; }

    /// Read efficiency of open-page streaming accesses.
    static constexpr double kStreamEfficiency = 0.85;

private:
    arch::Generation generation_;
    unsigned channels_;
};

}  // namespace hsw::mem
