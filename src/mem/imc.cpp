#include "mem/imc.hpp"

namespace hsw::mem {

DdrConfig ddr_config_for(arch::Generation g) {
    switch (g) {
        case arch::Generation::WestmereEP:
            return {"DDR3-1333", 1333.0};
        case arch::Generation::SandyBridgeEP:
        case arch::Generation::IvyBridgeEP:
            return {"DDR3-1600", 1600.0};
        case arch::Generation::HaswellEP:
        case arch::Generation::HaswellHE:
            return {"DDR4-2133", 2133.0};
    }
    return {"DDR4-2133", 2133.0};
}

Imc::Imc(arch::Generation generation, unsigned channels)
    : generation_{generation}, channels_{channels} {}

Bandwidth Imc::theoretical_peak() const {
    const DdrConfig cfg = ddr_config_for(generation_);
    return Bandwidth::bytes_per_sec(static_cast<double>(channels_) * cfg.bus_bytes *
                                    cfg.mega_transfers * 1e6);
}

Bandwidth Imc::sustained_read_peak() const {
    return theoretical_peak() * kStreamEfficiency;
}

}  // namespace hsw::mem
