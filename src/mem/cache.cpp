#include "mem/cache.hpp"

#include <stdexcept>

namespace hsw::mem {

const CacheLevelParams& CacheHierarchy::at(Level l) const {
    for (const auto& p : levels) {
        if (p.level == l) return p;
    }
    throw std::out_of_range{"CacheHierarchy::at: unknown level"};
}

Level CacheHierarchy::level_for_working_set(std::size_t bytes, unsigned l3_slices) const {
    if (bytes <= at(Level::L1D).capacity_bytes) return Level::L1D;
    if (bytes <= at(Level::L2).capacity_bytes) return Level::L2;
    if (bytes <= at(Level::L3).capacity_bytes * l3_slices) return Level::L3;
    return Level::Dram;
}

const CacheHierarchy& hierarchy_for(arch::Generation g) {
    // Haswell-EP: doubled L1D/L2 bandwidth vs Sandy Bridge (Table I).
    static const CacheHierarchy haswell{{{
        {Level::L1D, 32 * 1024, 4, 64, 64.0, 32.0},
        {Level::L2, 256 * 1024, 12, 64, 64.0, 32.0},
        {Level::L3, 2560 * 1024, 34, 64, 16.0, 8.0},   // per-slice share
        {Level::Dram, 0, 200, 64, 8.0, 4.0},
    }}};
    static const CacheHierarchy sandy_bridge{{{
        {Level::L1D, 32 * 1024, 4, 64, 32.0, 16.0},
        {Level::L2, 256 * 1024, 12, 64, 32.0, 16.0},
        {Level::L3, 2560 * 1024, 31, 64, 12.0, 6.0},
        {Level::Dram, 0, 190, 64, 6.0, 3.0},
    }}};
    static const CacheHierarchy westmere{{{
        {Level::L1D, 32 * 1024, 4, 64, 16.0, 16.0},
        {Level::L2, 256 * 1024, 10, 64, 24.0, 12.0},
        {Level::L3, 2048 * 1024, 40, 64, 10.0, 5.0},
        {Level::Dram, 0, 220, 64, 5.0, 2.5},
    }}};

    switch (g) {
        case arch::Generation::WestmereEP: return westmere;
        case arch::Generation::SandyBridgeEP:
        case arch::Generation::IvyBridgeEP: return sandy_bridge;
        case arch::Generation::HaswellEP:
        case arch::Generation::HaswellHE: return haswell;
    }
    return haswell;
}

}  // namespace hsw::mem
