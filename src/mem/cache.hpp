// Cache hierarchy parameters per generation.
//
// Capacities/latencies feed the FIRESTARTER payload generator (its loop
// must overflow the uop cache but fit in L1I, and its data groups target
// specific levels) and the Table I bandwidth validation.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "arch/generation.hpp"
#include "util/units.hpp"

namespace hsw::mem {

enum class Level { L1D, L2, L3, Dram };

[[nodiscard]] constexpr std::string_view name(Level l) {
    switch (l) {
        case Level::L1D: return "L1D";
        case Level::L2: return "L2";
        case Level::L3: return "L3";
        case Level::Dram: return "DRAM";
    }
    return "?";
}

struct CacheLevelParams {
    Level level;
    std::size_t capacity_bytes;      // per core for L1/L2; per-core slice for L3
    unsigned latency_cycles;         // load-to-use at the core clock
    unsigned line_bytes;
    double read_bytes_per_cycle;     // peak per-core read bandwidth
    double write_bytes_per_cycle;
};

struct CacheHierarchy {
    std::array<CacheLevelParams, 4> levels;
    [[nodiscard]] const CacheLevelParams& at(Level l) const;

    /// Which level a working set of `bytes` per core lives in.
    [[nodiscard]] Level level_for_working_set(std::size_t bytes, unsigned l3_slices) const;
};

[[nodiscard]] const CacheHierarchy& hierarchy_for(arch::Generation g);

}  // namespace hsw::mem
