// Haswell backends: the paper's main subject. The PCU policy is the
// default one -- the entire pre-refactor pipeline, byte for byte -- so the
// existing golden artifacts cannot move.
#include "platform/backends.hpp"

namespace hsw::platform {

namespace {

class HaswellEpBackend final : public PlatformBackend {
public:
    [[nodiscard]] arch::Generation generation() const override {
        return arch::Generation::HaswellEP;
    }
    [[nodiscard]] const arch::Sku& survey_sku() const override {
        return arch::xeon_e5_2680_v3();
    }
};

class HaswellHeBackend final : public PlatformBackend {
public:
    [[nodiscard]] arch::Generation generation() const override {
        return arch::Generation::HaswellHE;
    }
    [[nodiscard]] const arch::Sku& survey_sku() const override {
        return arch::core_i7_4770();
    }
};

}  // namespace

const PlatformBackend& haswell_ep_backend() {
    static const HaswellEpBackend backend;
    return backend;
}

const PlatformBackend& haswell_he_backend() {
    static const HaswellHeBackend backend;
    return backend;
}

}  // namespace hsw::platform
