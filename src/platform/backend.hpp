// Generation-agnostic platform backends.
//
// A PlatformBackend bundles everything that distinguishes one processor
// generation from another in this model: the representative survey SKU, the
// PCU policy hooks (uncore governor, HWP capability, AVX license levels),
// the C-state latency family, and the MSR surface the generation
// implements. The rest of the tree (core, survey, engine, tools) resolves a
// backend through the registry (registry.hpp) keyed by arch::Generation and
// never branches on the generation enum itself.
//
// Layering: platform sits above {arch, msr, pcu, cstates, rapl, power,
// util} and below {core, os, survey, engine} -- enforced by hsw_lint.
#pragma once

#include <string_view>
#include <vector>

#include "arch/generation.hpp"
#include "arch/sku.hpp"
#include "cstates/wake_latency.hpp"
#include "msr/addresses.hpp"
#include "pcu/policy.hpp"

namespace hsw::platform {

class PlatformBackend {
public:
    virtual ~PlatformBackend() = default;

    [[nodiscard]] virtual arch::Generation generation() const = 0;

    [[nodiscard]] arch::GenerationTraits traits() const {
        return arch::traits(generation());
    }

    /// Human-readable generation name ("Haswell-EP", "Skylake-SP", ...).
    [[nodiscard]] std::string_view name() const { return traits().name; }

    /// The representative SKU the cross-generation survey experiments run
    /// on (the paper's test system for Haswell-EP).
    [[nodiscard]] virtual const arch::Sku& survey_sku() const = 0;

    /// Generation hooks into the shared PCU pipeline. The default is the
    /// Haswell policy, which pre-HWP generations share (their differences
    /// -- fixed/coupled uncore -- are expressed through GenerationTraits
    /// inside the uncore policy itself).
    [[nodiscard]] virtual const pcu::PcuPolicy& pcu_policy() const {
        return pcu::haswell_policy();
    }

    /// C-state wake-latency family for this generation.
    [[nodiscard]] virtual cstates::WakeProfile wake_profile() const {
        return cstates::profile_for(generation());
    }

    /// True when the generation honors IA32_HWP_REQUEST windows.
    [[nodiscard]] bool hwp_capable() const { return pcu_policy().hwp_capable(); }

    /// MSRs this generation implements beyond the common base set
    /// (msr/addresses.hpp documents the catalog; HWP registers appear only
    /// on HWP-capable parts).
    [[nodiscard]] virtual std::vector<msr::MsrAddress> extra_msrs() const {
        return {};
    }
};

}  // namespace hsw::platform
