#include "platform/registry.hpp"

#include <cctype>

#include "platform/backends.hpp"

namespace hsw::platform {

namespace {

char lower(char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string name_slug(std::string_view name) {
    std::string slug;
    slug.reserve(name.size());
    for (char c : name) slug.push_back(c == ' ' ? '-' : lower(c));
    return slug;
}

const std::vector<const PlatformBackend*>& all_backends() {
    static const std::vector<const PlatformBackend*> backends{
        &westmere_ep_backend(),   &sandy_bridge_ep_backend(),
        &ivy_bridge_ep_backend(), &haswell_ep_backend(),
        &haswell_he_backend(),    &skylake_sp_backend(),
    };
    return backends;
}

const PlatformBackend& backend_for(arch::Generation generation) {
    for (const PlatformBackend* b : all_backends()) {
        if (b->generation() == generation) return *b;
    }
    // Mirror arch::traits(): unknown enumerators behave like Haswell-EP.
    return haswell_ep_backend();
}

const PlatformBackend* backend_by_name(std::string_view name) {
    const std::string wanted = name_slug(name);
    for (const PlatformBackend* b : all_backends()) {
        if (name_slug(b->name()) == wanted) return b;
    }
    return nullptr;
}

}  // namespace hsw::platform
