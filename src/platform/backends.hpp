// Concrete backend accessors (one per generation). Most callers should go
// through registry.hpp; these exist for tests and the registry itself.
#pragma once

#include "platform/backend.hpp"

namespace hsw::platform {

[[nodiscard]] const PlatformBackend& westmere_ep_backend();
[[nodiscard]] const PlatformBackend& sandy_bridge_ep_backend();
[[nodiscard]] const PlatformBackend& ivy_bridge_ep_backend();
[[nodiscard]] const PlatformBackend& haswell_ep_backend();
[[nodiscard]] const PlatformBackend& haswell_he_backend();
[[nodiscard]] const PlatformBackend& skylake_sp_backend();

}  // namespace hsw::platform
