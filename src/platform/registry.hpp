// Backend registry keyed by arch::Generation.
//
// Lookup by name accepts either the traits name ("Skylake-SP") or its
// lowercase slug with spaces collapsed to dashes ("sandy-bridge-ep"),
// case-insensitively -- the form hsw_survey --generation takes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "platform/backend.hpp"

namespace hsw::platform {

/// The backend for a generation. Every enumerator has one; unknown values
/// fall back to the Haswell-EP backend (mirroring arch::traits()).
[[nodiscard]] const PlatformBackend& backend_for(arch::Generation generation);

/// Name lookup for CLI surfaces; nullptr when nothing matches.
[[nodiscard]] const PlatformBackend* backend_by_name(std::string_view name);

/// All registered backends in enum order.
[[nodiscard]] const std::vector<const PlatformBackend*>& all_backends();

/// The canonical lowercase slug for a backend name ("Sandy Bridge-EP" ->
/// "sandy-bridge-ep"); what --list-generations prints.
[[nodiscard]] std::string name_slug(std::string_view name);

}  // namespace hsw::platform
