// Pre-Haswell backends (Westmere-EP, Sandy Bridge-EP, Ivy Bridge-EP).
// They share the default PCU policy: the fixed / core-coupled uncore
// behavior is already expressed through GenerationTraits inside the uncore
// policy, and their modeled RAPL split lives in rapl::RaplEstimator keyed
// by traits().rapl_backend.
#include "platform/backends.hpp"

namespace hsw::platform {

namespace {

class WestmereEpBackend final : public PlatformBackend {
public:
    [[nodiscard]] arch::Generation generation() const override {
        return arch::Generation::WestmereEP;
    }
    [[nodiscard]] const arch::Sku& survey_sku() const override {
        return arch::xeon_x5670();
    }
};

class SandyBridgeEpBackend final : public PlatformBackend {
public:
    [[nodiscard]] arch::Generation generation() const override {
        return arch::Generation::SandyBridgeEP;
    }
    [[nodiscard]] const arch::Sku& survey_sku() const override {
        return arch::xeon_e5_2670();
    }
};

class IvyBridgeEpBackend final : public PlatformBackend {
public:
    [[nodiscard]] arch::Generation generation() const override {
        return arch::Generation::IvyBridgeEP;
    }
    [[nodiscard]] const arch::Sku& survey_sku() const override {
        return arch::xeon_e5_2690_v2();
    }
};

}  // namespace

const PlatformBackend& westmere_ep_backend() {
    static const WestmereEpBackend backend;
    return backend;
}

const PlatformBackend& sandy_bridge_ep_backend() {
    static const SandyBridgeEpBackend backend;
    return backend;
}

const PlatformBackend& ivy_bridge_ep_backend() {
    static const IvyBridgeEpBackend backend;
    return backend;
}

}  // namespace hsw::platform
