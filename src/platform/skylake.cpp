// Skylake-SP backend (Schoene et al., "Energy Efficiency Features of the
// Intel Skylake-SP Processor").
//
// What changes relative to Haswell-EP:
//  - HWP: the OS programs IA32_HWP_REQUEST windows + EPP; the PCU resolves
//    the operating point itself (pcu/hwp.hpp).
//  - AVX-512 adds a second license level with a much harder frequency cap
//    and a larger voltage adder.
//  - The uncore governor is demand-driven with a lower ceiling (2.4 GHz on
//    the Gold 6150) and parks passive/idle uncores at the floor; grants are
//    split per die cluster (sub-NUMA clustering).
#include <algorithm>

#include "arch/calibration.hpp"
#include "msr/msr_file.hpp"
#include "platform/backends.hpp"

namespace hsw::platform {

namespace cal = hsw::arch::cal;

namespace {

using pcu::UfsDecision;
using pcu::UfsInputs;
using util::Frequency;

/// Extra voltage for the AVX-512 license (twice the 256-bit adder: the
/// paper's wide-vector V-f points sit on a visibly raised curve).
constexpr double kAvx512VoltageAdderVolts = 0.040;

UfsDecision clamp_msr(UfsDecision d, const UfsInputs& in) {
    if (in.msr_max_ratio != 0) {
        const Frequency cap = Frequency::from_ratio(in.msr_max_ratio);
        d.target = std::min(d.target, cap);
        d.floor = std::min(d.floor, cap);
    }
    if (in.msr_min_ratio != 0) {
        const Frequency fl = Frequency::from_ratio(in.msr_min_ratio);
        d.target = std::max(d.target, fl);
        d.floor = std::max(d.floor, fl);
    }
    return d;
}

class SkxPcuPolicy final : public pcu::PcuPolicy {
public:
    [[nodiscard]] bool hwp_capable() const override { return true; }
    [[nodiscard]] unsigned max_license_level() const override { return 2; }
    [[nodiscard]] bool per_die_uncore() const override { return true; }

    [[nodiscard]] double license_voltage_adder_volts(unsigned level) const override {
        if (level >= 2) return kAvx512VoltageAdderVolts;
        return PcuPolicy::license_voltage_adder_volts(level);
    }

    [[nodiscard]] UfsDecision uncore(const UfsInputs& in) const override {
        const arch::Sku& sku = *in.sku;
        UfsDecision d;
        if (!in.system_active) {
            d.clock_halted = true;
            d.target = d.floor = sku.uncore_min;
            return clamp_msr(d, in);
        }
        if (!in.socket_active) {
            // Unlike Haswell's remote-tracking rule, a passive Skylake-SP
            // socket parks its uncore at the floor -- the low idle uncore
            // clock the Skylake-SP paper reports.
            d.target = d.floor = sku.uncore_min;
            return clamp_msr(d, in);
        }
        if (in.epb == msr::EpbPolicy::Performance) {
            d.target = sku.uncore_max;
            d.floor = std::clamp(in.fastest_local_core, sku.uncore_min, sku.uncore_max);
            return clamp_msr(d, in);
        }
        if (in.stall_fraction >= cal::kUfsStallHighWatermark) {
            // Memory bound: head for the (lower-than-Haswell) maximum.
            d.target = sku.uncore_max;
            d.floor = std::min(in.fastest_local_core, sku.uncore_max);
            return clamp_msr(d, in);
        }
        // Demand-driven default: one 100 MHz step below the fastest core,
        // clamped into the uncore range -- no Table III ladder on SKX.
        const double mhz = std::clamp(in.fastest_local_core.as_mhz() - 100.0,
                                      sku.uncore_min.as_mhz(), sku.uncore_max.as_mhz());
        const Frequency track = Frequency::mhz(mhz);
        if (in.stall_fraction >= cal::kUfsTrackingStallThreshold || in.turbo_requested) {
            d.target = sku.uncore_max;
            d.floor = track;
            return clamp_msr(d, in);
        }
        d.target = d.floor = track;
        return clamp_msr(d, in);
    }
};

class SkylakeSpBackend final : public PlatformBackend {
public:
    [[nodiscard]] arch::Generation generation() const override {
        return arch::Generation::SkylakeSP;
    }
    [[nodiscard]] const arch::Sku& survey_sku() const override {
        return arch::xeon_gold_6150();
    }
    [[nodiscard]] const pcu::PcuPolicy& pcu_policy() const override {
        static const SkxPcuPolicy policy;
        return policy;
    }
    [[nodiscard]] std::vector<msr::MsrAddress> extra_msrs() const override {
        return {msr::MSR_PM_ENABLE, msr::IA32_HWP_CAPABILITIES,
                msr::IA32_HWP_REQUEST_PKG, msr::IA32_HWP_REQUEST,
                msr::IA32_HWP_STATUS};
    }
};

}  // namespace

const PlatformBackend& skylake_sp_backend() {
    static const SkylakeSpBackend backend;
    return backend;
}

}  // namespace hsw::platform
