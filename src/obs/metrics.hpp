// Process-wide metrics registry: named counters, gauges and histograms
// shared by every layer (sim, engine, service, tools).
//
// Design constraints, in priority order:
//
//   1. Hot-path cost. Counter::inc() on an enabled registry is one relaxed
//      load (the enable flag) plus one relaxed fetch_add on a sharded,
//      cache-line-padded cell -- threads round-robin onto 16 shards, so
//      concurrent increments of the same counter almost never share a
//      line. On a disabled registry every instrument costs exactly one
//      relaxed load per site.
//   2. Exactness. snapshot() merges the shards; the merged value of a
//      quiescent counter is the exact number of inc() calls -- sharding
//      never loses or double-counts (each call lands on exactly one cell).
//   3. Determinism. Instruments only observe; nothing in the registry
//      feeds back into simulation or survey output bytes, and exposition
//      order is sorted by name, so two renders of the same state are
//      byte-identical.
//
// Instruments register on first use and live for the process lifetime:
//
//   static obs::Counter& c = obs::counter("hsw_sim_events_total", "...");
//   c.inc(n);
//
// Exposition: render_prometheus() emits the text format (counters end in
// _total, histograms emit cumulative _bucket/_sum/_count series) and
// render_json() a structured dump; both derive from the same snapshot.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsw::obs {

/// Shard count for counters and histograms. A power of two so the
/// round-robin thread assignment is a mask, and small enough that
/// snapshot merges stay trivial.
inline constexpr std::size_t kShards = 16;

/// Global instrument switch. Disabled (the default) every inc/set/record
/// returns after one relaxed load; tools that expose metrics
/// (hsw_surveyd, hsw_survey, hsw_top) enable it at startup.
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool enabled);

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
/// Round-robin shard for the calling thread, assigned on first use.
[[nodiscard]] std::size_t thread_shard();
struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic event count. Never reset in production; zero_all_metrics()
/// exists for tests.
class Counter {
public:
    void inc(std::uint64_t n = 1) {
        if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
        cells_[detail::thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
    }
    /// Merged over shards; exact once writers are quiescent.
    [[nodiscard]] std::uint64_t value() const;

private:
    friend class Registry;
    Counter() = default;
    std::array<detail::PaddedCell, kShards> cells_;
};

/// Last-writer-wins instantaneous value (queue depth, open connections).
class Gauge {
public:
    void set(std::int64_t v) {
        if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
        value_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) {
        if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    friend class Registry;
    Gauge() = default;
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bound histogram (Prometheus bucket semantics: `bounds` are
/// inclusive upper edges, an implicit +Inf bucket catches the rest).
/// record() is a binary search plus three relaxed adds on the thread's
/// shard.
class Histogram {
public:
    void record(double v);

    [[nodiscard]] std::uint64_t count() const;
    [[nodiscard]] double sum() const;

private:
    friend class Registry;
    struct Shard {
        std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds + Inf
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum_micro{0};  // value * 1e6, rounded
    };
    explicit Histogram(std::vector<double> bounds);
    std::vector<double> bounds_;  // ascending upper edges
    std::array<Shard, kShards> shards_;
};

/// `n` upper bounds lo, lo*factor, lo*factor^2, ... for latency-style
/// histograms spanning several decades.
[[nodiscard]] std::vector<double> exponential_bounds(double lo, double factor,
                                                     std::size_t n);

// --- snapshots and exposition ----------------------------------------------

struct CounterSample {
    std::string name;
    std::string help;
    std::uint64_t value = 0;
};

struct GaugeSample {
    std::string name;
    std::string help;
    std::int64_t value = 0;
};

struct HistogramSample {
    std::string name;
    std::string help;
    std::vector<double> bounds;         // upper edges, +Inf implicit
    std::vector<std::uint64_t> counts;  // per-bucket (NOT cumulative), size bounds+1
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate by linear interpolation inside the covering
    /// bucket (the standard Prometheus histogram_quantile estimate).
    /// NaN when the histogram is empty.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p90() const { return quantile(0.90); }
    [[nodiscard]] double p99() const { return quantile(0.99); }
};

struct MetricsSnapshot {
    std::vector<CounterSample> counters;      // sorted by name
    std::vector<GaugeSample> gauges;          // sorted by name
    std::vector<HistogramSample> histograms;  // sorted by name

    /// nullptr when `name` is absent.
    [[nodiscard]] const CounterSample* find_counter(std::string_view name) const;
    [[nodiscard]] const GaugeSample* find_gauge(std::string_view name) const;
    [[nodiscard]] const HistogramSample* find_histogram(std::string_view name) const;

    /// Prometheus text exposition format 0.0.4.
    [[nodiscard]] std::string render_prometheus() const;
    /// Labeled variant: every sample line carries `labels` verbatim inside
    /// braces (e.g. `shard="s0"` renders `name{shard="s0"} v`); histogram
    /// buckets prepend it to the `le` label. The caller supplies
    /// well-formed label text. Empty behaves like the unlabeled render.
    [[nodiscard]] std::string render_prometheus(std::string_view labels) const;
    /// {"counters":{...},"gauges":{...},"histograms":{...}}
    [[nodiscard]] std::string render_json() const;
};

/// Reconstructs a snapshot from render_json() output -- the JSON carries
/// per-bucket bounds/counts, so the round trip is lossless (help strings
/// excepted; JSON exposition never had them). This is how a fleet router
/// ingests shard scrapes for merging. nullopt on malformed input, with a
/// one-line reason in `error` when non-null. Values are exact up to 2^53
/// (the JSON number domain), far above any real counter here.
[[nodiscard]] std::optional<MetricsSnapshot> parse_snapshot_json(
    std::string_view text, std::string* error = nullptr);

/// Union-merge of per-process snapshots into one fleet view: counters and
/// gauges sum by name, histograms add count/sum and merge buckets
/// element-wise when the bounds agree. Histograms whose bounds differ
/// across parts keep exact count/sum but drop per-bucket detail
/// (quantile() returns NaN) rather than guessing a rebinning. Output is
/// name-sorted like snapshot_metrics().
[[nodiscard]] MetricsSnapshot merge_snapshots(
    std::span<const MetricsSnapshot> parts);

/// One Prometheus document for a whole fleet: for each family, HELP/TYPE
/// once, the merged (unlabeled) samples, then one labeled sample set per
/// shard (`shard="<name>"`). `merged` is typically
/// merge_snapshots(shards' snapshots); shard names must be label-safe
/// (no quotes or backslashes).
[[nodiscard]] std::string render_fleet_prometheus(
    const MetricsSnapshot& merged,
    std::span<const std::pair<std::string, MetricsSnapshot>> shards);

/// Merged JSON doc with a "shards" key mapping shard name -> that shard's
/// render_json() document. The top level keeps the plain snapshot shape,
/// so single-process consumers (hsw_top without --fleet) parse it
/// unchanged.
[[nodiscard]] std::string render_fleet_json(
    const MetricsSnapshot& merged,
    std::span<const std::pair<std::string, MetricsSnapshot>> shards);

// --- registration -----------------------------------------------------------

/// Returns the instrument registered under `name`, creating it on first
/// use. References stay valid for the process lifetime. Re-registering an
/// existing name returns the existing instrument (help/bounds of the first
/// registration win). Registering the same name as two different
/// instrument kinds throws std::logic_error.
[[nodiscard]] Counter& counter(std::string_view name, std::string_view help = {});
[[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help = {});
[[nodiscard]] Histogram& histogram(std::string_view name,
                                   std::span<const double> bounds,
                                   std::string_view help = {});

/// Consistent view of every registered instrument.
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Shorthand: snapshot_metrics().render_prometheus() / render_json().
[[nodiscard]] std::string render_prometheus();
[[nodiscard]] std::string render_json();

/// Test hook: zero every registered instrument (registrations persist --
/// call-site static references must stay valid).
void zero_all_metrics();

}  // namespace hsw::obs
