// Request-scoped trace context: the distributed half of span tracing.
//
// A TraceContext names one end-to-end request: a 64-bit trace_id shared
// by every span the request touches in any process, the span_id of the
// innermost live span (the parent for the next child span or downstream
// hop), and sampling flags. The context travels two ways:
//
//  - across threads/processes explicitly, as three fields on the wire
//    (the protocol's `trace <trace_id> <parent_span_id> <flags>` header
//    -- encoded by the service layer, never by obs, which stays
//    protocol-agnostic);
//  - within a thread implicitly, via a thread-local current context that
//    ContextScope installs on entry and restores on exit. An armed Span
//    whose thread has a valid current context adopts its trace_id,
//    parents itself to the current span_id, and re-scopes the context to
//    itself for the spans it encloses.
//
// IDs are process-salted splitmix64 walks: unique enough to merge traces
// from a whole fleet, never part of any experiment output (telemetry must
// not move golden bytes). trace_id 0 means "no context".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/hash.hpp"

namespace hsw::obs::trace {

/// Head-sampling decision made where the trace was born.
inline constexpr std::uint32_t kFlagSampled = 1u;
/// Tail override: an error / slow / failover path downstream insists the
/// request is kept regardless of the head decision.
inline constexpr std::uint32_t kFlagForced = 2u;

struct TraceContext {
    std::uint64_t trace_id = 0;  // 0 = no context
    std::uint64_t span_id = 0;   // parent for the next child span / hop
    std::uint32_t flags = 0;

    [[nodiscard]] bool valid() const { return trace_id != 0; }
    [[nodiscard]] bool sampled() const { return (flags & kFlagSampled) != 0; }
    [[nodiscard]] bool forced() const { return (flags & kFlagForced) != 0; }
};

namespace detail {
inline thread_local TraceContext t_current_context;

/// Process-unique id source: a splitmix64 walk seeded from the monotonic
/// clock and this translation's address space, so two shards spawned in
/// the same nanosecond still diverge.
inline std::uint64_t next_trace_entropy() {
    static std::atomic<std::uint64_t> counter{[] {
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        return util::mix64(static_cast<std::uint64_t>(now.count()) ^
                           reinterpret_cast<std::uintptr_t>(&counter));
    }()};
    return counter.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
}
}  // namespace detail

/// Fresh non-zero 64-bit id for a trace or span.
[[nodiscard]] inline std::uint64_t next_id() {
    std::uint64_t id = 0;
    while (id == 0) id = util::mix64(detail::next_trace_entropy());
    return id;
}

/// The calling thread's current context ({} when none is installed).
[[nodiscard]] inline TraceContext current_context() {
    return detail::t_current_context;
}

/// Originate a new trace (the client end). span_id stays 0 until a Span
/// opens under the scope.
[[nodiscard]] inline TraceContext make_root(bool sampled) {
    TraceContext ctx;
    ctx.trace_id = next_id();
    ctx.flags = sampled ? kFlagSampled : 0;
    return ctx;
}

/// Set kFlagForced on the thread's current context (no-op without one):
/// every span and downstream hop from here on carries the override.
inline void force_current() {
    if (detail::t_current_context.valid()) {
        detail::t_current_context.flags |= kFlagForced;
    }
}

/// Installs `ctx` as the thread's current context for this scope and
/// restores the previous one on destruction. Works whether or not span
/// recording is enabled -- a process with tracing off still propagates
/// the caller's context to its own downstream hops.
class ContextScope {
public:
    explicit ContextScope(const TraceContext& ctx)
        : prev_(detail::t_current_context) {
        detail::t_current_context = ctx;
    }
    ~ContextScope() { detail::t_current_context = prev_; }
    ContextScope(const ContextScope&) = delete;
    ContextScope& operator=(const ContextScope&) = delete;

private:
    TraceContext prev_;
};

}  // namespace hsw::obs::trace
