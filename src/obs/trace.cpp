#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace hsw::obs::trace {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using detail::TraceEvent;

/// One ring per recording thread. The mutex is per-buffer and
/// uncontended on the hot path (only the owning thread records); the
/// exporter takes it briefly to copy the ring, which keeps record/export
/// free of data races under TSan.
struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity, std::uint64_t tid)
        : capacity_(capacity), tid_(tid) {
        ring_.reserve(std::min<std::size_t>(capacity, 1024));
    }

    void record(const TraceEvent& ev) {
        util::LockGuard lock{mu_};
        if (ring_.size() < capacity_) {
            ring_.push_back(ev);
        } else {
            ring_[next_] = ev;
            next_ = (next_ + 1) % capacity_;
            ++dropped_;
        }
        ++recorded_;
    }

    /// Events oldest-first.
    std::vector<TraceEvent> drain_copy() const {
        util::LockGuard lock{mu_};
        std::vector<TraceEvent> out;
        out.reserve(ring_.size());
        // next_ is the oldest slot once the ring has wrapped.
        for (std::size_t i = 0; i < ring_.size(); ++i) {
            out.push_back(ring_[(next_ + i) % ring_.size()]);
        }
        return out;
    }

    std::uint64_t dropped() const {
        util::LockGuard lock{mu_};
        return dropped_;
    }
    std::size_t retained() const {
        util::LockGuard lock{mu_};
        return ring_.size();
    }
    std::uint64_t tid() const { return tid_; }

private:
    mutable util::Mutex mu_;
    std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
    std::size_t next_ GUARDED_BY(mu_) = 0;  // overwrite cursor == oldest when full
    std::size_t capacity_;  // set once at construction
    std::uint64_t recorded_ GUARDED_BY(mu_) = 0;
    std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
    std::uint64_t tid_;     // set once at construction
};

struct Global {
    util::Mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers GUARDED_BY(mu);
    std::size_t capacity GUARDED_BY(mu) = 1 << 16;
    std::uint64_t next_tid GUARDED_BY(mu) = 1;
    // Generation; bumps on clear()/enable(). Atomic so the record hot
    // path can validate its cached thread slot without the global mutex.
    std::atomic<std::uint64_t> epoch{0};
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
};

Global& global() {
    static Global g;
    return g;
}

struct ThreadSlot {
    std::shared_ptr<ThreadBuffer> buffer;
    std::uint64_t epoch = 0;
};

ThreadBuffer& thread_buffer() {
    thread_local ThreadSlot slot;
    Global& g = global();
    // Cheap path: slot still belongs to the current trace generation.
    const std::uint64_t epoch = g.epoch.load(std::memory_order_acquire);
    if (slot.buffer && slot.epoch == epoch) return *slot.buffer;
    util::LockGuard lock{g.mu};
    slot.buffer = std::make_shared<ThreadBuffer>(g.capacity, g.next_tid++);
    slot.epoch = g.epoch.load(std::memory_order_relaxed);
    g.buffers.push_back(slot.buffer);
    return *slot.buffer;
}

void append_json_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default:
                if (static_cast<unsigned char>(c) >= 0x20) out += c;
        }
    }
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - global().t0)
            .count());
}

void record(const TraceEvent& ev) {
    // Disabled between Span construction and destruction: drop quietly.
    if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
    thread_buffer().record(ev);
}

}  // namespace detail

void enable(std::size_t events_per_thread) {
    Global& g = global();
    {
        util::LockGuard lock{g.mu};
        g.buffers.clear();
        g.capacity = std::max<std::size_t>(events_per_thread, 16);
        g.epoch.fetch_add(1, std::memory_order_release);
        g.t0 = std::chrono::steady_clock::now();
    }
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void disable() {
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

bool enabled() {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void clear() {
    Global& g = global();
    util::LockGuard lock{g.mu};
    g.buffers.clear();
    g.epoch.fetch_add(1, std::memory_order_release);
}

std::size_t recorded_events() {
    Global& g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        util::LockGuard lock{g.mu};
        buffers = g.buffers;
    }
    std::size_t total = 0;
    for (const auto& b : buffers) total += b->retained();
    return total;
}

std::uint64_t dropped_events() {
    Global& g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        util::LockGuard lock{g.mu};
        buffers = g.buffers;
    }
    std::uint64_t total = 0;
    for (const auto& b : buffers) total += b->dropped();
    return total;
}

std::string export_chrome_json() {
    Global& g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        util::LockGuard lock{g.mu};
        buffers = g.buffers;
    }

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char buf[256];
    for (const auto& b : buffers) {
        // Thread-name metadata so the viewer labels each track.
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%llu,\"args\":{\"name\":\"hsw-%llu\"}}",
                      first ? "" : ",",
                      static_cast<unsigned long long>(b->tid()),
                      static_cast<unsigned long long>(b->tid()));
        out += buf;
        first = false;
        for (const TraceEvent& ev : b->drain_copy()) {
            std::snprintf(buf, sizeof buf,
                          ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                          "\"pid\":1,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f",
                          ev.name ? ev.name : "span",
                          ev.cat ? ev.cat : "hsw",
                          static_cast<unsigned long long>(b->tid()),
                          static_cast<double>(ev.ts_ns) * 1e-3,
                          static_cast<double>(ev.dur_ns) * 1e-3);
            out += buf;
            const bool has_label = ev.label[0] != '\0';
            const bool has_sim = ev.sim_us >= 0.0;
            const bool has_events = ev.events != 0;
            const bool has_trace = ev.trace_id != 0;
            const bool has_retry = ev.retry != 0;
            if (has_label || has_sim || has_events || has_trace || has_retry) {
                out += ",\"args\":{";
                bool first_arg = true;
                if (has_label) {
                    out += "\"label\":\"";
                    append_json_escaped(out, ev.label);
                    out += '"';
                    first_arg = false;
                }
                if (has_sim) {
                    std::snprintf(buf, sizeof buf, "%s\"sim_us\":%.3f",
                                  first_arg ? "" : ",", ev.sim_us);
                    out += buf;
                    first_arg = false;
                }
                if (has_events) {
                    std::snprintf(buf, sizeof buf, "%s\"events\":%llu",
                                  first_arg ? "" : ",",
                                  static_cast<unsigned long long>(ev.events));
                    out += buf;
                    first_arg = false;
                }
                if (has_trace) {
                    // Ids render as zero-padded hex strings: JSON numbers
                    // lose bits above 2^53 and Perfetto keeps strings as-is.
                    std::snprintf(buf, sizeof buf,
                                  "%s\"trace_id\":\"%016llx\","
                                  "\"span_id\":\"%016llx\"",
                                  first_arg ? "" : ",",
                                  static_cast<unsigned long long>(ev.trace_id),
                                  static_cast<unsigned long long>(ev.span_id));
                    out += buf;
                    first_arg = false;
                    if (ev.parent_span_id != 0) {
                        std::snprintf(
                            buf, sizeof buf, ",\"parent_span_id\":\"%016llx\"",
                            static_cast<unsigned long long>(ev.parent_span_id));
                        out += buf;
                    }
                }
                if (has_retry) {
                    std::snprintf(buf, sizeof buf, "%s\"retry\":%u",
                                  first_arg ? "" : ",", ev.retry);
                    out += buf;
                }
                out += '}';
            }
            out += '}';
        }
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool write_chrome_json(const std::string& path) {
    return flight::write_text_atomic(path, export_chrome_json());
}

void publish_overflow_metrics() {
    static Gauge& dropped =
        gauge("obs_trace_dropped_spans",
              "spans overwritten by trace ring wrap-around since enable()");
    dropped.set(static_cast<std::int64_t>(dropped_events()));
}

}  // namespace hsw::obs::trace
