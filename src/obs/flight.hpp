// Crash flight recorder: everything the process knows about itself,
// dumped as one JSON document when something goes wrong (or when asked).
//
// A flight dump bundles the in-memory observability state that would
// otherwise die with the process -- the metrics snapshot, the span trace
// rings, the newest access-log records -- plus build/identity metadata,
// and writes it as `flight-<pid>-<reason>.json` in the configured
// directory. Three triggers share the exact same path:
//
//   - graceful shutdown (SIGQUIT / the daemon exit path),
//   - the protocol's `dump` debug verb,
//   - best-effort crash handlers for SIGSEGV/SIGABRT.
//
// All file writes go through write_text_atomic(): content lands in a
// sibling temp file first and is renamed into place, so a reader (or a
// crash mid-write) never sees a torn document. The same helper backs
// trace::write_chrome_json and the daemons' shutdown snapshots.
#pragma once

#include <string>
#include <string_view>

namespace hsw::obs::flight {

/// Write `content` to `path` atomically (tmp file + rename). Returns
/// false without touching `path` on any I/O failure, including a missing
/// parent directory.
bool write_text_atomic(const std::string& path, std::string_view content);

struct Config {
    std::string dir = ".";      // where flight-*.json files land
    std::string process;        // identity stamped into the dump
};

/// Install the dump directory and process identity (call once at
/// startup, before install_crash_handlers()).
void configure(const Config& config);
[[nodiscard]] Config config();

/// The flight document as a string: {"flight":{...metadata...},
/// "metrics":{...}, "trace":{...}, "access_log":[...]}.
[[nodiscard]] std::string render(std::string_view reason);

/// render(reason) to `<dir>/flight-<pid>-<reason>.json` via the atomic
/// writer. Returns the path, or "" when the write failed.
std::string dump(std::string_view reason);

/// Best-effort SIGSEGV/SIGABRT handlers that attempt one flight dump and
/// then restore the default disposition and re-raise, so the process
/// still dies with the original signal. A recursive fault during the
/// dump skips straight to the re-raise; this is a diagnostics
/// last-resort, not a recovery mechanism.
void install_crash_handlers();

}  // namespace hsw::obs::flight
