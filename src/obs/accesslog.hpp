// Structured per-request access log on a lock-free bounded ring.
//
// Every completed request becomes one fixed-size Record (all fields are
// inline char arrays / integers -- nothing allocates and no field name is
// ever built per request), pushed by `record()` with a handful of relaxed
// atomic stores. The ring overwrites oldest on overflow and counts the
// drop; a background Writer (or the flight recorder) drains it and only
// *then* pays for JSON formatting, off the serving path.
//
// Tail-based sampling lives here too: `should_log()` is evaluated at
// request completion, where the outcome is known -- errors, slow requests
// and failover paths are always kept, everything else follows the head
// decision (the trace context's sampled flag, or this process's own
// fraction for untraced requests).
//
// Like the rest of obs, this layer is protocol-agnostic: the service
// layer decides what goes into a Record; obs only stores and formats it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/ctx.hpp"
#include "util/sync.hpp"

namespace hsw::obs::accesslog {

/// deadline_slack_us value meaning "request carried no deadline".
inline constexpr std::int64_t kNoDeadline = INT64_MIN;

/// One completed request. Trivially copyable by design: records cross the
/// ring as relaxed atomic words, so there must be no pointers out.
struct Record {
    std::uint64_t ts_ns = 0;      // completion time; stamped by record() if 0
    std::uint64_t trace_id = 0;   // 0 = untraced request
    std::uint64_t micros = 0;     // wall time serving the request
    std::int64_t deadline_slack_us = kNoDeadline;  // budget left at completion
    std::uint32_t retries = 0;    // failover/retry attempts consumed
    char verb[12] = {};           // protocol verb name
    char spec[20] = {};           // spec-hash / route-key prefix
    char source[12] = {};         // hot|disk|computed|none
    char shard[24] = {};          // serving shard; empty = this process's identity
    char outcome[16] = {};        // "ok" or the error code name
};

/// Bounded NUL-terminated copy into a Record's inline char field.
template <std::size_t N>
inline void set_field(char (&dst)[N], std::string_view v) {
    const std::size_t n = v.size() < N - 1 ? v.size() : N - 1;
    for (std::size_t i = 0; i < n; ++i) dst[i] = v[i];
    dst[n] = '\0';
}

/// Switch the ring on/off. Off (the default) makes record() one relaxed
/// load. Enabling resets the ring, cursors and drop counters.
void set_enabled(bool on);
[[nodiscard]] bool enabled();

/// Ring capacity in records (rounded up to a power of two, min 64). Only
/// honored while disabled; the default is 4096.
void configure(std::size_t capacity);

/// This process's shard identity, stamped into records whose `shard`
/// field is empty ("surveyd:<port>", "shard0", "router", ...).
void set_identity(std::string_view shard);
[[nodiscard]] std::string identity();

/// Sampling policy: `head_fraction` of untraced requests are kept (the
/// trace context's sampled flag wins when present); any request slower
/// than `slow_us` (0 = off) is force-kept regardless.
void set_policy(double head_fraction, std::uint64_t slow_us);

/// The tail-based keep/drop decision for one completed request.
[[nodiscard]] bool should_log(const trace::TraceContext& ctx, bool error,
                              std::uint64_t micros, bool retried);

/// Push one record; lock-free, allocation-free, overwrite-oldest.
void record(const Record& r);

/// Records pushed / lost (overwritten unread or torn by a lapping writer).
[[nodiscard]] std::uint64_t recorded();
[[nodiscard]] std::uint64_t dropped();

/// Consume everything since the last drain, oldest-first. Single logical
/// drainer (the Writer thread or a flight dump); concurrent drains are
/// safe but split the stream between them.
void drain(std::vector<Record>& out);

/// Non-destructive copy of the newest `max` records, oldest-first. Used
/// by the flight recorder, which must not steal from the Writer.
[[nodiscard]] std::vector<Record> tail(std::size_t max);

/// Copy the drop counter into the metrics registry
/// (`obs_accesslog_dropped`); called before every metrics exposition.
void publish_overflow_metrics();

/// One JSON object line for a record -- field names are literals here and
/// only here, in the drain path, never on the serving path.
[[nodiscard]] std::string format_json(const Record& r);

/// Background drain thread appending one JSON line per kept record to a
/// file (`--access-log FILE`). stop() performs a final drain, so graceful
/// shutdown loses nothing.
class Writer {
public:
    Writer() = default;
    ~Writer();
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    /// Opens `path` for append and starts the drain thread; false (and no
    /// thread) when the file cannot be opened.
    bool start(const std::string& path);
    void stop();

private:
    void run();

    void* file_ = nullptr;  // std::FILE*, kept opaque for the header
    std::thread thread_;
    util::Mutex mu_;
    util::CondVar cv_;
    bool stop_requested_ GUARDED_BY(mu_) = false;
    bool running_ = false;
};

}  // namespace hsw::obs::accesslog
