#include "obs/trace_merge.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/minijson.hpp"

namespace hsw::obs::trace_merge {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

void append_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) >= 0x20) out += c;
        }
    }
}

void append_number(std::string& out, double d) {
    if (!std::isfinite(d)) {
        out += '0';  // JSON has no inf/nan; traces never produce them
        return;
    }
    char buf[32];
    // Shortest round-trip form: integers print bare, 123.456 stays 123.456.
    const auto res = std::to_chars(buf, buf + sizeof buf, d);
    out.append(buf, res.ptr);
}

/// Recursive serializer for minijson values. Object keys come out in map
/// order, so serializing the same value twice is byte-identical.
void serialize(const Value& v, std::string& out) {
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
        append_number(out, v.as_number());
    } else if (v.is_string()) {
        out += '"';
        append_escaped(out, v.as_string());
        out += '"';
    } else if (v.is_array()) {
        out += '[';
        bool first = true;
        for (const Value& e : v.as_array()) {
            if (!first) out += ',';
            first = false;
            serialize(e, out);
        }
        out += ']';
    } else {
        out += '{';
        bool first = true;
        for (const auto& [key, val] : v.as_object()) {
            if (!first) out += ',';
            first = false;
            out += '"';
            append_escaped(out, key);
            out += "\":";
            serialize(val, out);
        }
        out += '}';
    }
}

}  // namespace

bool merge_chrome_traces(std::span<const ProcessTrace> inputs,
                         std::string& out, std::string* error) {
    out = "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const double pid = static_cast<double>(i + 1);
        std::string parse_error;
        const auto doc = util::json::parse(inputs[i].json, &parse_error);
        if (!doc) {
            if (error) *error = inputs[i].name + ": " + parse_error;
            return false;
        }
        const Value* events = doc->find("traceEvents");
        if (events == nullptr || !events->is_array()) {
            if (error) *error = inputs[i].name + ": no traceEvents array";
            return false;
        }
        // Track-group label for this process.
        Object meta;
        meta.emplace("name", Value{std::string{"process_name"}});
        meta.emplace("ph", Value{std::string{"M"}});
        meta.emplace("pid", Value{pid});
        meta.emplace("tid", Value{0.0});
        Object meta_args;
        meta_args.emplace("name", Value{inputs[i].name});
        meta.emplace("args", Value{std::move(meta_args)});
        if (!first) out += ',';
        first = false;
        serialize(Value{std::move(meta)}, out);
        for (const Value& ev : events->as_array()) {
            if (!ev.is_object()) continue;
            Object copy = ev.as_object();
            copy.insert_or_assign("pid", Value{pid});
            out += ',';
            serialize(Value{std::move(copy)}, out);
        }
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return true;
}

namespace {

struct SpanRow {
    std::string name;
    std::string label;
    std::string span_id;
    std::string parent_span_id;
    std::string process;
    double ts = 0.0;   // microseconds
    double dur = 0.0;  // microseconds
};

}  // namespace

std::string critical_path_summary(std::string_view merged_json,
                                  std::size_t slowest_n) {
    const auto doc = util::json::parse(merged_json);
    if (!doc) return {};
    const Value* events = doc->find("traceEvents");
    if (events == nullptr || !events->is_array()) return {};

    std::map<double, std::string> process_names;
    std::map<std::string, std::vector<SpanRow>> traces;
    for (const Value& ev : events->as_array()) {
        if (!ev.is_object()) continue;
        const Value* ph = ev.find("ph");
        if (ph == nullptr || !ph->is_string()) continue;
        const double pid = ev.number_or("pid", 0.0);
        if (ph->as_string() == "M") {
            const Value* name = ev.find("name");
            const Value* args = ev.find("args");
            if (name && name->is_string() && name->as_string() == "process_name" &&
                args != nullptr) {
                const Value* pname = args->find("name");
                if (pname && pname->is_string()) {
                    process_names[pid] = pname->as_string();
                }
            }
            continue;
        }
        if (ph->as_string() != "X") continue;
        const Value* args = ev.find("args");
        if (args == nullptr) continue;
        const Value* trace_id = args->find("trace_id");
        const Value* span_id = args->find("span_id");
        if (trace_id == nullptr || !trace_id->is_string() ||
            span_id == nullptr || !span_id->is_string()) {
            continue;
        }
        SpanRow row;
        const Value* name = ev.find("name");
        if (name && name->is_string()) row.name = name->as_string();
        const Value* label = args->find("label");
        if (label && label->is_string()) row.label = label->as_string();
        const Value* parent = args->find("parent_span_id");
        if (parent && parent->is_string()) row.parent_span_id = parent->as_string();
        row.span_id = span_id->as_string();
        char pid_key[32];
        std::snprintf(pid_key, sizeof pid_key, "pid %.0f", pid);
        const auto it = process_names.find(pid);
        row.process = it != process_names.end() ? it->second : pid_key;
        row.ts = ev.number_or("ts", 0.0);
        row.dur = ev.number_or("dur", 0.0);
        traces[trace_id->as_string()].push_back(std::move(row));
    }
    if (traces.empty()) return {};

    // A trace's root: the span whose parent is absent or not in the trace
    // (the client died / wasn't collected). Ties go to the longest span.
    struct TraceSummary {
        std::string trace_id;
        const std::vector<SpanRow>* rows = nullptr;
        const SpanRow* root = nullptr;
    };
    std::vector<TraceSummary> order;
    for (const auto& [trace_id, rows] : traces) {
        TraceSummary s;
        s.trace_id = trace_id;
        s.rows = &rows;
        for (const SpanRow& row : rows) {
            bool parent_present = false;
            if (!row.parent_span_id.empty()) {
                for (const SpanRow& other : rows) {
                    if (other.span_id == row.parent_span_id) {
                        parent_present = true;
                        break;
                    }
                }
            }
            if (parent_present) continue;
            if (s.root == nullptr || row.dur > s.root->dur) s.root = &row;
        }
        if (s.root != nullptr) order.push_back(std::move(s));
    }
    std::sort(order.begin(), order.end(),
              [](const TraceSummary& a, const TraceSummary& b) {
                  return a.root->dur > b.root->dur;
              });
    if (order.size() > slowest_n) order.resize(slowest_n);

    std::string out;
    char buf[160];
    for (const TraceSummary& s : order) {
        std::snprintf(buf, sizeof buf,
                      "trace %s  %zu spans  root %.3f ms\n", s.trace_id.c_str(),
                      s.rows->size(), s.root->dur / 1000.0);
        out += buf;
        // Walk the heaviest child chain from the root.
        const SpanRow* cur = s.root;
        std::size_t depth = 0;
        while (cur != nullptr && depth < 32) {
            std::snprintf(buf, sizeof buf, "  %*s%s [%s]  %.3f ms",
                          static_cast<int>(depth * 2), "", cur->name.c_str(),
                          cur->process.c_str(), cur->dur / 1000.0);
            out += buf;
            if (!cur->label.empty()) {
                out += "  ";
                out += cur->label;
            }
            out += '\n';
            const SpanRow* next = nullptr;
            for (const SpanRow& row : *s.rows) {
                if (row.parent_span_id != cur->span_id) continue;
                if (next == nullptr || row.dur > next->dur) next = &row;
            }
            cur = next;
            ++depth;
        }
    }
    return out;
}

}  // namespace hsw::obs::trace_merge
