// Merging per-process Chrome trace exports into one fleet timeline.
//
// Every process in the fleet (router, each surveyd shard, the client)
// exports its own {"traceEvents":[...]} document with pid 1 and local
// thread tids. merge_chrome_traces() stitches N such documents into a
// single Chrome trace: process i keeps its events verbatim but is
// remapped to pid i+1 and gains a "process_name" metadata event, so
// Perfetto shows one labelled track group per fleet member while the
// shared args.trace_id / span_id / parent_span_id strings (stamped by
// obs/trace) tie each request's spans together across the groups.
//
// critical_path_summary() is the text companion: it groups "X" events by
// args.trace_id, finds each trace's root span, and for the slowest N
// traces walks the heaviest child chain -- the critical path -- printing
// one indented line per hop with its process, duration and label.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hsw::obs::trace_merge {

/// One fleet member's Chrome trace export, labelled for the merged view.
struct ProcessTrace {
    std::string name;  // track-group label ("router", "shard0", ...)
    std::string json;  // its export_chrome_json() / trace_dump payload
};

/// Merge per-process exports into one Chrome trace document. Inputs that
/// fail to parse or lack a traceEvents array are reported in `error`
/// (when non-null) and the merge fails; an empty input list merges to an
/// empty-but-valid trace.
[[nodiscard]] bool merge_chrome_traces(std::span<const ProcessTrace> inputs,
                                       std::string& out, std::string* error);

/// Human-readable critical paths for the `slowest_n` slowest traces in a
/// merged (or single-process) Chrome trace document. Returns "" when the
/// document has no trace-context-tagged spans.
[[nodiscard]] std::string critical_path_summary(std::string_view merged_json,
                                                std::size_t slowest_n);

}  // namespace hsw::obs::trace_merge
