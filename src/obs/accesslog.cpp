#include "obs/accesslog.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace hsw::obs::accesslog {

namespace {

static_assert(std::is_trivially_copyable_v<Record>,
              "records cross the ring as raw atomic words");

constexpr std::size_t kRecordWords = (sizeof(Record) + 7) / 8;

/// One ring slot: a seqlock stamp plus the record as atomic words, so
/// producer/consumer overlap is defined behavior (torn copies are
/// detected by the stamp and counted as drops, never surfaced).
struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty/busy, ticket+1 = stable
    std::atomic<std::uint64_t> words[kRecordWords];
};

struct Ring {
    std::unique_ptr<Slot[]> slots;
    std::size_t mask = 0;           // capacity - 1 (power of two)
    std::atomic<std::uint64_t> head{0};  // tickets issued
    std::atomic<std::uint64_t> lost{0};  // overwritten-unread + torn reads
    util::Mutex drain_mu;
    std::uint64_t cursor GUARDED_BY(drain_mu) = 0;
};

std::atomic<bool> g_enabled{false};
std::size_t g_capacity = 4096;
char g_identity[24] = {};

std::atomic<std::uint64_t> g_head_sample_permille{1000};
std::atomic<std::uint64_t> g_slow_us{0};
std::atomic<std::uint64_t> g_sample_walk{0x5EEDACCE551061ULL};

Ring& ring() {
    static Ring r;
    if (!r.slots) {
        std::size_t cap = 64;
        while (cap < g_capacity) cap <<= 1;
        r.slots = std::make_unique<Slot[]>(cap);
        r.mask = cap - 1;
    }
    return r;
}

std::uint64_t now_ns() {
    static const auto t0 = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/// Validated seqlock read of one slot; false = torn or not yet stable.
bool read_slot(const Slot& s, std::uint64_t ticket, Record& out) {
    if (s.seq.load(std::memory_order_acquire) != ticket + 1) return false;
    std::uint64_t words[kRecordWords];
    for (std::size_t w = 0; w < kRecordWords; ++w) {
        words[w] = s.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != ticket + 1) return false;
    std::memcpy(&out, words, sizeof(Record));
    return true;
}

}  // namespace

void set_enabled(bool on) {
    if (on) {
        Ring& r = ring();
        util::LockGuard lock{r.drain_mu};
        r.head.store(0, std::memory_order_relaxed);
        r.lost.store(0, std::memory_order_relaxed);
        r.cursor = 0;
        for (std::size_t i = 0; i <= r.mask; ++i) {
            r.slots[i].seq.store(0, std::memory_order_relaxed);
        }
    }
    g_enabled.store(on, std::memory_order_release);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void configure(std::size_t capacity) {
    if (enabled()) return;  // honored only while off
    g_capacity = capacity < 64 ? 64 : capacity;
    Ring& r = ring();
    std::size_t cap = 64;
    while (cap < g_capacity) cap <<= 1;
    {
        util::LockGuard lock{r.drain_mu};
        r.slots = std::make_unique<Slot[]>(cap);
        r.mask = cap - 1;
        r.head.store(0, std::memory_order_relaxed);
        r.lost.store(0, std::memory_order_relaxed);
        r.cursor = 0;
    }
}

void set_identity(std::string_view shard) { set_field(g_identity, shard); }

std::string identity() { return g_identity; }

void set_policy(double head_fraction, std::uint64_t slow_us) {
    if (head_fraction < 0.0) head_fraction = 0.0;
    if (head_fraction > 1.0) head_fraction = 1.0;
    g_head_sample_permille.store(static_cast<std::uint64_t>(head_fraction * 1000.0),
                                 std::memory_order_relaxed);
    g_slow_us.store(slow_us, std::memory_order_relaxed);
}

bool should_log(const trace::TraceContext& ctx, bool error,
                std::uint64_t micros, bool retried) {
    // Tail overrides first: anything anomalous is always kept.
    if (error || retried || ctx.forced()) return true;
    const std::uint64_t slow = g_slow_us.load(std::memory_order_relaxed);
    if (slow != 0 && micros > slow) return true;
    // Head decision: the origin's call when a context exists, this
    // process's own fraction otherwise.
    if (ctx.valid()) return ctx.sampled();
    const std::uint64_t permille =
        g_head_sample_permille.load(std::memory_order_relaxed);
    if (permille >= 1000) return true;
    if (permille == 0) return false;
    const std::uint64_t x = util::mix64(
        g_sample_walk.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed));
    return x % 1000 < permille;
}

void record(const Record& r) {
    if (!g_enabled.load(std::memory_order_relaxed)) return;
    Record stamped = r;
    if (stamped.ts_ns == 0) stamped.ts_ns = now_ns();
    if (stamped.shard[0] == '\0') set_field(stamped.shard, g_identity);
    std::uint64_t words[kRecordWords] = {};
    std::memcpy(words, &stamped, sizeof(Record));
    Ring& ring_ref = ring();
    // hsw:hot-path -- lock-free push: ticket, word stores, stamp.
    const std::uint64_t t =
        ring_ref.head.fetch_add(1, std::memory_order_acq_rel);
    Slot& slot = ring_ref.slots[t & ring_ref.mask];
    slot.seq.store(0, std::memory_order_release);
    for (std::size_t w = 0; w < kRecordWords; ++w) {
        slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(t + 1, std::memory_order_release);
    // hsw:end-hot-path
}

std::uint64_t recorded() {
    return ring().head.load(std::memory_order_relaxed);
}

std::uint64_t dropped() {
    Ring& r = ring();
    std::uint64_t lost = r.lost.load(std::memory_order_relaxed);
    // Overwritten-but-not-yet-drained records count too; otherwise a
    // process with no Writer reports zero drops forever.
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    {
        util::LockGuard lock{r.drain_mu};
        const std::uint64_t cap = r.mask + 1;
        if (head - r.cursor > cap) lost += head - r.cursor - cap;
    }
    return lost;
}

void drain(std::vector<Record>& out) {
    Ring& r = ring();
    util::LockGuard lock{r.drain_mu};
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t cap = r.mask + 1;
    std::uint64_t cursor = r.cursor;
    if (head - cursor > cap) {
        r.lost.fetch_add(head - cursor - cap, std::memory_order_relaxed);
        cursor = head - cap;
    }
    for (; cursor != head; ++cursor) {
        Record rec;
        if (read_slot(r.slots[cursor & r.mask], cursor, rec)) {
            out.push_back(rec);
        } else {
            r.lost.fetch_add(1, std::memory_order_relaxed);
        }
    }
    r.cursor = head;
}

std::vector<Record> tail(std::size_t max) {
    Ring& r = ring();
    std::vector<Record> out;
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t cap = r.mask + 1;
    std::uint64_t n = head < cap ? head : cap;
    if (n > max) n = max;
    out.reserve(n);
    for (std::uint64_t t = head - n; t != head; ++t) {
        Record rec;
        if (read_slot(r.slots[t & r.mask], t, rec)) out.push_back(rec);
    }
    return out;
}

void publish_overflow_metrics() {
    static Gauge& lost = gauge(
        "obs_accesslog_dropped",
        "access-log records lost to ring overwrite before being drained");
    lost.set(static_cast<std::int64_t>(dropped()));
}

namespace {

void append_field(std::string& out, std::string_view name,
                  std::string_view value, bool quote) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += name;
    out += "\":";
    if (!quote) {
        out += value;
        return;
    }
    out += '"';
    for (const char c : value) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    out += '"';
}

}  // namespace

std::string format_json(const Record& r) {
    char buf[32];
    std::string out = "{";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(r.ts_ns));
    append_field(out, "ts_ns", buf, false);
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(r.trace_id));
    append_field(out, "trace_id", buf, true);
    append_field(out, "verb", r.verb, true);
    append_field(out, "spec", r.spec, true);
    append_field(out, "source", r.source, true);
    append_field(out, "shard", r.shard, true);
    if (r.deadline_slack_us == kNoDeadline) {
        append_field(out, "deadline_slack_us", "null", false);
    } else {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(r.deadline_slack_us));
        append_field(out, "deadline_slack_us", buf, false);
    }
    append_field(out, "outcome", r.outcome, true);
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(r.micros));
    append_field(out, "us", buf, false);
    std::snprintf(buf, sizeof buf, "%u", r.retries);
    append_field(out, "retries", buf, false);
    out += '}';
    return out;
}

Writer::~Writer() { stop(); }

bool Writer::start(const std::string& path) {
    if (running_) return false;
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) return false;
    file_ = f;
    {
        util::LockGuard lock{mu_};
        stop_requested_ = false;
    }
    thread_ = std::thread{[this] { run(); }};
    running_ = true;
    return true;
}

void Writer::stop() {
    if (!running_) return;
    {
        util::LockGuard lock{mu_};
        stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    running_ = false;
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
}

void Writer::run() {
    std::FILE* f = static_cast<std::FILE*>(file_);
    std::vector<Record> batch;
    std::string lines;
    bool done = false;
    while (!done) {
        {
            util::LockGuard lock{mu_};
            if (!stop_requested_) {
                cv_.wait_for(lock, std::chrono::milliseconds{100});
            }
            done = stop_requested_;
        }
        batch.clear();
        drain(batch);  // copies only; formatting and I/O happen lock-free
        if (batch.empty()) continue;
        lines.clear();
        for (const Record& rec : batch) {
            lines += format_json(rec);
            lines += '\n';
        }
        std::fwrite(lines.data(), 1, lines.size(), f);
        std::fflush(f);
    }
}

}  // namespace hsw::obs::accesslog
