#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include "util/minijson.hpp"
#include "util/sync.hpp"

namespace hsw::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::size_t thread_shard() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return shard;
}

}  // namespace detail

bool metrics_enabled() {
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
    detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::logic_error{"obs::Histogram bounds must be ascending"};
    }
    for (auto& shard : shards_) {
        shard.buckets =
            std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
        for (std::size_t i = 0; i <= bounds_.size(); ++i) {
            shard.buckets[i].store(0, std::memory_order_relaxed);
        }
    }
}

void Histogram::record(double v) {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    Shard& shard = shards_[detail::thread_shard()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    // Sum kept in integral microunits so fetch_add stays lock-free; values
    // here are latencies/sizes where 1e-6 resolution is ample.
    const auto micro = static_cast<std::uint64_t>(std::llround(v * 1e6));
    shard.sum_micro.fetch_add(micro, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.count.load(std::memory_order_relaxed);
    return total;
}

double Histogram::sum() const {
    std::uint64_t micro = 0;
    for (const auto& shard : shards_) {
        micro += shard.sum_micro.load(std::memory_order_relaxed);
    }
    return static_cast<double>(micro) * 1e-6;
}

std::vector<double> exponential_bounds(double lo, double factor, std::size_t n) {
    if (lo <= 0 || factor <= 1.0) {
        throw std::logic_error{"exponential_bounds needs lo > 0 and factor > 1"};
    }
    std::vector<double> bounds;
    bounds.reserve(n);
    double edge = lo;
    for (std::size_t i = 0; i < n; ++i) {
        bounds.push_back(edge);
        edge *= factor;
    }
    return bounds;
}

// --- HistogramSample --------------------------------------------------------

double HistogramSample::quantile(double q) const {
    // Empty, or degraded by a cross-fleet merge of incompatible binnings
    // (count survives, buckets don't): no per-bucket data to interpolate.
    if (count == 0 || counts.empty()) return std::nan("");
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (static_cast<double>(seen) < rank) continue;
        // Interpolate inside bucket i between its lower and upper edge.
        const double hi = i < bounds.size() ? bounds[i] : bounds.empty() ? 0.0 : bounds.back();
        if (i >= bounds.size()) return hi;  // +Inf bucket: clamp to last edge
        const double lo = i == 0 ? 0.0 : bounds[i - 1];
        if (counts[i] == 0) return hi;
        const auto below = static_cast<double>(seen - counts[i]);
        const double frac = (rank - below) / static_cast<double>(counts[i]);
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

// --- Registry ---------------------------------------------------------------

namespace {

/// Formats like %g but always distinguishable as a double edge; matches the
/// exposition Prometheus clients expect ("0.001", "4096", "+Inf").
std::string format_bound(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

std::string format_double(double v) {
    if (std::isnan(v)) return "NaN";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim "%.17g" noise for values that round-trip shorter.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[64];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == v) return probe;
    }
    return buf;
}

void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

}  // namespace

/// Owns every instrument. std::map keys give sorted, deterministic
/// exposition order; instruments are heap-allocated once and never move,
/// so references handed out stay valid under later registrations.
class Registry {
public:
    static Registry& instance() {
        static Registry r;
        return r;
    }

    Counter& counter(std::string_view name, std::string_view help) {
        util::LockGuard lock{mu_};
        auto [it, inserted] = counters_.try_emplace(std::string{name});
        if (inserted) {
            check_unique(name, Kind::Counter);
            it->second.help = std::string{help};
            it->second.instrument.reset(new Counter{});
        }
        return *it->second.instrument;
    }

    Gauge& gauge(std::string_view name, std::string_view help) {
        util::LockGuard lock{mu_};
        auto [it, inserted] = gauges_.try_emplace(std::string{name});
        if (inserted) {
            check_unique(name, Kind::Gauge);
            it->second.help = std::string{help};
            it->second.instrument.reset(new Gauge{});
        }
        return *it->second.instrument;
    }

    Histogram& histogram(std::string_view name, std::span<const double> bounds,
                         std::string_view help) {
        util::LockGuard lock{mu_};
        auto [it, inserted] = histograms_.try_emplace(std::string{name});
        if (inserted) {
            check_unique(name, Kind::Histogram);
            it->second.help = std::string{help};
            it->second.instrument.reset(
                new Histogram{std::vector<double>{bounds.begin(), bounds.end()}});
        }
        return *it->second.instrument;
    }

    MetricsSnapshot snapshot() {
        util::LockGuard lock{mu_};
        MetricsSnapshot snap;
        snap.counters.reserve(counters_.size());
        for (const auto& [name, entry] : counters_) {
            snap.counters.push_back({name, entry.help, entry.instrument->value()});
        }
        snap.gauges.reserve(gauges_.size());
        for (const auto& [name, entry] : gauges_) {
            snap.gauges.push_back({name, entry.help, entry.instrument->value()});
        }
        snap.histograms.reserve(histograms_.size());
        for (const auto& [name, entry] : histograms_) {
            const Histogram& h = *entry.instrument;
            HistogramSample sample;
            sample.name = name;
            sample.help = entry.help;
            sample.bounds = h.bounds_;
            sample.counts.assign(h.bounds_.size() + 1, 0);
            for (const auto& shard : h.shards_) {
                for (std::size_t i = 0; i <= h.bounds_.size(); ++i) {
                    sample.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
                }
            }
            sample.count = h.count();
            sample.sum = h.sum();
            snap.histograms.push_back(std::move(sample));
        }
        return snap;
    }

    void zero_all() {
        util::LockGuard lock{mu_};
        for (auto& [name, entry] : counters_) {
            for (auto& cell : entry.instrument->cells_) {
                cell.value.store(0, std::memory_order_relaxed);
            }
        }
        for (auto& [name, entry] : gauges_) {
            entry.instrument->value_.store(0, std::memory_order_relaxed);
        }
        for (auto& [name, entry] : histograms_) {
            for (auto& shard : entry.instrument->shards_) {
                for (std::size_t i = 0; i <= entry.instrument->bounds_.size(); ++i) {
                    shard.buckets[i].store(0, std::memory_order_relaxed);
                }
                shard.count.store(0, std::memory_order_relaxed);
                shard.sum_micro.store(0, std::memory_order_relaxed);
            }
        }
    }

private:
    enum class Kind { Counter, Gauge, Histogram };

    template <typename T>
    struct Entry {
        std::string help;
        std::unique_ptr<T> instrument;
    };

    /// Called after try_emplace into the target map succeeded -- so
    /// "exists in another map" means a kind clash.
    void check_unique(std::string_view name, Kind kind) REQUIRES(mu_) {
        const std::string key{name};
        const bool clash = (kind != Kind::Counter && counters_.count(key) != 0) ||
                           (kind != Kind::Gauge && gauges_.count(key) != 0) ||
                           (kind != Kind::Histogram && histograms_.count(key) != 0);
        if (clash) {
            // Roll back the speculative insert before throwing.
            if (kind == Kind::Counter) counters_.erase(key);
            if (kind == Kind::Gauge) gauges_.erase(key);
            if (kind == Kind::Histogram) histograms_.erase(key);
            throw std::logic_error{"obs metric '" + key +
                                   "' already registered as a different kind"};
        }
    }

    util::Mutex mu_;
    std::map<std::string, Entry<Counter>> counters_ GUARDED_BY(mu_);
    std::map<std::string, Entry<Gauge>> gauges_ GUARDED_BY(mu_);
    std::map<std::string, Entry<Histogram>> histograms_ GUARDED_BY(mu_);
};

Counter& counter(std::string_view name, std::string_view help) {
    return Registry::instance().counter(name, help);
}

Gauge& gauge(std::string_view name, std::string_view help) {
    return Registry::instance().gauge(name, help);
}

Histogram& histogram(std::string_view name, std::span<const double> bounds,
                     std::string_view help) {
    return Registry::instance().histogram(name, bounds, help);
}

MetricsSnapshot snapshot_metrics() { return Registry::instance().snapshot(); }

void zero_all_metrics() { Registry::instance().zero_all(); }

// --- MetricsSnapshot lookups ------------------------------------------------

const CounterSample* MetricsSnapshot::find_counter(std::string_view name) const {
    for (const auto& c : counters) {
        if (c.name == name) return &c;
    }
    return nullptr;
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
    for (const auto& g : gauges) {
        if (g.name == name) return &g;
    }
    return nullptr;
}

const HistogramSample* MetricsSnapshot::find_histogram(std::string_view name) const {
    for (const auto& h : histograms) {
        if (h.name == name) return &h;
    }
    return nullptr;
}

// --- exposition -------------------------------------------------------------

namespace {

/// "name" or "name{labels}" / "name_bucket{labels,le=...}" sample keys.
std::string labeled(const std::string& name, std::string_view suffix,
                    std::string_view labels) {
    std::string out = name;
    out += suffix;
    if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
    }
    return out;
}

void append_counter_sample(std::string& out, const CounterSample& c,
                           std::string_view labels) {
    out += labeled(c.name, "_total", labels) + " " + std::to_string(c.value) + "\n";
}

void append_gauge_sample(std::string& out, const GaugeSample& g,
                         std::string_view labels) {
    out += labeled(g.name, "", labels) + " " + std::to_string(g.value) + "\n";
}

void append_histogram_samples(std::string& out, const HistogramSample& h,
                              std::string_view labels) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        const std::string le =
            i < h.bounds.size() ? format_bound(h.bounds[i]) : "+Inf";
        out += h.name + "_bucket{";
        if (!labels.empty()) {
            out += labels;
            out += ',';
        }
        out += "le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
    }
    out += labeled(h.name, "_sum", labels) + " " + format_double(h.sum) + "\n";
    out += labeled(h.name, "_count", labels) + " " + std::to_string(h.count) + "\n";
}

}  // namespace

std::string MetricsSnapshot::render_prometheus() const {
    return render_prometheus(std::string_view{});
}

std::string MetricsSnapshot::render_prometheus(std::string_view labels) const {
    std::string out;
    out.reserve(4096);
    for (const auto& c : counters) {
        if (!c.help.empty()) out += "# HELP " + c.name + " " + c.help + "\n";
        out += "# TYPE " + c.name + " counter\n";
        append_counter_sample(out, c, labels);
    }
    for (const auto& g : gauges) {
        if (!g.help.empty()) out += "# HELP " + g.name + " " + g.help + "\n";
        out += "# TYPE " + g.name + " gauge\n";
        append_gauge_sample(out, g, labels);
    }
    for (const auto& h : histograms) {
        if (!h.help.empty()) out += "# HELP " + h.name + " " + h.help + "\n";
        out += "# TYPE " + h.name + " histogram\n";
        append_histogram_samples(out, h, labels);
    }
    return out;
}

std::string MetricsSnapshot::render_json() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& c : counters) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, c.name);
        out += ':' + std::to_string(c.value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& g : gauges) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, g.name);
        out += ':' + std::to_string(g.value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& h : histograms) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, h.name);
        out += ":{\"count\":" + std::to_string(h.count);
        out += ",\"sum\":" + format_double(h.sum);
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i) out += ',';
            out += format_double(h.bounds[i]);
        }
        out += "],\"counts\":[";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i) out += ',';
            out += std::to_string(h.counts[i]);
        }
        out += "]";
        if (h.count > 0) {
            out += ",\"p50\":" + format_double(h.p50());
            out += ",\"p90\":" + format_double(h.p90());
            out += ",\"p99\":" + format_double(h.p99());
        }
        out += '}';
    }
    out += "}}";
    return out;
}

std::string render_prometheus() { return snapshot_metrics().render_prometheus(); }
std::string render_json() { return snapshot_metrics().render_json(); }

// --- fleet merging ----------------------------------------------------------

namespace {

void set_parse_error(std::string* error, std::string_view reason) {
    if (error) *error = std::string{reason};
}

}  // namespace

std::optional<MetricsSnapshot> parse_snapshot_json(std::string_view text,
                                                   std::string* error) {
    const auto doc = util::json::parse(text, error);
    if (!doc) return std::nullopt;
    if (!doc->is_object()) {
        set_parse_error(error, "snapshot is not an object");
        return std::nullopt;
    }
    MetricsSnapshot snap;
    if (const auto* cs = doc->find("counters")) {
        if (!cs->is_object()) {
            set_parse_error(error, "counters is not an object");
            return std::nullopt;
        }
        for (const auto& [name, v] : cs->as_object()) {
            if (!v.is_number()) {
                set_parse_error(error, "counter " + name + " is not a number");
                return std::nullopt;
            }
            snap.counters.push_back(
                {name, {}, static_cast<std::uint64_t>(v.as_number())});
        }
    }
    if (const auto* gs = doc->find("gauges")) {
        if (!gs->is_object()) {
            set_parse_error(error, "gauges is not an object");
            return std::nullopt;
        }
        for (const auto& [name, v] : gs->as_object()) {
            if (!v.is_number()) {
                set_parse_error(error, "gauge " + name + " is not a number");
                return std::nullopt;
            }
            snap.gauges.push_back(
                {name, {}, static_cast<std::int64_t>(v.as_number())});
        }
    }
    if (const auto* hs = doc->find("histograms")) {
        if (!hs->is_object()) {
            set_parse_error(error, "histograms is not an object");
            return std::nullopt;
        }
        for (const auto& [name, v] : hs->as_object()) {
            const auto* bounds = v.find("bounds");
            const auto* counts = v.find("counts");
            if (!v.is_object() || !bounds || !bounds->is_array() || !counts ||
                !counts->is_array() ||
                counts->as_array().size() != bounds->as_array().size() + 1) {
                set_parse_error(error, "histogram " + name + " is malformed");
                return std::nullopt;
            }
            HistogramSample h;
            h.name = name;
            h.count = static_cast<std::uint64_t>(v.number_or("count", 0));
            h.sum = v.number_or("sum", 0.0);
            for (const auto& b : bounds->as_array()) {
                if (!b.is_number()) {
                    set_parse_error(error, "histogram " + name + " has a bad bound");
                    return std::nullopt;
                }
                h.bounds.push_back(b.as_number());
            }
            for (const auto& c : counts->as_array()) {
                if (!c.is_number()) {
                    set_parse_error(error, "histogram " + name + " has a bad count");
                    return std::nullopt;
                }
                h.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
            }
            snap.histograms.push_back(std::move(h));
        }
    }
    // util::json objects are std::map-backed, so the vectors arrive sorted
    // by name -- the same invariant snapshot_metrics() maintains.
    return snap;
}

MetricsSnapshot merge_snapshots(std::span<const MetricsSnapshot> parts) {
    std::map<std::string, CounterSample> counters;
    std::map<std::string, GaugeSample> gauges;
    std::map<std::string, HistogramSample> histograms;
    for (const auto& part : parts) {
        for (const auto& c : part.counters) {
            auto [it, fresh] = counters.try_emplace(c.name, c);
            if (!fresh) it->second.value += c.value;
        }
        for (const auto& g : part.gauges) {
            auto [it, fresh] = gauges.try_emplace(g.name, g);
            if (!fresh) it->second.value += g.value;
        }
        for (const auto& h : part.histograms) {
            auto [it, fresh] = histograms.try_emplace(h.name, h);
            if (fresh) continue;
            HistogramSample& merged = it->second;
            merged.count += h.count;
            merged.sum += h.sum;
            if (merged.bounds == h.bounds &&
                merged.counts.size() == h.counts.size()) {
                for (std::size_t i = 0; i < h.counts.size(); ++i) {
                    merged.counts[i] += h.counts[i];
                }
            } else {
                // Incompatible binning: keep exact count/sum, drop buckets
                // (empty bounds never match a later part, so the family
                // stays degraded instead of silently re-binning).
                merged.bounds.clear();
                merged.counts.clear();
            }
        }
    }
    MetricsSnapshot out;
    for (auto& [name, c] : counters) out.counters.push_back(std::move(c));
    for (auto& [name, g] : gauges) out.gauges.push_back(std::move(g));
    for (auto& [name, h] : histograms) out.histograms.push_back(std::move(h));
    return out;
}

std::string render_fleet_prometheus(
    const MetricsSnapshot& merged,
    std::span<const std::pair<std::string, MetricsSnapshot>> shards) {
    std::string out;
    out.reserve(8192);
    const auto shard_label = [](const std::string& name) {
        return "shard=\"" + name + "\"";
    };
    for (const auto& c : merged.counters) {
        if (!c.help.empty()) out += "# HELP " + c.name + " " + c.help + "\n";
        out += "# TYPE " + c.name + " counter\n";
        append_counter_sample(out, c, {});
        for (const auto& [shard, snap] : shards) {
            if (const auto* sc = snap.find_counter(c.name)) {
                append_counter_sample(out, *sc, shard_label(shard));
            }
        }
    }
    for (const auto& g : merged.gauges) {
        if (!g.help.empty()) out += "# HELP " + g.name + " " + g.help + "\n";
        out += "# TYPE " + g.name + " gauge\n";
        append_gauge_sample(out, g, {});
        for (const auto& [shard, snap] : shards) {
            if (const auto* sg = snap.find_gauge(g.name)) {
                append_gauge_sample(out, *sg, shard_label(shard));
            }
        }
    }
    for (const auto& h : merged.histograms) {
        if (!h.help.empty()) out += "# HELP " + h.name + " " + h.help + "\n";
        out += "# TYPE " + h.name + " histogram\n";
        append_histogram_samples(out, h, {});
        for (const auto& [shard, snap] : shards) {
            if (const auto* sh = snap.find_histogram(h.name)) {
                append_histogram_samples(out, *sh, shard_label(shard));
            }
        }
    }
    return out;
}

std::string render_fleet_json(
    const MetricsSnapshot& merged,
    std::span<const std::pair<std::string, MetricsSnapshot>> shards) {
    std::string out = merged.render_json();
    out.pop_back();  // reopen the top-level object
    out += ",\"shards\":{";
    bool first = true;
    for (const auto& [shard, snap] : shards) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, shard);
        out += ':' + snap.render_json();
    }
    out += "}}";
    return out;
}

}  // namespace hsw::obs
