#include "obs/flight.hpp"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <vector>

#include "obs/accesslog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"
#include "util/version.hpp"

namespace hsw::obs::flight {

namespace {

util::Mutex g_config_mu;
Config g_config GUARDED_BY(g_config_mu);

void append_json_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default:
                if (static_cast<unsigned char>(c) >= 0x20) out += c;
        }
    }
}

/// "flight-<pid>-<reason>.json" with the reason reduced to a filename-safe
/// token (signal names and verb names already are; this is a backstop).
std::string dump_filename(std::string_view reason) {
    char prefix[48];
    std::snprintf(prefix, sizeof prefix, "flight-%ld-",
                  static_cast<long>(::getpid()));
    std::string name = prefix;
    for (const char c : reason) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_';
        name += safe ? c : '_';
    }
    name += ".json";
    return name;
}

std::atomic<bool> g_in_crash_dump{false};

extern "C" void crash_handler(int signo) {
    // One attempt only: a fault inside the dump must not recurse.
    if (!g_in_crash_dump.exchange(true)) {
        const char* reason = signo == SIGSEGV ? "sigsegv"
                             : signo == SIGABRT ? "sigabrt"
                                                : "signal";
        // Not async-signal-safe (allocates, takes locks); acceptable for a
        // best-effort last gasp -- a deadlock here only delays a death
        // that was already happening, and the re-raise below still runs
        // for the common single-threaded-fault case.
        dump(reason);
    }
    std::signal(signo, SIG_DFL);
    ::raise(signo);
}

}  // namespace

bool write_text_atomic(const std::string& path, std::string_view content) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + suffix;
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return false;
    const bool wrote =
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

void configure(const Config& config) {
    util::LockGuard lock{g_config_mu};
    g_config = config;
}

Config config() {
    util::LockGuard lock{g_config_mu};
    return g_config;
}

std::string render(std::string_view reason) {
    const Config cfg = config();
    std::string process = cfg.process;
    if (process.empty()) process = accesslog::identity();

    std::string out = "{\"flight\":{";
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"pid\":%ld,",
                  static_cast<long>(::getpid()));
    out += buf;
    out += "\"process\":\"";
    append_json_escaped(out, process);
    out += "\",\"reason\":\"";
    append_json_escaped(out, reason);
    out += "\",\"engine_version\":\"";
    append_json_escaped(out, util::kEngineCodeVersion);
    out += "\",\"build_preset\":\"";
    append_json_escaped(out, util::build_preset());
    std::snprintf(buf, sizeof buf,
                  "\",\"trace_dropped_spans\":%llu,\"accesslog_dropped\":%llu},",
                  static_cast<unsigned long long>(trace::dropped_events()),
                  static_cast<unsigned long long>(accesslog::dropped()));
    out += buf;

    out += "\"metrics\":";
    out += snapshot_metrics().render_json();

    out += ",\"trace\":";
    out += trace::export_chrome_json();

    out += ",\"access_log\":[";
    bool first = true;
    for (const accesslog::Record& rec : accesslog::tail(256)) {
        if (!first) out += ',';
        first = false;
        out += accesslog::format_json(rec);
    }
    out += "]}";
    return out;
}

std::string dump(std::string_view reason) {
    const Config cfg = config();
    std::string path = cfg.dir.empty() ? std::string{"."} : cfg.dir;
    if (path.back() != '/') path += '/';
    path += dump_filename(reason);
    if (!write_text_atomic(path, render(reason))) return {};
    return path;
}

void install_crash_handlers() {
    struct sigaction sa = {};
    sa.sa_handler = &crash_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGSEGV, &sa, nullptr);
    sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace hsw::obs::flight
