// Span-based tracing with per-thread ring buffers and a Chrome
// trace-event JSON exporter (opens in Perfetto / about://tracing).
//
// A Span is a scoped RAII region: construction stamps the start, the
// destructor stamps the duration and pushes one fixed-size TraceEvent into
// the calling thread's ring buffer. Rings are bounded (default 64k events
// per thread); on overflow the oldest events are overwritten and the drop
// is counted, so tracing a long daemon run is safe.
//
// Cost model, mirroring the metrics registry: when tracing is disabled
// (the default) constructing a Span is one relaxed load and nothing else.
// Span names and categories must be string literals (or otherwise outlive
// the export) -- the ring stores the pointers, not copies.
//
//   {
//       obs::Span span{"run_job", "engine"};
//       span.set_label(spec_hash);     // optional, truncated to 39 chars
//       ...                            // traced region
//   }                                  // event recorded here
//
// Tracing deliberately records wall-time only as ts/dur; sim-time can be
// attached with set_sim_us() and lands in the event's "args" so survey
// spans line up against simulated time in the viewer.
// Distributed context: when the calling thread carries a TraceContext
// (see obs/ctx.hpp), an armed Span adopts its trace_id, parents itself to
// the context's span_id, and re-scopes the context to itself, so nested
// spans -- and downstream hops that read current_context() -- form one
// tree per request across threads and processes. Spans without a context
// record exactly as before (no ids, no extra bytes in the export).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/ctx.hpp"

namespace hsw::obs::trace {

/// Start capturing. Allocates nothing up front; each thread's ring is
/// created on its first recorded span. `events_per_thread` bounds each
/// ring (rounded up to at least 16). Re-enabling clears prior events.
void enable(std::size_t events_per_thread = 1 << 16);

/// Stop capturing. Recorded events stay available for export.
void disable();

[[nodiscard]] bool enabled();

/// Drop all recorded events and per-thread rings (the calling thread's
/// ring is re-created on next use). Export after clear() is empty.
void clear();

/// Events recorded and retained across all thread rings.
[[nodiscard]] std::size_t recorded_events();
/// Events overwritten by ring wrap-around since enable().
[[nodiscard]] std::uint64_t dropped_events();

/// Serialize everything recorded so far as Chrome trace-event JSON:
/// {"traceEvents":[...]} with "X" (complete) events and "M" thread-name
/// metadata. Safe to call while other threads are still recording --
/// each ring is locked briefly while copied.
[[nodiscard]] std::string export_chrome_json();

/// export_chrome_json() to a file via the atomic tmp+rename pattern (a
/// crash mid-write never leaves a torn file); false on I/O error.
bool write_chrome_json(const std::string& path);

/// Copy the ring-overflow counters into the metrics registry
/// (`obs_trace_dropped_spans`); called before every metrics exposition so
/// silent drop-oldest overflow is visible to scrapes.
void publish_overflow_metrics();

namespace detail {
extern std::atomic<bool> g_trace_enabled;
struct TraceEvent {
    const char* name = nullptr;  // literal; never freed
    const char* cat = nullptr;   // literal; never freed
    std::uint64_t ts_ns = 0;     // start, relative to enable()
    std::uint64_t dur_ns = 0;
    std::uint64_t events = 0;    // optional payload (0 = omit)
    std::uint64_t trace_id = 0;  // distributed context (0 = none)
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    std::uint32_t retry = 0;     // >0: Nth failover/retry attempt
    double sim_us = -1.0;        // optional sim-time (<0 = omit)
    char label[40] = {};         // optional, NUL-terminated
};
void record(const TraceEvent& ev);
[[nodiscard]] std::uint64_t now_ns();
}  // namespace detail

/// Scoped trace region. Non-copyable, non-movable: it is only ever a
/// stack local naming the region it lives in.
class Span {
public:
    Span(const char* name, const char* cat) {
        if (!detail::g_trace_enabled.load(std::memory_order_relaxed)) return;
        armed_ = true;
        ev_.name = name;
        ev_.cat = cat;
        const TraceContext parent = current_context();
        if (parent.valid()) {
            ev_.trace_id = parent.trace_id;
            ev_.parent_span_id = parent.span_id;
            ev_.span_id = next_id();
            saved_ = parent;
            scoped_ = true;
            detail::t_current_context =
                TraceContext{parent.trace_id, ev_.span_id, parent.flags};
        }
        ev_.ts_ns = detail::now_ns();
    }
    ~Span() {
        if (scoped_) {
            // A nested force_current() (error/failover seen deeper in the
            // request) must survive this span's exit so the completion
            // point still sees the override.
            saved_.flags |= detail::t_current_context.flags & kFlagForced;
            detail::t_current_context = saved_;
        }
        if (!armed_) return;
        ev_.dur_ns = detail::now_ns() - ev_.ts_ns;
        detail::record(ev_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// True when tracing was on at construction -- lets callers skip
    /// argument formatting for disarmed spans.
    [[nodiscard]] bool armed() const { return armed_; }

    /// Free-form tag (spec hash, experiment name); truncated to fit.
    void set_label(std::string_view label) {
        if (!armed_) return;
        const std::size_t n = std::min(label.size(), sizeof(ev_.label) - 1);
        label.copy(ev_.label, n);
        ev_.label[n] = '\0';
    }
    /// Simulated time attached to the span (microseconds).
    void set_sim_us(double sim_us) {
        if (armed_) ev_.sim_us = sim_us;
    }
    /// Work units covered by the span (events dispatched, bytes, ...).
    void set_events(std::uint64_t n) {
        if (armed_) ev_.events = n;
    }
    /// Marks this span as the Nth retry/failover attempt for its request.
    void set_retry(std::uint32_t n) {
        if (armed_) ev_.retry = n;
    }

    /// The context this span re-scoped the thread to ({} when it did not:
    /// disarmed, or no incoming context).
    [[nodiscard]] TraceContext context() const {
        if (!scoped_) return {};
        return TraceContext{ev_.trace_id, ev_.span_id, saved_.flags};
    }

private:
    detail::TraceEvent ev_;
    TraceContext saved_;
    bool armed_ = false;
    bool scoped_ = false;
};

}  // namespace hsw::obs::trace
