// Fixed-bin histogram with an ASCII renderer, used for the Figure 3
// p-state transition latency distributions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hsw::util {

class Histogram {
public:
    /// Bins cover [lo, hi) uniformly; samples outside are clamped into the
    /// first/last bin (underflow/overflow counts are also tracked).
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void add_all(std::span<const double> xs);

    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] std::size_t total() const { return total_; }
    [[nodiscard]] std::size_t underflow() const { return underflow_; }
    [[nodiscard]] std::size_t overflow() const { return overflow_; }
    [[nodiscard]] double bin_lo(std::size_t bin) const;
    [[nodiscard]] double bin_hi(std::size_t bin) const;
    [[nodiscard]] double bin_center(std::size_t bin) const;

    /// Index of the fullest bin.
    [[nodiscard]] std::size_t mode_bin() const;

    /// Fraction of samples falling in [lo, hi).
    [[nodiscard]] double fraction_in(double lo, double hi) const;

    /// Quantile q in [0,1] over the retained raw samples (linear
    /// interpolation between order statistics, same convention as
    /// util::quantile); 0 when the histogram is empty.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p90() const { return quantile(0.90); }
    [[nodiscard]] double p99() const { return quantile(0.99); }

    /// Multi-line ASCII rendering: one row per bin, bar scaled to `width`.
    [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::vector<double> samples_;  // retained for fraction_in queries
};

}  // namespace hsw::util
