// Capability-annotated synchronization primitives.
//
// util::Mutex / util::CondVar / util::LockGuard are thin wrappers over
// std::mutex / std::condition_variable that carry the thread-safety
// attributes from util/thread_safety.hpp, so clang's -Wthread-safety can
// check every GUARDED_BY field and REQUIRES method in the repo. They add
// no state and no extra atomic operations: a LockGuard compiles to the
// same code as std::unique_lock, and CondVar waits on the *native*
// std::mutex (adopt/release), not on a condition_variable_any.
//
// Two deliberate API differences from the standard library:
//
//   * LockGuard is relockable (unlock()/lock()), replacing both
//     std::lock_guard and std::unique_lock, so there is exactly one guard
//     type for the analysis to track.
//   * CondVar has no predicate overloads. Write the loop at the call
//     site -- `while (!ready_) cv_.wait(lock);` -- because the analysis
//     sees guarded-field accesses in the enclosing function's scope but
//     not inside a predicate lambda (which would need its own REQUIRES).
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_safety.hpp"

namespace hsw::util {

class CondVar;

/// Standard mutex carrying the `capability` attribute. Prefer LockGuard
/// over calling lock()/unlock() directly.
class CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    friend class CondVar;
    friend class LockGuard;
    std::mutex mu_;
};

/// RAII scoped capability over Mutex; relockable like std::unique_lock.
/// The destructor releases only if the guard still owns the mutex, which
/// the analysis models for scoped capabilities (an unlock() before scope
/// exit is fine).
class SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_{mu}, owned_{true} {
        mu_.mu_.lock();
    }
    ~LockGuard() RELEASE() {
        if (owned_) mu_.mu_.unlock();
    }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

    /// Drop the mutex before scope exit (e.g. around a blocking join).
    void unlock() RELEASE() {
        mu_.mu_.unlock();
        owned_ = false;
    }
    /// Reacquire after unlock().
    void lock() ACQUIRE() {
        mu_.mu_.lock();
        owned_ = true;
    }

private:
    friend class CondVar;
    Mutex& mu_;
    bool owned_;
};

/// Reader-writer mutex carrying the `capability` attribute. Readers take
/// the shared side (SharedLockGuard), writers the exclusive side
/// (ExclusiveLockGuard). Used where the read path vastly outnumbers
/// writes (hot-cache lookups) and must not serialize behind a plain
/// mutex under duplicate-heavy concurrent load.
class CAPABILITY("mutex") SharedMutex {
public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

private:
    friend class SharedLockGuard;
    friend class ExclusiveLockGuard;
    std::shared_mutex mu_;
};

/// RAII shared (reader) hold on a SharedMutex. Not relockable: readers
/// that need to upgrade must drop the guard and take an
/// ExclusiveLockGuard -- upgrades deadlock by construction.
class SCOPED_CAPABILITY SharedLockGuard {
public:
    explicit SharedLockGuard(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_{mu} {
        mu_.mu_.lock_shared();
    }
    ~SharedLockGuard() RELEASE() { mu_.mu_.unlock_shared(); }
    SharedLockGuard(const SharedLockGuard&) = delete;
    SharedLockGuard& operator=(const SharedLockGuard&) = delete;

private:
    SharedMutex& mu_;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class SCOPED_CAPABILITY ExclusiveLockGuard {
public:
    explicit ExclusiveLockGuard(SharedMutex& mu) ACQUIRE(mu) : mu_{mu} {
        mu_.mu_.lock();
    }
    ~ExclusiveLockGuard() RELEASE() { mu_.mu_.unlock(); }
    ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
    ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

private:
    SharedMutex& mu_;
};

/// Condition variable waiting on a LockGuard. Waits release and reacquire
/// the guard's mutex through the native std::condition_variable fast path.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /// Caller must hold `guard` (it still does when wait returns). The
    /// capability state is unchanged across the call, matching how the
    /// analysis treats the temporary release inside.
    void wait(LockGuard& guard) {
        std::unique_lock<std::mutex> native{guard.mu_.mu_, std::adopt_lock};
        cv_.wait(native);
        native.release();
    }

    template <typename Clock, typename Duration>
    std::cv_status wait_until(LockGuard& guard,
                              const std::chrono::time_point<Clock, Duration>& tp) {
        std::unique_lock<std::mutex> native{guard.mu_.mu_, std::adopt_lock};
        const std::cv_status status = cv_.wait_until(native, tp);
        native.release();
        return status;
    }

    template <typename Rep, typename Period>
    std::cv_status wait_for(LockGuard& guard,
                            const std::chrono::duration<Rep, Period>& d) {
        std::unique_lock<std::mutex> native{guard.mu_.mu_, std::adopt_lock};
        const std::cv_status status = cv_.wait_for(native, d);
        native.release();
        return status;
    }

private:
    std::condition_variable cv_;
};

}  // namespace hsw::util
