// Clang Thread Safety Analysis attribute macros.
//
// These annotate which mutex guards which data (`GUARDED_BY`), which
// functions must be entered with a lock held (`REQUIRES`), and which
// functions take or drop locks (`ACQUIRE`/`RELEASE`), so `-Wthread-safety`
// turns the repo's locking discipline from comments into compile errors.
// The survey methodology depends on race-free, reproducible measurement;
// every mutex-holding type in src/{engine,service,obs} uses the annotated
// wrappers in util/sync.hpp, which are built on these macros.
//
// On compilers without the attribute (GCC, MSVC) every macro expands to
// nothing, so the annotations are free documentation outside the
// `thread-safety` CMake preset. Names follow the canonical set from the
// clang documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HSW_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HSW_THREAD_ANNOTATION
#define HSW_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define CAPABILITY(x) HSW_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::LockGuard).
#define SCOPED_CAPABILITY HSW_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define GUARDED_BY(x) HSW_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself is
/// not).
#define PT_GUARDED_BY(x) HSW_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the given capabilities.
#define REQUIRES(...) HSW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function may only be called while holding the capabilities *shared*.
#define REQUIRES_SHARED(...) \
    HSW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define ACQUIRE(...) HSW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capabilities *shared* (reader side of a
/// reader-writer lock) and holds them on return.
#define ACQUIRE_SHARED(...) \
    HSW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases capabilities the caller held on entry.
#define RELEASE(...) HSW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases capabilities the caller held *shared* on entry.
#define RELEASE_SHARED(...) \
    HSW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `b`.
#define TRY_ACQUIRE(b, ...) \
    HSW_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function may only be called while the capabilities are NOT held
/// (deadlock guard for public entry points of self-locking types).
#define EXCLUDES(...) HSW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) HSW_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the declaration's attributes still apply at call sites,
/// but the body is not analyzed. Used inside the util::sync wrappers whose
/// conditional lock ownership the analysis cannot follow.
#define NO_THREAD_SAFETY_ANALYSIS HSW_THREAD_ANNOTATION(no_thread_safety_analysis)
