// Deterministic random number generation.
//
// All stochastic behaviour in the simulator (measurement noise, silicon
// variation, PCU grid phase) is drawn from Xoshiro256** streams seeded via
// SplitMix64, so a node constructed with the same seed replays exactly.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace hsw::util {

/// SplitMix64: used only to expand a user seed into Xoshiro state.
class SplitMix64 {
public:
    constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna; fast, high-quality, 2^256-1 period.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) {
        SplitMix64 sm{seed};
        for (auto& s : s_) s = sm.next();
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).
    std::uint64_t uniform_u64(std::uint64_t n) {
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next_u64();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto l = static_cast<std::uint64_t>(m);
        if (l < n) {
            const std::uint64_t t = (0 - n) % n;
            while (l < t) {
                x = next_u64();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Standard normal via Box-Muller (caches the second deviate).
    double normal() {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = uniform();
        while (u1 <= 0.0) u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * std::numbers::pi * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// Derive a seed for an independent stream from `base` and a textual
    /// label (SplitMix finalization over an FNV-1a label hash). Unlike the
    /// ad-hoc `seed + k` / `seed * prime` arithmetic this replaces, nearby
    /// base seeds and similar labels still land in unrelated streams, and
    /// the derivation is pure: it does not advance any generator state.
    [[nodiscard]] static constexpr std::uint64_t derive(std::uint64_t base,
                                                        std::string_view label) {
        std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
        for (const char c : label) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;  // FNV prime
        }
        SplitMix64 sm{base ^ h};
        sm.next();
        return sm.next();
    }

    /// Labeled child stream without disturbing this generator (pure; the
    /// same label always yields the same child for the same parent seed).
    [[nodiscard]] Rng split(std::string_view label) const {
        return Rng{derive(s_[0] ^ s_[2], label)};
    }

    /// Derive an independent child stream (for per-core/per-socket noise).
    [[nodiscard]] Rng fork(std::uint64_t stream_id) {
        SplitMix64 sm{next_u64() ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1))};
        Rng child{0};
        for (auto& s : child.s_) s = sm.next();
        return child;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s_{};
    double cached_ = 0.0;
    bool have_cached_ = false;
};

}  // namespace hsw::util
