// Small non-cryptographic hashing helpers for placement and sharding.
//
// The survey fleet's consistent-hash ring needs a fast, stable 64-bit
// hash whose value never changes across platforms or standard-library
// versions (std::hash gives no such guarantee, and ring placement is
// effectively an on-disk format once a fleet is deployed: moving a
// virtual node moves cached keys between shards). FNV-1a is stable and
// trivially portable; the splitmix64 finalizer fixes its weak avalanche
// on short inputs so ring points spread uniformly.
#pragma once

#include <cstdint>
#include <string_view>

namespace hsw::util {

/// FNV-1a over bytes; stable across platforms and releases.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Placement hash used for ring points and key lookup: FNV-1a mixed
/// through splitmix64 so short keys (host:port#vnode) avalanche fully.
[[nodiscard]] constexpr std::uint64_t placement_hash(std::string_view bytes) noexcept {
    return mix64(fnv1a64(bytes));
}

}  // namespace hsw::util
