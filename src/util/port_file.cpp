#include "util/port_file.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

namespace hsw::util {

bool write_port_file(const std::string& path, std::uint16_t port) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f) return false;
    const bool wrote = std::fprintf(f, "%u\n", static_cast<unsigned>(port)) > 0;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<std::uint16_t> read_port_file(const std::string& path,
                                            std::chrono::milliseconds timeout) {
    const auto poll = std::chrono::milliseconds{20};
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
        {
            std::ifstream in{path};
            unsigned long port = 0;
            if (in && (in >> port) && port > 0 && port <= 65535) {
                return static_cast<std::uint16_t>(port);
            }
        }
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        std::this_thread::sleep_for(poll);
    }
}

void remove_port_file(const std::string& path) { std::remove(path.c_str()); }

}  // namespace hsw::util
