#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hsw::util {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
    if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
    return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
    if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
    return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= v.size()) return v.back();
    return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

namespace {

double sorted_quantile(const std::vector<double>& v, double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= v.size()) return v.back();
    return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

}  // namespace

QuantileSummary quantile_summary(std::span<const double> xs) {
    QuantileSummary s;
    if (xs.empty()) return s;
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    s.p50 = sorted_quantile(v, 0.50);
    s.p90 = sorted_quantile(v, 0.90);
    s.p99 = sorted_quantile(v, 0.99);
    s.p999 = sorted_quantile(v, 0.999);
    return s;
}

namespace {

// Two-sided Student's t critical values for common confidence levels.
// Rows are degrees of freedom; beyond the table we use the normal limit.
double t_critical(std::size_t dof, double level) {
    struct Entry { std::size_t dof; double t95; double t99; };
    static constexpr Entry table[] = {
        {1, 12.706, 63.657}, {2, 4.303, 9.925},  {3, 3.182, 5.841},
        {4, 2.776, 4.604},   {5, 2.571, 4.032},  {6, 2.447, 3.707},
        {7, 2.365, 3.499},   {8, 2.306, 3.355},  {9, 2.262, 3.250},
        {10, 2.228, 3.169},  {12, 2.179, 3.055}, {15, 2.131, 2.947},
        {20, 2.086, 2.845},  {25, 2.060, 2.787}, {30, 2.042, 2.750},
        {40, 2.021, 2.704},  {60, 2.000, 2.660}, {120, 1.980, 2.617},
    };
    const bool want99 = level > 0.97;
    double result = want99 ? 2.576 : 1.960;  // normal limit
    for (const auto& e : table) {
        if (dof <= e.dof) {
            result = want99 ? e.t99 : e.t95;
            break;
        }
    }
    return result;
}

}  // namespace

double confidence_halfwidth(std::span<const double> xs, double level) {
    if (xs.size() < 2) return 0.0;
    const double se = stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
    return t_critical(xs.size() - 1, level) * se;
}

namespace {

double r_squared_of(std::span<const double> x, std::span<const double> y,
                    auto&& predict) {
    const double my = mean(y);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double e = y[i] - predict(x[i]);
        ss_res += e * e;
        ss_tot += (y[i] - my) * (y[i] - my);
    }
    if (ss_tot == 0.0) return 1.0;
    return 1.0 - ss_res / ss_tot;
}

}  // namespace

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
    if (x.size() != y.size() || x.size() < 2) {
        throw std::invalid_argument{"fit_linear: need >= 2 equally sized samples"};
    }
    const double mx = mean(x);
    const double my = mean(y);
    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
    }
    LinearFit f;
    f.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
    f.intercept = my - f.slope * mx;
    f.r_squared = r_squared_of(x, y, [&](double v) { return f.slope * v + f.intercept; });
    return f;
}

QuadraticFit fit_quadratic(std::span<const double> x, std::span<const double> y) {
    if (x.size() != y.size() || x.size() < 3) {
        throw std::invalid_argument{"fit_quadratic: need >= 3 equally sized samples"};
    }
    // Normal equations for [a b c] with moments up to x^4.
    double s0 = static_cast<double>(x.size());
    double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    double t0 = 0, t1 = 0, t2 = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double xi = x[i];
        const double xi2 = xi * xi;
        s1 += xi; s2 += xi2; s3 += xi2 * xi; s4 += xi2 * xi2;
        t0 += y[i]; t1 += y[i] * xi; t2 += y[i] * xi2;
    }
    // Solve the symmetric 3x3 system via Cramer's rule:
    //  [s4 s3 s2][a]   [t2]
    //  [s3 s2 s1][b] = [t1]
    //  [s2 s1 s0][c]   [t0]
    const double det = s4 * (s2 * s0 - s1 * s1) - s3 * (s3 * s0 - s1 * s2) +
                       s2 * (s3 * s1 - s2 * s2);
    QuadraticFit f;
    if (det != 0.0) {
        f.a = (t2 * (s2 * s0 - s1 * s1) - s3 * (t1 * s0 - t0 * s1) +
               s2 * (t1 * s1 - t0 * s2)) / det;
        f.b = (s4 * (t1 * s0 - t0 * s1) - t2 * (s3 * s0 - s1 * s2) +
               s2 * (s3 * t0 - t1 * s2)) / det;
        f.c = (s4 * (s2 * t0 - t1 * s1) - s3 * (s3 * t0 - t1 * s2) +
               t2 * (s3 * s1 - s2 * s2)) / det;
    }
    f.r_squared = r_squared_of(x, y, [&](double v) { return (f.a * v + f.b) * v + f.c; });
    return f;
}

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

WindowAverage best_window(std::span<const double> times,
                          std::span<const double> values,
                          double window_length) {
    assert(times.size() == values.size());
    WindowAverage best;
    if (times.empty()) return best;
    best.average = -std::numeric_limits<double>::infinity();
    std::size_t lo = 0;
    double sum = 0.0;
    for (std::size_t hi = 0; hi < times.size(); ++hi) {
        sum += values[hi];
        while (times[hi] - times[lo] > window_length) {
            sum -= values[lo];
            ++lo;
        }
        const double avg = sum / static_cast<double>(hi - lo + 1);
        if (avg > best.average) {
            best.average = avg;
            best.start_time = times[lo];
        }
    }
    return best;
}

}  // namespace hsw::util
