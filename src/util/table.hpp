// ASCII table rendering for the paper-style result tables printed by the
// bench harnesses (Tables I-V).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace hsw::util {

class Table {
public:
    explicit Table(std::string title = {});

    /// The header row. Must be set before any data row.
    void set_header(std::vector<std::string> columns);

    /// Append a data row; shorter rows are padded with empty cells.
    void add_row(std::vector<std::string> cells);

    /// Insert a horizontal separator before the next row.
    void add_separator();

    /// Convenience: format a double with the given precision.
    [[nodiscard]] static std::string fmt(double v, int precision = 2);

    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    struct Row {
        std::vector<std::string> cells;
        bool separator_before = false;
    };
    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
    bool pending_separator_ = false;
};

}  // namespace hsw::util
