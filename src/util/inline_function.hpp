// Small-buffer-optimized move-only callable wrapper.
//
// InlineFunction<R(Args...), N> stores any callable whose (decayed) capture
// state fits into N bytes directly inside the wrapper -- no heap allocation
// on construction, move, or invocation. Larger or over-aligned callables
// fall back to a single heap allocation, and every fallback is counted in a
// process-wide tally (`inline_function_heap_allocations()`) so tests can
// assert that a hot path stayed allocation-free.
//
// This is the event-callback type of the simulation core: scheduling an
// event must not allocate, because the simulator dispatches millions of
// events per simulated second and the old std::function-based queue spent
// most of its time in the allocator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hsw::util {

namespace detail {
inline std::atomic<std::uint64_t> g_inline_function_heap_allocs{0};
}  // namespace detail

/// Process-wide count of InlineFunction constructions that fell back to the
/// heap. Test hook: capture before/after a steady-state region and assert
/// the delta is zero.
inline std::uint64_t inline_function_heap_allocations() {
    return detail::g_inline_function_heap_allocs.load(std::memory_order_relaxed);
}

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
public:
    static constexpr std::size_t inline_capacity = InlineBytes;

    /// True when a callable of type F (after decay) is stored in the inline
    /// buffer rather than on the heap. Exposed so call sites can
    /// static_assert that a hot-path lambda stays within budget.
    template <typename F>
    static constexpr bool fits_inline =
        sizeof(std::decay_t<F>) <= InlineBytes &&
        alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<std::decay_t<F>>;

    InlineFunction() = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
                 std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
    InlineFunction(F&& f) {  // NOLINT(*-explicit-*): mirrors std::function
        construct(std::forward<F>(f));
    }

    InlineFunction(InlineFunction&& other) noexcept { move_from(std::move(other)); }

    InlineFunction& operator=(InlineFunction&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(std::move(other));
        }
        return *this;
    }

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
                 std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
    InlineFunction& operator=(F&& f) {
        reset();
        construct(std::forward<F>(f));
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    void reset() {
        if (vtable_ != nullptr) {
            vtable_->destroy(&storage_);
            vtable_ = nullptr;
        }
    }

    [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

    /// True when the held callable lives in the inline buffer (always true
    /// for an empty wrapper -- there is nothing on the heap either way).
    [[nodiscard]] bool is_inline() const { return vtable_ == nullptr || !vtable_->heap; }

    R operator()(Args... args) {
        if (vtable_ == nullptr) throw std::bad_function_call{};
        return vtable_->invoke(&storage_, std::forward<Args>(args)...);
    }

private:
    struct VTable {
        R (*invoke)(void*, Args&&...);
        void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
        void (*destroy)(void*);
        bool heap;
    };

    template <typename F>
    void construct(F&& f) {
        using Fn = std::decay_t<F>;
        if constexpr (fits_inline<Fn>) {
            ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
            static constexpr VTable vt{
                [](void* s, Args&&... args) -> R {
                    return std::invoke(*static_cast<Fn*>(s), std::forward<Args>(args)...);
                },
                [](void* dst, void* src) {
                    auto* from = static_cast<Fn*>(src);
                    ::new (dst) Fn(std::move(*from));
                    from->~Fn();
                },
                [](void* s) { static_cast<Fn*>(s)->~Fn(); },
                /*heap=*/false,
            };
            vtable_ = &vt;
        } else {
            detail::g_inline_function_heap_allocs.fetch_add(1, std::memory_order_relaxed);
            ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
            static constexpr VTable vt{
                [](void* s, Args&&... args) -> R {
                    return std::invoke(**static_cast<Fn**>(s), std::forward<Args>(args)...);
                },
                [](void* dst, void* src) {
                    auto* from = static_cast<Fn**>(src);
                    ::new (dst) Fn*(*from);  // steal the pointer, no reallocation
                    *from = nullptr;
                },
                [](void* s) { delete *static_cast<Fn**>(s); },
                /*heap=*/true,
            };
            vtable_ = &vt;
        }
    }

    void move_from(InlineFunction&& other) noexcept {
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
            vtable_->relocate(&storage_, &other.storage_);
            other.vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage_[InlineBytes];
    const VTable* vtable_ = nullptr;
};

}  // namespace hsw::util
