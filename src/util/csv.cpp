#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace hsw::util {

CsvWriter::CsvWriter(const std::string& path) : out_{path} {
    if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string s = "\"";
    for (char ch : cell) {
        if (ch == '"') s += '"';
        s += ch;
    }
    s += '"';
    return s;
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
    write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
    char buf[64];
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out_ << ',';
        std::snprintf(buf, sizeof buf, "%.*g", precision, values[i]);
        out_ << buf;
    }
    out_ << '\n';
}

}  // namespace hsw::util
