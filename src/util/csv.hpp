// Minimal CSV writer for figure series (the bench harnesses can dump the
// exact data behind each paper figure for external plotting).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hsw::util {

class CsvWriter {
public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);

    void write_header(const std::vector<std::string>& columns);
    void write_row(const std::vector<std::string>& cells);
    void write_row(const std::vector<double>& values, int precision = 6);

    [[nodiscard]] static std::string escape(const std::string& cell);

private:
    std::ofstream out_;
};

}  // namespace hsw::util
