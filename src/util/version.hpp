// Build/version identity shared across layers.
//
// kEngineCodeVersion is the salt the engine's content-addressed result
// cache folds into every key: bump it whenever a code change alters
// numerical output so stale cache entries can never satisfy new queries.
// It lives here (not in engine/) so the bench reporter can stamp the same
// string into BENCH_*.json metadata without a layering inversion.
#pragma once

#include <string_view>

namespace hsw::util {

inline constexpr std::string_view kEngineCodeVersion = "hsw-engine-v1";

/// Build flavor baked in at configure time ("release", "asan", "tsan",
/// or the lower-cased CMAKE_BUILD_TYPE for ad-hoc configurations).
[[nodiscard]] std::string_view build_preset();

}  // namespace hsw::util
