// Strong-typed physical units used throughout the simulator.
//
// Time is an integer nanosecond count so that event ordering is exact and
// replayable; the analog quantities (frequency, voltage, power, energy) are
// doubles wrapped in distinct types so that a watt can never be passed where
// a volt is expected.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace hsw::util {

/// Simulation time: signed 64-bit nanoseconds (covers ~292 years).
class Time {
public:
    constexpr Time() = default;

    [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
    [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1000}; }
    [[nodiscard]] static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
    [[nodiscard]] static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }
    /// Construct from a floating-point second count (rounded to the nearest
    /// ns). Values beyond the int64 nanosecond range saturate to max()/min()
    /// instead of hitting the undefined float-to-int conversion; NaN maps
    /// to zero().
    [[nodiscard]] static constexpr Time from_seconds(double s) {
        constexpr double kSaturationNs = 9223372036854775808.0;  // 2^63
        const double ns = s * 1e9;
        if (ns != ns) return zero();  // NaN
        if (ns >= kSaturationNs) return max();
        if (ns <= -kSaturationNs) return min();
        return Time{static_cast<std::int64_t>(ns + (ns >= 0 ? 0.5 : -0.5))};
    }
    [[nodiscard]] static constexpr Time from_us(double us) { return from_seconds(us * 1e-6); }
    [[nodiscard]] static constexpr Time max() {
        return Time{std::numeric_limits<std::int64_t>::max()};
    }
    [[nodiscard]] static constexpr Time min() {
        return Time{std::numeric_limits<std::int64_t>::min()};
    }
    [[nodiscard]] static constexpr Time zero() { return Time{0}; }

    [[nodiscard]] constexpr std::int64_t as_ns() const { return ns_; }
    [[nodiscard]] constexpr double as_us() const { return static_cast<double>(ns_) * 1e-3; }
    [[nodiscard]] constexpr double as_ms() const { return static_cast<double>(ns_) * 1e-6; }
    [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) * 1e-9; }

    constexpr auto operator<=>(const Time&) const = default;
    constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
    constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }
    friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
    friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
    friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
    friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
    friend constexpr std::int64_t operator/(Time a, Time b) { return a.ns_ / b.ns_; }
    friend constexpr Time operator%(Time a, Time b) { return Time{a.ns_ % b.ns_}; }

private:
    constexpr explicit Time(std::int64_t v) : ns_{v} {}
    std::int64_t ns_ = 0;
};

/// Clock frequency in Hz. P-state ratios on real hardware are multiples of
/// the 100 MHz BCLK; `from_ratio` mirrors that encoding.
class Frequency {
public:
    constexpr Frequency() = default;

    [[nodiscard]] static constexpr Frequency hz(double v) { return Frequency{v}; }
    [[nodiscard]] static constexpr Frequency mhz(double v) { return Frequency{v * 1e6}; }
    [[nodiscard]] static constexpr Frequency ghz(double v) { return Frequency{v * 1e9}; }
    /// BCLK multiple (12 -> 1.2 GHz), the encoding used in IA32_PERF_CTL.
    [[nodiscard]] static constexpr Frequency from_ratio(unsigned ratio) {
        return Frequency{static_cast<double>(ratio) * 100e6};
    }
    [[nodiscard]] static constexpr Frequency zero() { return Frequency{0.0}; }

    [[nodiscard]] constexpr double as_hz() const { return hz_; }
    [[nodiscard]] constexpr double as_mhz() const { return hz_ * 1e-6; }
    [[nodiscard]] constexpr double as_ghz() const { return hz_ * 1e-9; }
    /// Nearest BCLK multiple, as written to IA32_PERF_CTL[15:8].
    [[nodiscard]] constexpr unsigned ratio() const {
        return static_cast<unsigned>(hz_ / 100e6 + 0.5);
    }
    /// Cycles elapsed over `t` at this frequency.
    [[nodiscard]] constexpr double cycles_in(Time t) const { return hz_ * t.as_seconds(); }

    constexpr auto operator<=>(const Frequency&) const = default;
    friend constexpr Frequency operator+(Frequency a, Frequency b) { return Frequency{a.hz_ + b.hz_}; }
    friend constexpr Frequency operator-(Frequency a, Frequency b) { return Frequency{a.hz_ - b.hz_}; }
    friend constexpr Frequency operator*(Frequency a, double k) { return Frequency{a.hz_ * k}; }
    friend constexpr Frequency operator*(double k, Frequency a) { return Frequency{a.hz_ * k}; }
    friend constexpr double operator/(Frequency a, Frequency b) { return a.hz_ / b.hz_; }

private:
    constexpr explicit Frequency(double v) : hz_{v} {}
    double hz_ = 0.0;
};

class Voltage {
public:
    constexpr Voltage() = default;
    [[nodiscard]] static constexpr Voltage volts(double v) { return Voltage{v}; }
    [[nodiscard]] static constexpr Voltage millivolts(double v) { return Voltage{v * 1e-3}; }
    [[nodiscard]] constexpr double as_volts() const { return v_; }
    [[nodiscard]] constexpr double as_millivolts() const { return v_ * 1e3; }
    constexpr auto operator<=>(const Voltage&) const = default;
    friend constexpr Voltage operator+(Voltage a, Voltage b) { return Voltage{a.v_ + b.v_}; }
    friend constexpr Voltage operator-(Voltage a, Voltage b) { return Voltage{a.v_ - b.v_}; }
    friend constexpr Voltage operator*(Voltage a, double k) { return Voltage{a.v_ * k}; }
    friend constexpr Voltage operator*(double k, Voltage a) { return Voltage{a.v_ * k}; }
private:
    constexpr explicit Voltage(double v) : v_{v} {}
    double v_ = 0.0;
};

class Energy;

class Power {
public:
    constexpr Power() = default;
    [[nodiscard]] static constexpr Power watts(double v) { return Power{v}; }
    [[nodiscard]] static constexpr Power milliwatts(double v) { return Power{v * 1e-3}; }
    [[nodiscard]] static constexpr Power zero() { return Power{0.0}; }
    [[nodiscard]] constexpr double as_watts() const { return w_; }
    constexpr auto operator<=>(const Power&) const = default;
    friend constexpr Power operator+(Power a, Power b) { return Power{a.w_ + b.w_}; }
    friend constexpr Power operator-(Power a, Power b) { return Power{a.w_ - b.w_}; }
    friend constexpr Power operator*(Power a, double k) { return Power{a.w_ * k}; }
    friend constexpr Power operator*(double k, Power a) { return Power{a.w_ * k}; }
    friend constexpr double operator/(Power a, Power b) { return a.w_ / b.w_; }
    constexpr Power& operator+=(Power o) { w_ += o.w_; return *this; }
    friend constexpr Energy operator*(Power p, Time t);
private:
    constexpr explicit Power(double v) : w_{v} {}
    double w_ = 0.0;
};

class Energy {
public:
    constexpr Energy() = default;
    [[nodiscard]] static constexpr Energy joules(double v) { return Energy{v}; }
    [[nodiscard]] static constexpr Energy microjoules(double v) { return Energy{v * 1e-6}; }
    [[nodiscard]] static constexpr Energy zero() { return Energy{0.0}; }
    [[nodiscard]] constexpr double as_joules() const { return j_; }
    [[nodiscard]] constexpr double as_microjoules() const { return j_ * 1e6; }
    constexpr auto operator<=>(const Energy&) const = default;
    friend constexpr Energy operator+(Energy a, Energy b) { return Energy{a.j_ + b.j_}; }
    friend constexpr Energy operator-(Energy a, Energy b) { return Energy{a.j_ - b.j_}; }
    friend constexpr Energy operator*(Energy a, double k) { return Energy{a.j_ * k}; }
    constexpr Energy& operator+=(Energy o) { j_ += o.j_; return *this; }
    /// Average power over an interval.
    [[nodiscard]] constexpr Power over(Time t) const { return Power::watts(j_ / t.as_seconds()); }
private:
    constexpr explicit Energy(double v) : j_{v} {}
    double j_ = 0.0;
};

constexpr Energy operator*(Power p, Time t) { return Energy::joules(p.w_ * t.as_seconds()); }
constexpr Energy operator*(Time t, Power p) { return p * t; }

/// Data rate in bytes/second (memory bandwidth).
class Bandwidth {
public:
    constexpr Bandwidth() = default;
    [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
    [[nodiscard]] static constexpr Bandwidth gib_per_sec(double v) {
        return Bandwidth{v * 1024.0 * 1024.0 * 1024.0};
    }
    [[nodiscard]] static constexpr Bandwidth gb_per_sec(double v) { return Bandwidth{v * 1e9}; }
    [[nodiscard]] constexpr double as_bytes_per_sec() const { return bps_; }
    [[nodiscard]] constexpr double as_gb_per_sec() const { return bps_ * 1e-9; }
    constexpr auto operator<=>(const Bandwidth&) const = default;
    friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ + b.bps_}; }
    friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }
    friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }
private:
    constexpr explicit Bandwidth(double v) : bps_{v} {}
    double bps_ = 0.0;
};

}  // namespace hsw::util
