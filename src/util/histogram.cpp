#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/stats.hpp"

namespace hsw::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, bin_width_{(hi - lo) / static_cast<double>(bins)},
      counts_(bins, 0) {
    if (bins == 0 || hi <= lo) {
        throw std::invalid_argument{"Histogram: need bins > 0 and hi > lo"};
    }
}

void Histogram::add(double x) {
    samples_.push_back(x);
    ++total_;
    std::size_t bin;
    if (x < lo_) {
        ++underflow_;
        bin = 0;
    } else if (x >= hi_) {
        ++overflow_;
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>((x - lo_) / bin_width_);
        bin = std::min(bin, counts_.size() - 1);
    }
    ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) {
    for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
    return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

double Histogram::bin_center(std::size_t bin) const {
    return bin_lo(bin) + 0.5 * bin_width_;
}

std::size_t Histogram::mode_bin() const {
    return static_cast<std::size_t>(
        std::distance(counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
}

double Histogram::fraction_in(double lo, double hi) const {
    if (samples_.empty()) return 0.0;
    std::size_t n = 0;
    for (double x : samples_) {
        if (x >= lo && x < hi) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
}

double Histogram::quantile(double q) const {
    if (samples_.empty()) return 0.0;
    return util::quantile(samples_, q);
}

std::string Histogram::render(std::size_t width) const {
    std::string out;
    const std::size_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double scale = peak == 0 ? 0.0
                                       : static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak);
        const auto bar_len = static_cast<std::size_t>(scale * static_cast<double>(width));
        std::snprintf(line, sizeof line, "[%8.1f, %8.1f) %6zu |", bin_lo(i), bin_hi(i),
                      counts_[i]);
        out += line;
        out.append(bar_len, '#');
        out += '\n';
    }
    return out;
}

}  // namespace hsw::util
