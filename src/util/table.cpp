#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace hsw::util {

Table::Table(std::string title) : title_{std::move(title)} {}

void Table::set_header(std::vector<std::string> columns) { header_ = std::move(columns); }

void Table::add_row(std::vector<std::string> cells) {
    rows_.push_back(Row{std::move(cells), pending_separator_});
    pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::fmt(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string Table::render() const {
    // Compute column widths over header + all rows.
    std::size_t ncols = header_.size();
    for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
    std::vector<std::size_t> widths(ncols, 0);
    auto widen = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r.cells);

    auto hline = [&] {
        std::string s = "+";
        for (auto w : widths) s += std::string(w + 2, '-') + "+";
        s += '\n';
        return s;
    };
    auto render_row = [&](const std::vector<std::string>& cells) {
        std::string s = "|";
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string& c = i < cells.size() ? cells[i] : std::string{};
            s += " " + c + std::string(widths[i] - c.size(), ' ') + " |";
        }
        s += '\n';
        return s;
    };

    std::string out;
    if (!title_.empty()) out += title_ + "\n";
    out += hline();
    if (!header_.empty()) {
        out += render_row(header_);
        out += hline();
    }
    for (const auto& r : rows_) {
        if (r.separator_before) out += hline();
        out += render_row(r.cells);
    }
    out += hline();
    return out;
}

}  // namespace hsw::util
