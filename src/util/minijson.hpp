// Minimal strict JSON parser (RFC 8259 subset: no comments, no trailing
// commas). Used by hsw_top to decode the metrics verb's JSON payload and
// by the observability tests to validate Chrome trace-event output.
//
// Objects are std::map-backed so iteration order is deterministic; the
// parser keeps numbers as double, which is exact for the integer counter
// values the telemetry layer emits (< 2^53).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hsw::util::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
public:
    Value() : v_(nullptr) {}
    explicit Value(std::nullptr_t) : v_(nullptr) {}
    explicit Value(bool b) : v_(b) {}
    explicit Value(double d) : v_(d) {}
    explicit Value(std::string s) : v_(std::move(s)) {}
    explicit Value(Array a) : v_(std::move(a)) {}
    explicit Value(Object o) : v_(std::move(o)) {}

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
    [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
    [[nodiscard]] double as_number() const { return std::get<double>(v_); }
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
    [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
    [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }

    /// Object member lookup; nullptr when this is not an object or the key
    /// is absent.
    [[nodiscard]] const Value* find(std::string_view key) const;

    /// this[key] interpreted as a number; `fallback` when missing or not
    /// numeric.
    [[nodiscard]] double number_or(std::string_view key, double fallback) const;

private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). On failure returns nullopt and, when `error` is
/// non-null, stores a human-readable reason with a byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace hsw::util::json
