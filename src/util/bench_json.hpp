// Machine-readable bench results.
//
// Every bench binary in bench/ reports through this writer so the repo's
// BENCH_*.json trajectory files share one schema:
//
//   {
//     "bench": "<binary name>",
//     "meta":  { "quick": true, ... },          // run-wide settings
//     "runs":  [ { "scenario": "...", ... } ]   // one object per sweep point
//   }
//
// Values are strings, bools, or numbers (formatted with enough digits to
// round-trip a double). Keys keep insertion order, so diffs between two
// BENCH files line up row by row. Use `parse_json_flag` to wire the shared
// `--json <path>` command-line flag.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsw::util {

class BenchJson {
public:
    class Object {
    public:
        Object& set(std::string_view key, std::string_view value);
        Object& set(std::string_view key, const char* value);
        Object& set(std::string_view key, double value);
        Object& set(std::string_view key, std::uint64_t value);
        Object& set(std::string_view key, unsigned value);
        Object& set(std::string_view key, bool value);

    private:
        friend class BenchJson;
        void append_raw(std::string_view key, std::string raw);
        std::vector<std::pair<std::string, std::string>> fields_;  // key -> raw JSON
    };

    /// Every report starts with two provenance keys in "meta":
    /// "code_version" (the engine's result-cache salt) and "build_preset"
    /// (release/asan/tsan), so a BENCH file can never be mistaken for a
    /// different code revision or build flavor.
    explicit BenchJson(std::string_view bench_name);

    /// Run-wide metadata ("quick", "requests", ...).
    Object& meta() { return meta_; }

    /// Appends one sweep-point object to the "runs" array.
    Object& add_run();

    [[nodiscard]] std::string to_string() const;

    /// Writes to_string() to `path`. Returns false (and prints to stderr)
    /// when the file cannot be written.
    bool write(const std::string& path) const;

private:
    std::string bench_;
    Object meta_;
    std::vector<Object> runs_;
};

/// Consumes a `--json <path>` argument pair at argv[i]. Returns true and
/// advances `i` past the value when matched; `out` receives the path.
bool parse_json_flag(int argc, char** argv, int& i, std::string& out);

}  // namespace hsw::util
