#include "util/bench_json.hpp"

#include <cstdio>
#include <cstring>

#include "util/version.hpp"

namespace hsw::util {

namespace {

std::string quoted(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string number(double v) {
    char buf[40];
    // %.17g round-trips any double but litters short values with noise
    // digits; %.10g is exact for every value a bench reports (counters and
    // millisecond timings) while keeping the files diffable.
    std::snprintf(buf, sizeof buf, "%.10g", v);
    // JSON has no inf/nan literals.
    if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
        return "null";
    }
    return buf;
}

void render_object(const std::vector<std::pair<std::string, std::string>>& fields,
                   std::string& out, const char* indent) {
    out += '{';
    bool first = true;
    for (const auto& [key, raw] : fields) {
        if (!first) out += ',';
        first = false;
        out += '\n';
        out += indent;
        out += quoted(key);
        out += ": ";
        out += raw;
    }
    out += '\n';
    out.append(indent, std::strlen(indent) >= 2 ? std::strlen(indent) - 2 : 0);
    out += '}';
}

}  // namespace

void BenchJson::Object::append_raw(std::string_view key, std::string raw) {
    for (auto& [k, v] : fields_) {
        if (k == key) {
            v = std::move(raw);
            return;
        }
    }
    fields_.emplace_back(std::string{key}, std::move(raw));
}

BenchJson::Object& BenchJson::Object::set(std::string_view key, std::string_view value) {
    append_raw(key, quoted(value));
    return *this;
}

BenchJson::Object& BenchJson::Object::set(std::string_view key, const char* value) {
    return set(key, std::string_view{value});
}

BenchJson::Object& BenchJson::Object::set(std::string_view key, double value) {
    append_raw(key, number(value));
    return *this;
}

BenchJson::Object& BenchJson::Object::set(std::string_view key, std::uint64_t value) {
    append_raw(key, std::to_string(value));
    return *this;
}

BenchJson::Object& BenchJson::Object::set(std::string_view key, unsigned value) {
    append_raw(key, std::to_string(value));
    return *this;
}

BenchJson::Object& BenchJson::Object::set(std::string_view key, bool value) {
    append_raw(key, value ? "true" : "false");
    return *this;
}

BenchJson::BenchJson(std::string_view bench_name) : bench_{bench_name} {
    meta_.set("code_version", kEngineCodeVersion);
    meta_.set("build_preset", build_preset());
}

BenchJson::Object& BenchJson::add_run() {
    runs_.emplace_back();
    return runs_.back();
}

std::string BenchJson::to_string() const {
    std::string out = "{\n  \"bench\": " + quoted(bench_) + ",\n  \"meta\": ";
    render_object(meta_.fields_, out, "    ");
    out += ",\n  \"runs\": [";
    bool first = true;
    for (const auto& run : runs_) {
        if (!first) out += ',';
        first = false;
        out += "\n    ";
        render_object(run.fields_, out, "      ");
    }
    out += "\n  ]\n}\n";
    return out;
}

bool BenchJson::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
        return false;
    }
    const std::string text = to_string();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

bool parse_json_flag(int argc, char** argv, int& i, std::string& out) {
    if (std::strcmp(argv[i], "--json") != 0) return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json needs a path\n", argv[0]);
        std::exit(2);
    }
    out = argv[++i];
    return true;
}

}  // namespace hsw::util
