#include "util/minijson.hpp"

#include <cstdlib>
#include <utility>

namespace hsw::util::json {

const Value* Value::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    const Object& obj = as_object();
    const auto it = obj.find(std::string{key});
    return it == obj.end() ? nullptr : &it->second;
}

double Value::number_or(std::string_view key, double fallback) const {
    const Value* member = find(key);
    return member && member->is_number() ? member->as_number() : fallback;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

// Out-parameter style throughout: each parse_* returns false on error and
// fills `out` on success, keeping one Value alive per nesting level.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Value> run(std::string* error) {
        Value root;
        bool ok = parse_value(root, 0);
        if (ok) {
            skip_ws();
            if (pos_ != text_.size()) {
                ok = false;
                fail("trailing garbage");
            }
        }
        if (!ok) {
            if (error) *error = error_ + " at byte " + std::to_string(pos_);
            return std::nullopt;
        }
        return root;
    }

private:
    void fail(const char* why) {
        if (error_.empty()) error_ = why;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume(char want) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == want) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consume_literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool parse_value(Value& out, std::size_t depth) {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return false;
        }
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
            case '{': return parse_object(out, depth);
            case '[': return parse_array(out, depth);
            case '"': {
                std::string s;
                if (!parse_string(s)) return false;
                out = Value{std::move(s)};
                return true;
            }
            case 't':
                if (consume_literal("true")) {
                    out = Value{true};
                    return true;
                }
                break;
            case 'f':
                if (consume_literal("false")) {
                    out = Value{false};
                    return true;
                }
                break;
            case 'n':
                if (consume_literal("null")) {
                    out = Value{nullptr};
                    return true;
                }
                break;
            default: return parse_number(out);
        }
        fail("unexpected token");
        return false;
    }

    bool parse_object(Value& out, std::size_t depth) {
        ++pos_;  // '{'
        Object obj;
        skip_ws();
        if (consume('}')) {
            out = Value{std::move(obj)};
            return true;
        }
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parse_string(key)) return false;
            if (!consume(':')) {
                fail("expected ':'");
                return false;
            }
            Value member;
            if (!parse_value(member, depth + 1)) return false;
            obj.insert_or_assign(std::move(key), std::move(member));
            if (consume(',')) continue;
            if (consume('}')) {
                out = Value{std::move(obj)};
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    bool parse_array(Value& out, std::size_t depth) {
        ++pos_;  // '['
        Array arr;
        skip_ws();
        if (consume(']')) {
            out = Value{std::move(arr)};
            return true;
        }
        while (true) {
            Value element;
            if (!parse_value(element, depth + 1)) return false;
            arr.push_back(std::move(element));
            if (consume(',')) continue;
            if (consume(']')) {
                out = Value{std::move(arr)};
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size()) break;
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + static_cast<std::size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape");
                            return false;
                        }
                    }
                    pos_ += 4;
                    // BMP-only UTF-8 encoding; surrogate pairs are kept as
                    // two 3-byte sequences, fine for validation purposes.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    fail("bad escape character");
                    return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool parse_number(Value& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        const auto digits = [&] {
            const std::size_t before = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
            return pos_ > before;
        };
        if (!digits()) {
            fail("bad number");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits()) {
                fail("bad number");
                return false;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (!digits()) {
                fail("bad number");
                return false;
            }
        }
        const std::string token{text_.substr(start, pos_ - start)};
        out = Value{std::strtod(token.c_str(), nullptr)};
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
    return Parser{text}.run(error);
}

}  // namespace hsw::util::json
