// Port-file publish/subscribe between a daemon and its launchers.
//
// A daemon bound to port 0 learns its real port only after listen(); the
// launcher (hsw_fleet, CI scripts, hsw_query --port-file) discovers it by
// polling a small file. Publication is atomic -- write to `path.tmp`,
// then rename over `path`, the same idiom ResultCache uses for payload
// stores -- so a reader never observes a half-written number. The daemon
// removes the file on graceful shutdown so a relauncher never connects to
// a stale port owned by a dead (or worse, unrelated) process.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace hsw::util {

/// Atomically publish `port` to `path` (tmp + rename). Returns false if
/// the temp file cannot be written or the rename fails.
bool write_port_file(const std::string& path, std::uint16_t port);

/// Poll `path` until it contains a valid port (1..65535) or `timeout`
/// elapses. Polls every 20 ms; returns nullopt on timeout.
std::optional<std::uint16_t> read_port_file(
    const std::string& path,
    std::chrono::milliseconds timeout = std::chrono::milliseconds{5000});

/// Remove a published port file; missing files are not an error.
void remove_port_file(const std::string& path);

}  // namespace hsw::util
