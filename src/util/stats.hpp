// Descriptive statistics, confidence intervals, and least-squares fits.
//
// These are the statistical tools the paper's methodology relies on:
// medians over 50 one-second samples (Table IV), 99 % confidence intervals
// (FTaLaT modification, Section VI-A), and the linear/quadratic RAPL-vs-AC
// fits with R-squared (Figure 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hsw::util {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  // sample variance (n-1)
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Median; copies and partially sorts the input.
[[nodiscard]] double median(std::span<const double> xs);

/// Quantile q in [0,1] with linear interpolation between order statistics.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// The latency quantiles every reporter in bench/ and the telemetry
/// layer quote; one sort instead of four. p999 is the 99.9th percentile
/// -- the straggler tail that a p99 over a large window hides.
struct QuantileSummary {
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};
[[nodiscard]] QuantileSummary quantile_summary(std::span<const double> xs);

/// Two-sided confidence interval half-width for the mean at the given level
/// (0.95 or 0.99), using Student's t for small n and the normal limit above
/// n = 120.
[[nodiscard]] double confidence_halfwidth(std::span<const double> xs, double level);

struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
    [[nodiscard]] double operator()(double x) const { return slope * x + intercept; }
};

/// Ordinary least squares y = slope*x + intercept.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

struct QuadraticFit {
    double a = 0.0;  // x^2 coefficient
    double b = 0.0;  // x coefficient
    double c = 0.0;  // constant
    double r_squared = 0.0;
    [[nodiscard]] double operator()(double x) const { return (a * x + b) * x + c; }
};

/// Least squares y = a*x^2 + b*x + c via the 3x3 normal equations.
[[nodiscard]] QuadraticFit fit_quadratic(std::span<const double> x, std::span<const double> y);

/// Running accumulator for streaming mean/variance (Welford).
class RunningStats {
public:
    void add(double x);
    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return mean_; }
    [[nodiscard]] double variance() const;  // sample variance
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }
    void reset();

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Sliding one-minute-style window over (time, value) samples; returns the
/// window with the highest average value, as used for Table V ("we extract
/// the 1 minute interval with the highest average power consumption").
struct WindowAverage {
    double start_time = 0.0;
    double average = 0.0;
};
[[nodiscard]] WindowAverage best_window(std::span<const double> times,
                                        std::span<const double> values,
                                        double window_length);

}  // namespace hsw::util
