#include "util/version.hpp"

namespace hsw::util {

std::string_view build_preset() {
#ifdef HSW_BUILD_PRESET
    return HSW_BUILD_PRESET;
#else
    return "unknown";
#endif
}

}  // namespace hsw::util
