// Minimal cpufreq subsystem over the simulated MSRs.
//
// Faithfully reproduces the pitfall the paper had to work around in FTaLaT
// (Section VI-A): `scaling_cur_freq` reflects the *last request written to
// IA32_PERF_CTL*, not the hardware state -- "these readings are not a
// reliable indicator for an actual frequency switch in hardware". Actual
// frequencies must be derived from APERF deltas (see os::PerfEvents).
#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/units.hpp"

namespace hsw::os {

using util::Frequency;

enum class Governor { Userspace, Performance, Powersave };

class CpufreqPolicy {
public:
    CpufreqPolicy(core::Node& node, unsigned cpu);

    void set_governor(Governor g);
    [[nodiscard]] Governor governor() const { return governor_; }

    /// scaling_setspeed (userspace governor only; throws otherwise).
    void set_speed(Frequency f);

    /// scaling_cur_freq: the last *requested* frequency -- NOT reliable as
    /// an indicator of the hardware state on Haswell-EP.
    [[nodiscard]] Frequency scaling_cur_freq() const;

    /// Whether requests currently route through IA32_HWP_REQUEST instead of
    /// IA32_PERF_CTL (HWP-capable part with MSR_PM_ENABLE set, like
    /// intel_pstate in HWP passive mode).
    [[nodiscard]] bool hwp_active() const;

    /// scaling_min/max_freq limits of the SKU.
    [[nodiscard]] Frequency scaling_min_freq() const;
    [[nodiscard]] Frequency scaling_max_freq() const;

    /// scaling_available_frequencies, descending like sysfs shows them.
    [[nodiscard]] std::vector<Frequency> available_frequencies() const;

private:
    /// Route one ratio request through the generation's native mechanism:
    /// the desired field of IA32_HWP_REQUEST (other fields preserved) when
    /// HWP is active, IA32_PERF_CTL otherwise.
    void request_ratio(unsigned ratio);

    core::Node* node_;
    unsigned cpu_;
    Governor governor_ = Governor::Userspace;
};

}  // namespace hsw::os
