#include "os/sysfs.hpp"

#include <cstdio>
#include <stdexcept>

#include "cstates/cstate.hpp"
#include "msr/addresses.hpp"

namespace hsw::os {

namespace {

constexpr const char* kPrefix = "/sys/devices/system/cpu/cpu";

const cstates::CState kIdleStates[] = {cstates::CState::C1, cstates::CState::C3,
                                       cstates::CState::C6};

std::string khz(double hz) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(hz / 1000.0));
    return buf;
}

}  // namespace

VirtualSysfs::VirtualSysfs(core::Node& node) : node_{&node} {}

bool VirtualSysfs::parse(const std::string& path, Parsed& out) const {
    const std::string prefix{kPrefix};
    if (path.rfind(prefix, 0) != 0) return false;
    std::size_t pos = prefix.size();
    std::size_t digits = 0;
    unsigned cpu = 0;
    while (pos + digits < path.size() && std::isdigit(path[pos + digits])) {
        cpu = cpu * 10 + static_cast<unsigned>(path[pos + digits] - '0');
        ++digits;
    }
    if (digits == 0 || cpu >= node_->cpu_count()) return false;
    pos += digits;
    if (pos >= path.size() || path[pos] != '/') return false;
    ++pos;
    const std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) return false;
    out.cpu = cpu;
    out.group = path.substr(pos, slash - pos);
    out.attr = path.substr(slash + 1);
    return !out.attr.empty();
}

bool VirtualSysfs::exists(const std::string& path) const {
    try {
        (void)read(path);
        return true;
    } catch (const std::invalid_argument&) {
        return false;
    }
}

std::string VirtualSysfs::read(const std::string& path) const {
    Parsed p;
    if (!parse(path, p)) throw std::invalid_argument{"sysfs: no such path: " + path};
    core::Node& node = *node_;

    if (p.group == "cpufreq") {
        if (p.attr == "scaling_cur_freq") {
            // The request-echo pitfall (Section VI-A): this is the last
            // value written to IA32_PERF_CTL, not the hardware state.
            const auto raw = node.msrs().read(p.cpu, msr::IA32_PERF_CTL);
            return khz(static_cast<double>((raw >> 8) & 0xFF) * 100e6);
        }
        if (p.attr == "scaling_min_freq") return khz(node.sku().min_frequency.as_hz());
        if (p.attr == "scaling_max_freq") {
            return khz(node.sku().turbo_bins.front().as_hz());
        }
        if (p.attr == "scaling_governor") return "userspace";
        if (p.attr == "cpuinfo_cur_freq") {
            // Root-only attribute: the *actual* hardware frequency.
            return khz(node.core_frequency(p.cpu).as_hz());
        }
    }
    if (p.group == "topology") {
        if (p.attr == "physical_package_id") {
            return std::to_string(node.socket_of(p.cpu));
        }
        if (p.attr == "core_id") return std::to_string(node.core_of(p.cpu));
    }
    if (p.group == "cpuidle") {
        // stateK/name or stateK/latency, K in 0..2 for C1/C3/C6.
        if (p.attr.rfind("state", 0) == 0 && p.attr.size() >= 7) {
            const unsigned k = static_cast<unsigned>(p.attr[5] - '0');
            if (k < 3 && p.attr[6] == '/') {
                const std::string leaf = p.attr.substr(7);
                if (leaf == "name") return std::string{cstates::name(kIdleStates[k])};
                if (leaf == "latency") {
                    // Microseconds, from the ACPI tables (the stale values
                    // Section VI-B complains about).
                    return std::to_string(static_cast<long long>(
                        cstates::acpi_reported_latency(kIdleStates[k]).as_us()));
                }
            }
        }
    }
    throw std::invalid_argument{"sysfs: no such path: " + path};
}

void VirtualSysfs::write(const std::string& path, const std::string& value) {
    Parsed p;
    if (!parse(path, p)) throw std::invalid_argument{"sysfs: no such path: " + path};
    if (p.group == "cpufreq" && p.attr == "scaling_setspeed") {
        const double khz_value = std::stod(value);
        node_->set_pstate(p.cpu, util::Frequency::hz(khz_value * 1000.0));
        return;
    }
    throw std::invalid_argument{"sysfs: read-only or unknown attribute: " + path};
}

}  // namespace hsw::os
