#include "os/perf_events.hpp"

#include "msr/addresses.hpp"

namespace hsw::os {

namespace {
msr::MsrAddress address_for(PerfEvent e) {
    switch (e) {
        case PerfEvent::CpuCycles: return msr::IA32_FIXED_CTR1;
        case PerfEvent::Instructions: return msr::IA32_FIXED_CTR0;
        case PerfEvent::RefCycles: return msr::IA32_FIXED_CTR2;
        case PerfEvent::StallCycles: return msr::MSR_STALL_CYCLES;
    }
    return msr::IA32_FIXED_CTR1;
}
}  // namespace

PerfCounter::PerfCounter(core::Node& node, unsigned cpu, PerfEvent event)
    : node_{&node}, cpu_{cpu}, event_{event} {}

std::uint64_t PerfCounter::read() const {
    return node_->msrs().read(cpu_, address_for(event_));
}

Frequency PerfCounter::measure_frequency(Time window) {
    const std::uint64_t before = read();
    node_->run_for(window);
    const std::uint64_t after = read();
    return Frequency::hz(static_cast<double>(after - before) / window.as_seconds());
}

}  // namespace hsw::os
