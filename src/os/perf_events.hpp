// perf_events facade: the reliable way to observe frequency changes.
//
// FTaLaT's verification loop (as modified by the paper) counts
// PERF_COUNT_HW_CPU_CYCLES over a 20 us busy-wait window and derives the
// actual clock from the delta -- this is that mechanism.
#pragma once

#include <cstdint>

#include "core/node.hpp"
#include "util/units.hpp"

namespace hsw::os {

using util::Frequency;
using util::Time;

enum class PerfEvent { CpuCycles, Instructions, RefCycles, StallCycles };

class PerfCounter {
public:
    PerfCounter(core::Node& node, unsigned cpu, PerfEvent event);

    /// Current raw count (monotonic).
    [[nodiscard]] std::uint64_t read() const;

    /// Busy-wait on the target cpu for `window`, then return the observed
    /// average frequency over it (cycles delta / wall time). This advances
    /// the simulation.
    [[nodiscard]] Frequency measure_frequency(Time window);

private:
    core::Node* node_;
    unsigned cpu_;
    PerfEvent event_;
};

}  // namespace hsw::os
