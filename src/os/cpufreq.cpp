#include "os/cpufreq.hpp"

#include <algorithm>
#include <stdexcept>

#include "msr/addresses.hpp"
#include "pcu/hwp.hpp"

namespace hsw::os {

CpufreqPolicy::CpufreqPolicy(core::Node& node, unsigned cpu)
    : node_{&node}, cpu_{cpu} {}

bool CpufreqPolicy::hwp_active() const {
    return node_->hwp_capable() &&
           (node_->msrs().read(cpu_, msr::MSR_PM_ENABLE) & 1) != 0;
}

void CpufreqPolicy::request_ratio(unsigned ratio) {
    if (hwp_active()) {
        auto req = pcu::decode_hwp_request(
            node_->msrs().read(cpu_, msr::IA32_HWP_REQUEST));
        req.desired_ratio = ratio;
        node_->msrs().write(cpu_, msr::IA32_HWP_REQUEST, pcu::encode_hwp_request(req));
        return;
    }
    node_->set_pstate(cpu_, Frequency::from_ratio(ratio));
}

void CpufreqPolicy::set_governor(Governor g) {
    governor_ = g;
    switch (g) {
        case Governor::Performance:
            request_ratio(node_->sku().nominal_frequency.ratio() + 1);
            break;
        case Governor::Powersave:
            request_ratio(node_->sku().min_frequency.ratio());
            break;
        case Governor::Userspace:
            break;  // keeps the current request until set_speed
    }
}

void CpufreqPolicy::set_speed(Frequency f) {
    if (governor_ != Governor::Userspace) {
        throw std::logic_error{"cpufreq: scaling_setspeed requires the userspace governor"};
    }
    request_ratio(f.ratio());
}

Frequency CpufreqPolicy::scaling_cur_freq() const {
    // Deliberately the *request*: read back what the OS last asked for
    // (IA32_PERF_CTL, or the HWP desired field), not PERF_STATUS.
    if (hwp_active()) {
        const auto req = pcu::decode_hwp_request(
            node_->msrs().read(cpu_, msr::IA32_HWP_REQUEST));
        return Frequency::from_ratio(req.desired_ratio);
    }
    const auto raw = node_->msrs().read(cpu_, msr::IA32_PERF_CTL);
    return Frequency::from_ratio(static_cast<unsigned>((raw >> 8) & 0xFF));
}

Frequency CpufreqPolicy::scaling_min_freq() const { return node_->sku().min_frequency; }

Frequency CpufreqPolicy::scaling_max_freq() const {
    return node_->sku().turbo_bins.empty() ? node_->sku().nominal_frequency
                                           : node_->sku().turbo_bins.front();
}

std::vector<Frequency> CpufreqPolicy::available_frequencies() const {
    auto fs = node_->sku().selectable_pstates();
    std::sort(fs.begin(), fs.end(), std::greater<>{});
    return fs;
}

}  // namespace hsw::os
