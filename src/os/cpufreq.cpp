#include "os/cpufreq.hpp"

#include <algorithm>
#include <stdexcept>

#include "msr/addresses.hpp"

namespace hsw::os {

CpufreqPolicy::CpufreqPolicy(core::Node& node, unsigned cpu)
    : node_{&node}, cpu_{cpu} {}

void CpufreqPolicy::set_governor(Governor g) {
    governor_ = g;
    switch (g) {
        case Governor::Performance:
            node_->set_pstate(cpu_, Frequency::from_ratio(
                                        node_->sku().nominal_frequency.ratio() + 1));
            break;
        case Governor::Powersave:
            node_->set_pstate(cpu_, node_->sku().min_frequency);
            break;
        case Governor::Userspace:
            break;  // keeps the current request until set_speed
    }
}

void CpufreqPolicy::set_speed(Frequency f) {
    if (governor_ != Governor::Userspace) {
        throw std::logic_error{"cpufreq: scaling_setspeed requires the userspace governor"};
    }
    node_->set_pstate(cpu_, f);
}

Frequency CpufreqPolicy::scaling_cur_freq() const {
    // Deliberately the *request*: read back IA32_PERF_CTL, not PERF_STATUS.
    const auto raw = node_->msrs().read(cpu_, msr::IA32_PERF_CTL);
    return Frequency::from_ratio(static_cast<unsigned>((raw >> 8) & 0xFF));
}

Frequency CpufreqPolicy::scaling_min_freq() const { return node_->sku().min_frequency; }

Frequency CpufreqPolicy::scaling_max_freq() const {
    return node_->sku().turbo_bins.empty() ? node_->sku().nominal_frequency
                                           : node_->sku().turbo_bins.front();
}

std::vector<Frequency> CpufreqPolicy::available_frequencies() const {
    auto fs = node_->sku().selectable_pstates();
    std::sort(fs.begin(), fs.end(), std::greater<>{});
    return fs;
}

}  // namespace hsw::os
