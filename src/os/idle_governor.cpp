#include "os/idle_governor.hpp"

namespace hsw::os {

namespace {
constexpr cstates::CState kStatesDeepFirst[] = {
    cstates::CState::C6, cstates::CState::C3, cstates::CState::C1};
}

IdleGovernor::IdleGovernor(double latency_multiplier) : multiplier_{latency_multiplier} {}

cstates::CState IdleGovernor::select(Time predicted_idle) const {
    for (cstates::CState s : kStatesDeepFirst) {
        const Time exit_latency = cstates::acpi_reported_latency(s);
        if (predicted_idle.as_seconds() >= multiplier_ * exit_latency.as_seconds()) {
            return s;
        }
    }
    return cstates::CState::C0;  // too short to sleep at all
}

cstates::CState IdleGovernor::select_with_measured(
    Time predicted_idle, const cstates::WakeLatencyModel& model,
    util::Frequency core_frequency) const {
    for (cstates::CState s : kStatesDeepFirst) {
        const Time exit_latency =
            model.mean_latency(s, core_frequency, cstates::WakeScenario::Local);
        if (predicted_idle.as_seconds() >= multiplier_ * exit_latency.as_seconds()) {
            return s;
        }
    }
    return cstates::CState::C0;
}

double IdleGovernor::latency_headroom(const cstates::WakeLatencyModel& model,
                                      cstates::CState state,
                                      util::Frequency core_frequency) {
    const double measured =
        model.mean_latency(state, core_frequency, cstates::WakeScenario::Local).as_us();
    if (measured <= 0.0) return 1.0;
    return cstates::acpi_reported_latency(state).as_us() / measured;
}

}  // namespace hsw::os
