// Virtual sysfs: the string-keyed view Linux tools actually read.
//
// Maps the familiar /sys paths onto the simulated machine:
//   /sys/devices/system/cpu/cpuN/cpufreq/{scaling_cur_freq,scaling_min_freq,
//       scaling_max_freq,scaling_governor,scaling_setspeed}
//   /sys/devices/system/cpu/cpuN/topology/physical_package_id
//   /sys/devices/system/cpu/cpuN/cpuidle/stateK/{name,latency}
// Reads return the file content as a string (frequencies in kHz like the
// kernel); writes accept the same formats. scaling_cur_freq inherits the
// request-echo pitfall from os::CpufreqPolicy.
#pragma once

#include <string>

#include "core/node.hpp"

namespace hsw::os {

class VirtualSysfs {
public:
    explicit VirtualSysfs(core::Node& node);

    /// Read a path; throws std::invalid_argument for unknown paths.
    [[nodiscard]] std::string read(const std::string& path) const;

    /// Write a path (only the writable cpufreq attributes).
    void write(const std::string& path, const std::string& value);

    [[nodiscard]] bool exists(const std::string& path) const;

private:
    struct Parsed {
        unsigned cpu = 0;
        std::string group;  // "cpufreq", "topology", "cpuidle"
        std::string attr;   // e.g. "scaling_cur_freq" or "state1/latency"
    };
    [[nodiscard]] bool parse(const std::string& path, Parsed& out) const;

    core::Node* node_;
};

}  // namespace hsw::os
