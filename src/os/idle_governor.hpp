// Menu-style idle governor.
//
// Chooses a C-state for a predicted idle interval using the ACPI-reported
// latencies (33/133 us). Section VI-B shows the measured latencies are far
// lower, so the governor is systematically too conservative on Haswell-EP
// -- quantified by the `latency_headroom` helper and exercised in tests.
#pragma once

#include "cstates/cstate.hpp"
#include "cstates/wake_latency.hpp"
#include "util/units.hpp"

namespace hsw::os {

using util::Time;

class IdleGovernor {
public:
    /// `latency_multiplier`: the governor requires predicted_idle >=
    /// multiplier * exit_latency before it picks a state (menu-governor
    /// style guard).
    explicit IdleGovernor(double latency_multiplier = 2.0);

    /// State chosen for a predicted idle interval, based on ACPI tables.
    [[nodiscard]] cstates::CState select(Time predicted_idle) const;

    /// State that *would* be chosen if the governor knew the measured
    /// latencies from the model instead of the ACPI tables.
    [[nodiscard]] cstates::CState select_with_measured(
        Time predicted_idle, const cstates::WakeLatencyModel& model,
        util::Frequency core_frequency) const;

    /// Ratio of ACPI-claimed to model-measured latency for a state (the
    /// argument for a runtime-updatable interface, Section VI-B).
    [[nodiscard]] static double latency_headroom(const cstates::WakeLatencyModel& model,
                                                 cstates::CState state,
                                                 util::Frequency core_frequency);

private:
    double multiplier_;
};

}  // namespace hsw::os
