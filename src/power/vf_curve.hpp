// Voltage/frequency operating curves.
//
// Each voltage domain (a core behind its FIVR, or the uncore) maps a target
// frequency to the minimum stable voltage. Per-socket and per-core factors
// model the silicon variation the paper observes in Section III ("the cores'
// voltages for a given p-state differ on the two processors").
#pragma once

#include "util/units.hpp"

namespace hsw::power {

using util::Frequency;
using util::Voltage;

class VfCurve {
public:
    /// V(f) = (a + b*f_GHz + c*f_GHz^2) * factor.
    VfCurve(double a, double b, double c, double factor = 1.0);

    /// Core-domain curve for a socket (applies the per-socket factor from
    /// the calibration, Section III).
    [[nodiscard]] static VfCurve core_curve(unsigned socket_id, double per_core_factor = 1.0);

    /// Uncore-domain curve for a socket.
    [[nodiscard]] static VfCurve uncore_curve(unsigned socket_id);

    [[nodiscard]] Voltage voltage_for(Frequency f) const;

    /// Highest frequency that fits under the given voltage (inverse map,
    /// used by the PCU when budgeting).
    [[nodiscard]] Frequency frequency_for(Voltage v) const;

    [[nodiscard]] double factor() const { return factor_; }

private:
    double a_;
    double b_;
    double c_;
    double factor_;
};

}  // namespace hsw::power
