// Package power assembly.
//
// Dynamic power follows P = cdyn * V^2 * f with workload-dependent cdyn
// (utilization of execution units, decoders and data transfers, Section
// VIII / [30]); leakage scales with V^2 and vanishes for power-gated (C6)
// cores; DRAM power has a background plus a bandwidth-proportional part.
#pragma once

#include "util/units.hpp"

namespace hsw::power {

using util::Frequency;
using util::Power;
using util::Voltage;

struct CoreActivity {
    /// Relative dynamic-capacitance utilization (FIRESTARTER payload = 1.0).
    double cdyn_utilization = 0.0;
    /// True while in C0 (leakage applies in shallow idle, not in C6).
    bool clock_running = false;
    /// True when the domain is power-gated (C6): no dynamic, no leakage.
    bool power_gated = false;
};

/// Dynamic + leakage power of one core.
[[nodiscard]] Power core_power(const CoreActivity& activity, Voltage v, Frequency f);

/// Uncore (ring, L3, IMC front end) power for a traffic level in [0, 1].
[[nodiscard]] Power uncore_power(double traffic_utilization, Voltage v, Frequency f);

/// DRAM power for one socket at the given aggregate read+write bandwidth.
[[nodiscard]] Power dram_power(util::Bandwidth bw);

/// Static per-socket floor (IO, PLLs) inside the package RAPL domain.
[[nodiscard]] Power socket_static_power();

}  // namespace hsw::power
