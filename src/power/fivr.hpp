// Fully integrated voltage regulator (Section II-B, [1]).
//
// Haswell moves the per-domain regulators onto the die: each core has its
// own FIVR, which is what enables per-core p-states. A FIVR converts the
// board VCCin (~1.8 V) down to the domain voltage at ~90 % efficiency; the
// conversion loss appears inside the package RAPL domain, which is also why
// Haswell RAPL can *measure* consumption at the regulator.
#pragma once

#include "util/units.hpp"

namespace hsw::power {

using util::Power;
using util::Time;
using util::Voltage;

class Fivr {
public:
    /// `ramp_rate` in volts/second bounds how fast the output can move
    /// (contributes to the p-state switching time).
    explicit Fivr(Voltage initial = Voltage::volts(0.0),
                  double efficiency = 0.90,
                  double ramp_volts_per_sec = 5000.0);

    /// Request a new output voltage; returns the ramp time needed.
    Time set_voltage(Voltage v);

    [[nodiscard]] Voltage output_voltage() const { return output_; }
    [[nodiscard]] double efficiency() const { return efficiency_; }

    /// Input power drawn from VCCin for a given domain load.
    [[nodiscard]] Power input_power(Power domain_load) const;

    /// Conversion loss for a given domain load (dissipated on-die).
    [[nodiscard]] Power conversion_loss(Power domain_load) const;

    /// Power-gate the domain (C6): output collapses to 0 V.
    void gate() { output_ = Voltage::volts(0.0); }
    [[nodiscard]] bool gated() const { return output_ == Voltage::volts(0.0); }

private:
    Voltage output_;
    double efficiency_;
    double ramp_volts_per_sec_;
};

}  // namespace hsw::power
