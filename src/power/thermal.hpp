// First-order RC thermal model of a package.
//
// The paper attributes socket 0's lower sustained turbo to "thermal
// reasons" (Section III); the PCU consults this model to derate the turbo
// ceiling when the die runs hot.
#pragma once

#include "util/units.hpp"

namespace hsw::power {

using util::Power;
using util::Time;

class ThermalModel {
public:
    /// `resistance` in K/W, `capacitance` in J/K, `ambient` in deg C.
    ThermalModel(double resistance_k_per_w = 0.28, double capacitance_j_per_k = 180.0,
                 double ambient_celsius = 28.0);

    /// Advance the model by `dt` with constant dissipation `p`.
    void advance(Power p, Time dt);

    [[nodiscard]] double temperature_celsius() const { return temp_; }
    [[nodiscard]] double steady_state_celsius(Power p) const;

    /// Throttle temperature (PROCHOT) for Haswell-EP parts.
    static constexpr double kTjMax = 92.0;

    /// True when the PCU should shave turbo bins.
    [[nodiscard]] bool hot() const { return temp_ > kTjMax - 5.0; }

    void reset(double temperature_celsius);

private:
    double r_;
    double c_;
    double ambient_;
    double temp_;
};

}  // namespace hsw::power
