// Mainboard voltage regulator (Section II-B).
//
// With FIVR only three voltage lanes remain on the board: processor VCCin
// and the two DRAM lanes VCCD_01 / VCCD_23. The processor steers VCCin via
// serial voltage ID (SVID) commands, and the MBVR switches between three
// power states according to the estimated current draw.
#pragma once

#include "util/units.hpp"

namespace hsw::power {

using util::Power;
using util::Voltage;

enum class MbvrLane { VccIn, Vccd01, Vccd23 };

enum class MbvrPowerState {
    PS0,  // full phase count, high current
    PS1,  // reduced phases
    PS2,  // light load
};

class Mbvr {
public:
    Mbvr();

    /// SVID command from the processor: set the VCCin setpoint.
    void svid_set_voltage(MbvrLane lane, Voltage v);
    [[nodiscard]] Voltage lane_voltage(MbvrLane lane) const;

    /// The processor reports estimated power; the MBVR picks its state
    /// ([11, Section 2.2.9]).
    void update_estimated_load(Power estimated);
    [[nodiscard]] MbvrPowerState power_state() const { return state_; }

    /// Board-side conversion loss for a given delivered power (worse at
    /// light load in a too-high power state).
    [[nodiscard]] Power conversion_loss(Power delivered) const;

    /// Lane count sanity: Haswell needs 3 lanes (previous products: 5).
    static constexpr unsigned kLaneCount = 3;

private:
    Voltage vccin_;
    Voltage vccd01_;
    Voltage vccd23_;
    MbvrPowerState state_ = MbvrPowerState::PS2;
};

}  // namespace hsw::power
