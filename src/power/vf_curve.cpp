#include "power/vf_curve.hpp"

#include <cmath>

#include "arch/calibration.hpp"

namespace hsw::power {

namespace cal = hsw::arch::cal;

VfCurve::VfCurve(double a, double b, double c, double factor)
    : a_{a}, b_{b}, c_{c}, factor_{factor} {}

VfCurve VfCurve::core_curve(unsigned socket_id, double per_core_factor) {
    const double socket_factor =
        socket_id == 0 ? cal::kSocket0VoltageFactor : cal::kSocket1VoltageFactor;
    return VfCurve{cal::kCoreVfA, cal::kCoreVfB, cal::kCoreVfC,
                   socket_factor * per_core_factor};
}

VfCurve VfCurve::uncore_curve(unsigned socket_id) {
    const double socket_factor =
        socket_id == 0 ? cal::kSocket0VoltageFactor : cal::kSocket1VoltageFactor;
    return VfCurve{cal::kUncoreVfA, cal::kUncoreVfB, 0.0, socket_factor};
}

Voltage VfCurve::voltage_for(Frequency f) const {
    const double g = f.as_ghz();
    return Voltage::volts((a_ + b_ * g + c_ * g * g) * factor_);
}

Frequency VfCurve::frequency_for(Voltage v) const {
    const double target = v.as_volts() / factor_;
    if (c_ == 0.0) {
        if (b_ == 0.0) return Frequency::zero();
        return Frequency::ghz((target - a_) / b_);
    }
    // Positive root of c*f^2 + b*f + (a - target) = 0.
    const double disc = b_ * b_ - 4.0 * c_ * (a_ - target);
    if (disc <= 0.0) return Frequency::zero();
    return Frequency::ghz((-b_ + std::sqrt(disc)) / (2.0 * c_));
}

}  // namespace hsw::power
