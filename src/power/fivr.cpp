#include "power/fivr.hpp"

#include <cmath>

namespace hsw::power {

Fivr::Fivr(Voltage initial, double efficiency, double ramp_volts_per_sec)
    : output_{initial}, efficiency_{efficiency}, ramp_volts_per_sec_{ramp_volts_per_sec} {}

Time Fivr::set_voltage(Voltage v) {
    const double delta = std::abs(v.as_volts() - output_.as_volts());
    output_ = v;
    return Time::from_seconds(delta / ramp_volts_per_sec_);
}

Power Fivr::input_power(Power domain_load) const {
    if (domain_load <= Power::zero()) return Power::zero();
    return Power::watts(domain_load.as_watts() / efficiency_);
}

Power Fivr::conversion_loss(Power domain_load) const {
    return input_power(domain_load) - domain_load;
}

}  // namespace hsw::power
