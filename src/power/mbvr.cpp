#include "power/mbvr.hpp"

namespace hsw::power {

Mbvr::Mbvr()
    : vccin_{Voltage::volts(1.8)},
      vccd01_{Voltage::volts(1.2)},   // DDR4 VDD
      vccd23_{Voltage::volts(1.2)} {}

void Mbvr::svid_set_voltage(MbvrLane lane, Voltage v) {
    switch (lane) {
        case MbvrLane::VccIn: vccin_ = v; break;
        case MbvrLane::Vccd01: vccd01_ = v; break;
        case MbvrLane::Vccd23: vccd23_ = v; break;
    }
}

Voltage Mbvr::lane_voltage(MbvrLane lane) const {
    switch (lane) {
        case MbvrLane::VccIn: return vccin_;
        case MbvrLane::Vccd01: return vccd01_;
        case MbvrLane::Vccd23: return vccd23_;
    }
    return vccin_;
}

void Mbvr::update_estimated_load(Power estimated) {
    const double w = estimated.as_watts();
    if (w > 60.0) {
        state_ = MbvrPowerState::PS0;
    } else if (w > 15.0) {
        state_ = MbvrPowerState::PS1;
    } else {
        state_ = MbvrPowerState::PS2;
    }
}

Power Mbvr::conversion_loss(Power delivered) const {
    // Efficiency by power state; PS0 is tuned for heavy load.
    double efficiency = 0.0;
    switch (state_) {
        case MbvrPowerState::PS0: efficiency = 0.93; break;
        case MbvrPowerState::PS1: efficiency = 0.91; break;
        case MbvrPowerState::PS2: efficiency = 0.88; break;
    }
    return Power::watts(delivered.as_watts() * (1.0 - efficiency) / efficiency);
}

}  // namespace hsw::power
