#include "power/psu.hpp"

#include <cmath>

#include "arch/calibration.hpp"

namespace hsw::power {

namespace cal = hsw::arch::cal;

NodeAcModel::NodeAcModel(arch::Generation generation) {
    if (generation == arch::Generation::HaswellEP ||
        generation == arch::Generation::HaswellHE) {
        quad_ = cal::kAcQuadCoeff;
        lin_ = cal::kAcLinCoeff;
        constant_ = cal::kAcConstCoeff;
    } else {
        quad_ = cal::kSnbAcQuadCoeff;
        lin_ = cal::kSnbAcLinCoeff;
        constant_ = cal::kSnbAcConstCoeff;
    }
}

Power NodeAcModel::ac_power(Power rapl_domain_power) const {
    const double r = rapl_domain_power.as_watts();
    return Power::watts(quad_ * r * r + lin_ * r + constant_);
}

Power NodeAcModel::rapl_power_for_ac(Power ac) const {
    // Positive root of quad*r^2 + lin*r + (constant - ac) = 0.
    const double c = constant_ - ac.as_watts();
    if (quad_ == 0.0) return Power::watts(-c / lin_);
    const double disc = lin_ * lin_ - 4.0 * quad_ * c;
    if (disc <= 0.0) return Power::zero();
    return Power::watts((-lin_ + std::sqrt(disc)) / (2.0 * quad_));
}

}  // namespace hsw::power
