#include "power/thermal.hpp"

#include <cmath>

namespace hsw::power {

ThermalModel::ThermalModel(double resistance_k_per_w, double capacitance_j_per_k,
                           double ambient_celsius)
    : r_{resistance_k_per_w}, c_{capacitance_j_per_k}, ambient_{ambient_celsius},
      temp_{ambient_celsius} {}

void ThermalModel::advance(Power p, Time dt) {
    // Exponential approach to the steady state with time constant RC.
    const double target = steady_state_celsius(p);
    const double tau = r_ * c_;
    const double alpha = 1.0 - std::exp(-dt.as_seconds() / tau);
    temp_ += (target - temp_) * alpha;
}

double ThermalModel::steady_state_celsius(Power p) const {
    return ambient_ + r_ * p.as_watts();
}

void ThermalModel::reset(double temperature_celsius) { temp_ = temperature_celsius; }

}  // namespace hsw::power
