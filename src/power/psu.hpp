// AC-side node model (Section III / Figure 2).
//
// The reference power meter measures at the wall: AC power includes the PSU
// conversion loss (nonlinear), fans (held at maximum speed), and mainboard
// consumers. The paper's Haswell node follows
//   P_AC = 0.0003 * R^2 + 1.097 * R + 225.7 W        (footnote 2)
// with R the RAPL-covered DC power (package + DRAM over both sockets).
#pragma once

#include "arch/generation.hpp"
#include "util/units.hpp"

namespace hsw::power {

using util::Power;

class NodeAcModel {
public:
    explicit NodeAcModel(arch::Generation generation);

    /// Wall power for a given RAPL-domain (pkg+DRAM, all sockets) DC power.
    [[nodiscard]] Power ac_power(Power rapl_domain_power) const;

    /// Inverse: RAPL-domain power implied by an AC reading (for tests).
    [[nodiscard]] Power rapl_power_for_ac(Power ac) const;

private:
    double quad_;
    double lin_;
    double constant_;
};

}  // namespace hsw::power
