#include "power/power_model.hpp"

#include "arch/calibration.hpp"

namespace hsw::power {

namespace cal = hsw::arch::cal;

Power core_power(const CoreActivity& activity, Voltage v, Frequency f) {
    if (activity.power_gated) return Power::zero();
    const double v2 = v.as_volts() * v.as_volts();
    double watts = cal::kCoreLeakagePerV2 * v2;
    if (activity.clock_running) {
        watts += cal::kCoreCdynFullLoad * activity.cdyn_utilization * v2 * f.as_ghz();
    }
    return Power::watts(watts);
}

Power uncore_power(double traffic_utilization, Voltage v, Frequency f) {
    if (traffic_utilization < 0.0) traffic_utilization = 0.0;
    if (traffic_utilization > 1.0) traffic_utilization = 1.0;
    const double v2 = v.as_volts() * v.as_volts();
    const double activity =
        cal::kUncoreIdleActivityFloor + (1.0 - cal::kUncoreIdleActivityFloor) * traffic_utilization;
    return Power::watts(cal::kUncoreCdynFullLoad * activity * v2 * f.as_ghz());
}

Power dram_power(util::Bandwidth bw) {
    return cal::kDramBackgroundPerSocket +
           Power::watts(cal::kDramWattsPerGBs * bw.as_gb_per_sec());
}

Power socket_static_power() { return cal::kSocketStaticPower; }

}  // namespace hsw::power
