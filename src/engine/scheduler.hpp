// Work-stealing thread pool for independent experiment jobs.
//
// run() takes a batch of tasks, distributes them round-robin over
// per-worker deques, and lets idle workers steal from the front of busy
// workers' deques (the owner pops from the back, so a steal grabs the
// oldest -- typically largest-remaining -- job). Tasks must be independent:
// nothing here orders them, and determinism comes from each task writing to
// its own pre-allocated result slot, never from completion order.
//
// A task that throws is retried on the same pool (up to `max_attempts`
// total attempts, and only while the batch is younger than
// `retry_deadline`); a task that keeps throwing is recorded as failed and
// the rest of the batch continues. Counters in Progress are atomics a
// monitoring thread may read while run() is in flight.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace hsw::engine {

struct SchedulerConfig {
    /// Worker thread count; 0 is clamped to 1.
    unsigned threads = 1;
    /// Total attempts per task (first run + retries).
    unsigned max_attempts = 2;
    /// No retry starts after this much wall time from the start of run().
    /// zero() disables the deadline.
    std::chrono::milliseconds retry_deadline{0};
};

struct JobOutcome {
    std::size_t index = 0;     // position in the submitted batch
    bool ok = false;
    unsigned attempts = 0;
    std::string error;         // last exception message when !ok
    double wall_ms = 0.0;      // total execution time across attempts
};

class Scheduler {
public:
    using Task = std::function<void()>;
    /// Invoked after a task finishes for good (success or permanent
    /// failure). Serialized by the scheduler; may run on any worker.
    using Listener = std::function<void(const JobOutcome&)>;

    struct Progress {
        std::atomic<std::size_t> queued{0};
        std::atomic<std::size_t> running{0};
        std::atomic<std::size_t> done{0};
        std::atomic<std::size_t> failed{0};   // permanent failures (subset of done)
        std::atomic<std::size_t> retries{0};  // re-queues after an exception
    };

    explicit Scheduler(SchedulerConfig cfg = {});

    void set_listener(Listener listener) { listener_ = std::move(listener); }

    /// Runs the batch to completion; outcomes are indexed like `tasks`.
    /// Workers live only for the duration of the call.
    std::vector<JobOutcome> run(std::vector<Task> tasks);

    [[nodiscard]] const Progress& progress() const { return progress_; }

private:
    struct Batch;
    void work(Batch& batch, std::size_t worker);
    bool next_task(Batch& batch, std::size_t worker, std::size_t& out_index);

    SchedulerConfig cfg_;
    Listener listener_;
    Progress progress_;
};

}  // namespace hsw::engine
