// The experiment-execution engine.
//
// An Experiment is an ordered list of independent Jobs (one per sweep
// point) plus an assemble step that folds the jobs' payload blobs -- in
// point order, never in completion order -- into named artifacts (CSV
// files, rendered tables). The engine fans all jobs of all requested
// experiments across a work-stealing Scheduler, consults the
// content-addressed ResultCache before computing anything, and reports
// retries/permanent failures as Invariant::EngineJob diagnostics through
// the standard DiagnosticSink.
//
// Determinism contract: a job's only seed input is spec.job_seed(), derived
// from the spec's content hash -- so outputs are byte-identical across
// thread counts, schedules, and cache hit/miss patterns.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "arch/generation.hpp"
#include "engine/cancel.hpp"
#include "engine/result_cache.hpp"
#include "engine/scheduler.hpp"
#include "engine/spec.hpp"

namespace hsw::engine {

struct Job {
    ExperimentSpec spec;
    /// Computes the job's payload blob (see blob.hpp). Must derive all
    /// randomness from spec.job_seed().
    std::function<std::string(const ExperimentSpec&)> run;
};

enum class ArtifactKind { Csv, Render };

struct Artifact {
    std::string filename;  // e.g. "fig7_relative_bandwidth.csv"
    ArtifactKind kind = ArtifactKind::Csv;
    std::string contents;
};

struct Experiment {
    std::string name;         // "fig2a" .. "skx_avx512"
    std::string description;  // one line for --list
    /// Processor generations the experiment builds nodes for (the
    /// --generation filter key). Most of the survey is Haswell-EP only.
    std::vector<arch::Generation> generations{arch::Generation::HaswellEP};
    std::vector<Job> jobs;
    /// Folds job payloads (ordered like `jobs`) into artifacts.
    std::function<std::vector<Artifact>(const std::vector<std::string>&)> assemble;
};

struct JobStats {
    std::string experiment;
    std::string point;
    std::string spec_hash;  // hex, abbreviated to 12 chars
    bool cache_hit = false;
    bool ok = false;
    unsigned attempts = 0;
    double wall_ms = 0.0;
    /// Simulator events dispatched on the worker thread while this job's
    /// body ran (last attempt; 0 for cache hits and simulation-free jobs).
    std::uint64_t sim_events = 0;
    /// sim_events over the job-body wall time -- the survey's per-job
    /// measure of event-engine throughput.
    double events_per_sec = 0.0;
    std::string error;
};

struct RunReport {
    std::vector<Artifact> artifacts;
    std::vector<JobStats> jobs;          // survey order (experiment, then point)
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    /// The ResultCache's own probe/store tallies for this run. Unlike
    /// cache_hits/cache_misses (one per job), these count every disk probe
    /// -- a corrupt entry shows up here as a miss plus a re-store.
    ResultCache::Counters disk_cache;
    bool cache_enabled = false;
    std::size_t failures = 0;            // permanently failed jobs
    std::size_t retries = 0;
    double wall_ms = 0.0;                // whole run, scheduling included
    analysis::DiagnosticSink diagnostics{64};  // EngineJob records

    [[nodiscard]] bool ok() const { return failures == 0; }
    /// Multi-line run summary (job counts, cache hits, slowest points).
    [[nodiscard]] std::string summary() const;
};

struct ProgressEvent {
    enum class Kind { CacheHit, Finished, Failed } kind = Kind::Finished;
    std::string label;    // "experiment/point"
    unsigned attempts = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;  // 0 for cache hits
    std::size_t done = 0;    // jobs finished so far (hits included)
    std::size_t total = 0;
};

struct RunOptions {
    unsigned jobs = 1;
    /// nullopt disables caching entirely.
    std::optional<std::filesystem::path> cache_dir;
    std::string cache_salt{kCodeVersion};
    unsigned max_attempts = 2;
    std::chrono::milliseconds retry_deadline{5 * 60 * 1000};
    /// Called after each job resolves (cache hit, success or permanent
    /// failure); serialized, may run on any worker thread.
    std::function<void(const ProgressEvent&)> on_progress;
};

/// Runs every job of every experiment, assembles artifacts for experiments
/// whose jobs all succeeded, and never throws on job failure -- check
/// RunReport::ok().
[[nodiscard]] RunReport run_experiments(const std::vector<Experiment>& experiments,
                                        const RunOptions& options = {});

/// Writes the report's artifacts under `dir` (created if needed). Renders
/// (.txt artifacts) are skipped unless `renders` is set; CSVs are always
/// written. Throws std::runtime_error when a file cannot be written.
void write_artifacts(const RunReport& report, const std::filesystem::path& dir,
                     bool renders = false);

/// Where a single job's payload came from.
enum class JobSource { DiskCache, Computed };

struct JobResult {
    std::string payload;
    JobSource source = JobSource::Computed;
};

/// Runs one job through the standard cache discipline -- probe `cache`,
/// else compute and store -- honoring `token` at each checkpoint (throws
/// CancelledError rather than starting doomed work). Both pointers may be
/// null: no cache means always compute, no token means never cancel. This
/// is the long-lived-service entry point; run_experiments() remains the
/// batch path.
[[nodiscard]] JobResult run_job(const Job& job, const ResultCache* cache = nullptr,
                                const CancelToken* token = nullptr);

}  // namespace hsw::engine
