#include "engine/blob.hpp"

namespace hsw::engine {

namespace {

constexpr std::string_view kMagic = "hsw-blob v1\n";

/// Parses a non-negative decimal integer; false on empty/overflow/garbage.
bool parse_size(std::string_view text, std::size_t& out) {
    if (text.empty()) return false;
    std::size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        if (value > (static_cast<std::size_t>(-1) - 9) / 10) return false;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    out = value;
    return true;
}

}  // namespace

std::string pack_sections(const BlobSections& sections) {
    std::string out{kMagic};
    for (const auto& [name, payload] : sections) {
        out += "section ";
        out += name;
        out += ' ';
        out += std::to_string(payload.size());
        out += '\n';
        out += payload;
        out += '\n';
    }
    return out;
}

std::optional<BlobSections> unpack_sections(std::string_view blob) {
    if (blob.substr(0, kMagic.size()) != kMagic) return std::nullopt;
    blob.remove_prefix(kMagic.size());

    BlobSections sections;
    while (!blob.empty()) {
        const std::size_t eol = blob.find('\n');
        if (eol == std::string_view::npos) return std::nullopt;
        const std::string_view header = blob.substr(0, eol);
        blob.remove_prefix(eol + 1);

        if (header.substr(0, 8) != "section ") return std::nullopt;
        const std::string_view rest = header.substr(8);
        const std::size_t space = rest.rfind(' ');
        if (space == std::string_view::npos || space == 0) return std::nullopt;
        std::size_t length = 0;
        if (!parse_size(rest.substr(space + 1), length)) return std::nullopt;
        if (blob.size() < length + 1 || blob[length] != '\n') return std::nullopt;

        sections.emplace_back(std::string{rest.substr(0, space)},
                              std::string{blob.substr(0, length)});
        blob.remove_prefix(length + 1);
    }
    return sections;
}

std::optional<std::string> section(std::string_view blob, std::string_view name) {
    const auto sections = unpack_sections(blob);
    if (!sections) return std::nullopt;
    for (const auto& [key, payload] : *sections) {
        if (key == name) return payload;
    }
    return std::nullopt;
}

}  // namespace hsw::engine
