// Length-prefixed multi-section payload format for cached job results.
//
// A job usually produces more than one byte stream (its CSV fragment, its
// rendered text, full-precision data for result reconstruction). The blob
// format packs named sections into one string that the result cache can
// store and verify as a unit:
//
//   hsw-blob v1\n
//   section <name> <byte-count>\n<bytes>\n      (repeated)
//
// Section payloads are length-prefixed, so they may contain anything --
// including newlines and further "section" lines.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsw::engine {

using BlobSections = std::vector<std::pair<std::string, std::string>>;

[[nodiscard]] std::string pack_sections(const BlobSections& sections);

/// nullopt on any structural violation (bad magic, truncated section,
/// malformed length) -- the cache treats that as a miss.
[[nodiscard]] std::optional<BlobSections> unpack_sections(std::string_view blob);

/// First section with the given name; nullopt when absent.
[[nodiscard]] std::optional<std::string> section(std::string_view blob,
                                                std::string_view name);

}  // namespace hsw::engine
