#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/sync.hpp"

namespace hsw::engine {

namespace {

struct FlatJob {
    const Experiment* experiment = nullptr;
    const Job* job = nullptr;
    std::size_t payload_slot = 0;  // index into its experiment's payload list
};

obs::Counter& job_hits_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_engine_job_cache_hits", "run_job / run_experiments disk-cache hits");
    return c;
}
obs::Counter& job_computed_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_engine_jobs_computed", "Jobs whose body actually ran (cache misses)");
    return c;
}

}  // namespace

std::string RunReport::summary() const {
    char line[160];
    std::string out;
    std::snprintf(line, sizeof line,
                  "engine: %zu jobs, %zu cache hits, %zu computed, %zu retries, "
                  "%zu failed, %.0f ms total\n",
                  jobs.size(), cache_hits, cache_misses, retries, failures, wall_ms);
    out += line;
    if (cache_enabled) {
        std::snprintf(line, sizeof line,
                      "  result-cache: %llu hits, %llu misses, %llu stores\n",
                      static_cast<unsigned long long>(disk_cache.hits),
                      static_cast<unsigned long long>(disk_cache.misses),
                      static_cast<unsigned long long>(disk_cache.stores));
        out += line;
    }

    std::vector<const JobStats*> slowest;
    std::uint64_t total_events = 0;
    double total_body_ms = 0.0;
    for (const auto& j : jobs) {
        if (j.cache_hit) continue;
        slowest.push_back(&j);
        total_events += j.sim_events;
        total_body_ms += j.wall_ms;
    }
    if (total_events > 0 && total_body_ms > 0.0) {
        std::snprintf(line, sizeof line,
                      "  sim-events: %llu dispatched, %.0f events/sec per worker\n",
                      static_cast<unsigned long long>(total_events),
                      static_cast<double>(total_events) / (total_body_ms / 1000.0));
        out += line;
    }
    std::sort(slowest.begin(), slowest.end(),
              [](const JobStats* a, const JobStats* b) { return a->wall_ms > b->wall_ms; });
    const std::size_t shown = std::min<std::size_t>(slowest.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
        std::snprintf(line, sizeof line, "  slowest: %s/%s %.0f ms, %.0f events/sec%s\n",
                      slowest[i]->experiment.c_str(), slowest[i]->point.c_str(),
                      slowest[i]->wall_ms, slowest[i]->events_per_sec,
                      slowest[i]->ok ? "" : " (FAILED)");
        out += line;
    }
    if (!diagnostics.empty()) out += diagnostics.summary();
    return out;
}

RunReport run_experiments(const std::vector<Experiment>& experiments,
                          const RunOptions& options) {
    const auto run_start = std::chrono::steady_clock::now();
    RunReport report;

    std::optional<ResultCache> cache;
    if (options.cache_dir) cache.emplace(*options.cache_dir, options.cache_salt);

    // Flatten every experiment's jobs into one batch. Payload slots are
    // fixed up front so workers write results by position and assembly
    // order is independent of completion order.
    std::vector<FlatJob> flat;
    std::vector<std::vector<std::string>> payloads(experiments.size());
    for (std::size_t e = 0; e < experiments.size(); ++e) {
        payloads[e].resize(experiments[e].jobs.size());
        for (std::size_t j = 0; j < experiments[e].jobs.size(); ++j) {
            flat.push_back(FlatJob{&experiments[e], &experiments[e].jobs[j], j});
        }
    }

    report.jobs.resize(flat.size());
    std::vector<std::size_t> experiment_of(flat.size(), 0);
    for (std::size_t i = 0; i < flat.size(); ++i) {
        for (std::size_t e = 0; e < experiments.size(); ++e) {
            if (&experiments[e] == flat[i].experiment) experiment_of[i] = e;
        }
        auto& stats = report.jobs[i];
        stats.experiment = flat[i].experiment->name;
        stats.point = flat[i].job->spec.point;
        stats.spec_hash = flat[i].job->spec.hash_hex().substr(0, 12);
    }

    util::Mutex progress_lock;
    std::atomic<std::size_t> resolved{0};
    auto emit = [&](ProgressEvent::Kind kind, const FlatJob& fj, unsigned attempts,
                    double wall_ms, double events_per_sec) {
        if (!options.on_progress) return;
        ProgressEvent ev;
        ev.kind = kind;
        ev.label = fj.job->spec.label();
        ev.attempts = attempts;
        ev.wall_ms = wall_ms;
        ev.events_per_sec = events_per_sec;
        ev.done = resolved.load(std::memory_order_relaxed);
        ev.total = flat.size();
        util::LockGuard lock{progress_lock};
        options.on_progress(ev);
    };

    // Cache probe happens inside the task, on the worker: entry
    // verification (payload SHA-256) is itself parallelizable work.
    std::vector<Scheduler::Task> tasks;
    tasks.reserve(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
        tasks.push_back([&, i] {
            const FlatJob& fj = flat[i];
            auto& stats = report.jobs[i];
            if (cache && !stats.cache_hit) {
                if (auto hit = cache->load(fj.job->spec)) {
                    payloads[experiment_of[i]][fj.payload_slot] = std::move(*hit);
                    stats.cache_hit = true;
                    stats.ok = true;
                    job_hits_counter().inc();
                    resolved.fetch_add(1, std::memory_order_relaxed);
                    emit(ProgressEvent::Kind::CacheHit, fj, 0, 0.0, 0.0);
                    return;
                }
            }
            // Bracket the job body with the worker thread's event counter:
            // job closures are opaque, but every simulator they drive ticks
            // the thread-local dispatch count, so the delta is this job's
            // event work (last attempt wins on retries).
            const std::uint64_t events_before = sim::Simulator::thread_events_processed();
            const auto body_start = std::chrono::steady_clock::now();
            std::string payload;
            {
                obs::trace::Span span{"engine.job", "engine"};
                span.set_label(fj.job->spec.label());
                payload = fj.job->run(fj.job->spec);
                span.set_events(sim::Simulator::thread_events_processed() -
                                events_before);
            }
            const double body_secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - body_start)
                    .count();
            job_computed_counter().inc();
            stats.sim_events = sim::Simulator::thread_events_processed() - events_before;
            stats.events_per_sec =
                body_secs > 0.0 ? static_cast<double>(stats.sim_events) / body_secs : 0.0;
            if (cache) cache->store(fj.job->spec, payload);
            payloads[experiment_of[i]][fj.payload_slot] = std::move(payload);
        });
    }

    SchedulerConfig sched_cfg;
    sched_cfg.threads = options.jobs;
    sched_cfg.max_attempts = options.max_attempts;
    sched_cfg.retry_deadline = options.retry_deadline;
    Scheduler scheduler{sched_cfg};
    scheduler.set_listener([&](const JobOutcome& outcome) {
        auto& stats = report.jobs[outcome.index];
        if (stats.cache_hit) return;  // resolved before the job body ran
        stats.ok = outcome.ok;
        stats.attempts = outcome.attempts;
        stats.wall_ms = outcome.wall_ms;
        stats.error = outcome.error;
        resolved.fetch_add(1, std::memory_order_relaxed);
        emit(outcome.ok ? ProgressEvent::Kind::Finished : ProgressEvent::Kind::Failed,
             flat[outcome.index], outcome.attempts, outcome.wall_ms,
             stats.events_per_sec);
    });

    const auto outcomes = scheduler.run(std::move(tasks));

    // Post-run bookkeeping, all single-threaded and in survey order.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& stats = report.jobs[i];
        if (stats.cache_hit) {
            ++report.cache_hits;
            continue;
        }
        ++report.cache_misses;
        const unsigned extra_attempts = stats.attempts > 0 ? stats.attempts - 1 : 0;
        report.retries += extra_attempts;
        if (!stats.ok) ++report.failures;
        if (extra_attempts > 0 || !stats.ok) {
            analysis::Diagnostic d;
            d.invariant = analysis::Invariant::EngineJob;
            d.severity = stats.ok ? analysis::Severity::Warning
                                  : analysis::Severity::Violation;
            d.subject = stats.experiment + "/" + stats.point;
            d.message = stats.ok
                            ? "succeeded after retry: " + stats.error
                            : "failed permanently: " + stats.error;
            d.value = stats.attempts;
            d.bound = 1.0;
            report.diagnostics.report(std::move(d));
        }
    }

    // Assemble artifacts per experiment, skipping any with failed jobs.
    for (std::size_t e = 0; e < experiments.size(); ++e) {
        bool all_ok = true;
        for (std::size_t i = 0; i < flat.size(); ++i) {
            if (experiment_of[i] == e && !report.jobs[i].ok) all_ok = false;
        }
        if (!all_ok || !experiments[e].assemble) continue;
        auto artifacts = experiments[e].assemble(payloads[e]);
        for (auto& a : artifacts) report.artifacts.push_back(std::move(a));
    }

    if (cache) {
        report.cache_enabled = true;
        report.disk_cache = cache->counters();
    }

    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - run_start)
                         .count();
    return report;
}

JobResult run_job(const Job& job, const ResultCache* cache, const CancelToken* token) {
    if (token) token->check();
    if (cache) {
        if (auto hit = cache->load(job.spec)) {
            job_hits_counter().inc();
            return JobResult{std::move(*hit), JobSource::DiskCache};
        }
    }
    if (token) token->check();
    JobResult result;
    {
        obs::trace::Span span{"engine.job", "engine"};
        span.set_label(job.spec.label());
        result.payload = job.run(job.spec);
    }
    job_computed_counter().inc();
    result.source = JobSource::Computed;
    if (cache) cache->store(job.spec, result.payload);
    return result;
}

void write_artifacts(const RunReport& report, const std::filesystem::path& dir,
                     bool renders) {
    std::filesystem::create_directories(dir);
    for (const auto& artifact : report.artifacts) {
        if (artifact.kind == ArtifactKind::Render && !renders) continue;
        const std::filesystem::path path = dir / artifact.filename;
        std::ofstream out{path, std::ios::binary | std::ios::trunc};
        out.write(artifact.contents.data(),
                  static_cast<std::streamsize>(artifact.contents.size()));
        if (!out) throw std::runtime_error{"cannot write artifact " + path.string()};
    }
}

}  // namespace hsw::engine
