// Cooperative per-job cancellation and deadlines.
//
// A CancelToken is shared between the party that owns a job (a service
// request handler, a draining daemon) and the code that executes it. The
// executor polls stop_requested() -- or calls check(), which throws
// CancelledError -- at its natural checkpoints: before the cache probe,
// before the compute, before the store. Cancellation is cooperative and
// monotonic: once requested it never clears, and a deadline in the past is
// indistinguishable from an explicit cancel().
//
// Thread safety: lock-free by construction -- both fields are atomics and
// there is no multi-field invariant, so there is nothing for a mutex (or a
// GUARDED_BY annotation) to protect.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace hsw::engine {

/// Thrown by CancelToken::check() when the job should stop. Deliberately a
/// distinct type so callers can tell "gave up on purpose" from a driver
/// failure when deciding whether to retry or surface a rejection.
class CancelledError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class CancelToken {
public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;
    explicit CancelToken(Clock::time_point deadline) { set_deadline(deadline); }

    /// Sets (or moves) the deadline; time_point::max() means none.
    void set_deadline(Clock::time_point deadline) {
        deadline_ns_.store(deadline.time_since_epoch().count(),
                           std::memory_order_relaxed);
    }

    void cancel() { cancelled_.store(true, std::memory_order_release); }

    [[nodiscard]] bool cancelled() const {
        return cancelled_.load(std::memory_order_acquire);
    }

    [[nodiscard]] bool expired() const {
        const auto ns = deadline_ns_.load(std::memory_order_relaxed);
        return ns != kNoDeadline && Clock::now().time_since_epoch().count() >= ns;
    }

    [[nodiscard]] bool stop_requested() const { return cancelled() || expired(); }

    /// Throws CancelledError when cancelled or past the deadline.
    void check() const {
        if (cancelled()) throw CancelledError{"job cancelled"};
        if (expired()) throw CancelledError{"job deadline exceeded"};
    }

private:
    static constexpr Clock::rep kNoDeadline = Clock::time_point::max()
                                                  .time_since_epoch()
                                                  .count();

    std::atomic<bool> cancelled_{false};
    std::atomic<Clock::rep> deadline_ns_{kNoDeadline};
};

}  // namespace hsw::engine
