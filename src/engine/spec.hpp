// Declarative description of one experiment job.
//
// An ExperimentSpec pins down everything that determines a job's output
// bytes: the experiment and sweep point it belongs to, the base seed, the
// audit mode, and every tuning parameter the driver reads. The spec has a
// canonical text serialization and a SHA-256 content hash over it; the hash
// is both the result-cache key (together with the code-version salt) and
// the root of the job's RNG seed, so two specs that serialize identically
// are guaranteed to replay identically -- no matter which worker thread or
// process computes them, and no matter in which order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/audit_config.hpp"
#include "engine/sha256.hpp"

namespace hsw::engine {

struct ExperimentSpec {
    /// Experiment this job belongs to, e.g. "fig7" or "table5".
    std::string experiment;
    /// Sweep point within the experiment, e.g. "generation=haswell-ep";
    /// "all" for single-job experiments.
    std::string point = "all";
    /// Base seed the whole survey was invoked with. The job never consumes
    /// it directly -- it reaches the driver only through job_seed(), i.e.
    /// mixed with the full content hash.
    std::uint64_t base_seed = 0xC0FFEE;
    analysis::AuditMode audit = analysis::AuditMode::Off;

    void set_param(std::string name, std::string value);
    /// nullptr when the parameter is absent.
    [[nodiscard]] const std::string* param(std::string_view name) const;

    /// Canonical serialization: fixed header, one "key=value" line per
    /// field, parameters sorted by name. Line-based and human-readable so
    /// cache entries can be inspected with a pager.
    [[nodiscard]] std::string canonical_text() const;

    [[nodiscard]] Sha256Digest hash() const;
    [[nodiscard]] std::string hash_hex() const;
    [[nodiscard]] std::uint64_t hash64() const;

    /// The seed handed to the driver: util::Rng::derive over the content
    /// hash. Any spec change (experiment, point, seed, audit, any param)
    /// yields an unrelated seed; identical specs always yield the same one.
    [[nodiscard]] std::uint64_t job_seed() const;

    /// AuditConfig with defaults and `audit` as the mode.
    [[nodiscard]] analysis::AuditConfig audit_config() const;

    /// "experiment/point" for progress lines and diagnostics.
    [[nodiscard]] std::string label() const;

private:
    // Sorted by name; set_param keeps the order canonical on insert.
    std::vector<std::pair<std::string, std::string>> params_;
};

[[nodiscard]] std::string_view name(analysis::AuditMode mode);

}  // namespace hsw::engine
