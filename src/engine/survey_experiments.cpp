#include "engine/survey_experiments.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/blob.hpp"
#include "survey/fig2_rapl.hpp"
#include "survey/fig3_pstate.hpp"
#include "survey/fig4_opportunity.hpp"
#include "survey/fig56_cstates.hpp"
#include "survey/fig78_bandwidth.hpp"
#include "survey/skx_hwp.hpp"
#include "survey/table3_uncore.hpp"
#include "survey/table4_firestarter.hpp"
#include "survey/table5_maxpower.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

namespace hsw::engine {

namespace {

using util::Table;

/// Shortest round-trip-exact rendering, for "data" blob sections that get
/// parsed back into doubles at assembly time.
std::string fmt_full(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string csv_row(std::initializer_list<std::string> cells) {
    std::string out;
    for (const auto& cell : cells) {
        if (!out.empty()) out += ',';
        out += cell;  // no cell in the survey needs RFC-4180 escaping
    }
    out += '\n';
    return out;
}

std::string seconds_str(util::Time t) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", t.as_seconds());
    return buf;
}

ExperimentSpec base_spec(const SurveyTuning& t, std::string experiment,
                         std::string point) {
    ExperimentSpec spec;
    spec.experiment = std::move(experiment);
    spec.point = std::move(point);
    spec.base_seed = t.seed;
    spec.audit = t.audit;
    return spec;
}

std::string render_name(const std::string& csv_name) {
    return csv_name.substr(0, csv_name.size() - 4) + ".txt";
}

/// Experiment with exactly one job whose blob carries finished "csv" and
/// "render" sections -- nothing to reconstruct at assembly time.
Experiment single_job(std::string name, std::string description, ExperimentSpec spec,
                      std::function<BlobSections(const ExperimentSpec&)> compute,
                      std::string csv_filename, std::string csv_header) {
    Experiment e;
    e.name = std::move(name);
    e.description = std::move(description);
    Job job;
    job.spec = std::move(spec);
    job.run = [compute = std::move(compute)](const ExperimentSpec& s) {
        return pack_sections(compute(s));
    };
    e.jobs.push_back(std::move(job));
    e.assemble = [csv_filename = std::move(csv_filename),
                  csv_header = std::move(csv_header)](const std::vector<std::string>& p) {
        std::vector<Artifact> out;
        out.push_back(Artifact{csv_filename, ArtifactKind::Csv,
                               csv_header + '\n' + section(p.at(0), "csv").value_or("")});
        out.push_back(Artifact{render_name(csv_filename), ArtifactKind::Render,
                               section(p.at(0), "render").value_or("")});
        return out;
    };
    return e;
}

// --- Fig. 2 (one experiment per generation, matching the legacy CSVs) ---

Experiment fig2_experiment(const SurveyTuning& t, const char* name,
                           arch::Generation generation, const char* csv_filename) {
    ExperimentSpec spec = base_spec(t, name, "all");
    spec.set_param("generation", std::string{arch::traits(generation).name});
    spec.set_param("window_s", seconds_str(t.fig2_window));
    const util::Time window = t.fig2_window;
    Experiment e = single_job(
        name,
        std::string{"Fig. 2 RAPL vs AC reference power, "} +
            std::string{arch::traits(generation).name},
        std::move(spec),
        [generation, window](const ExperimentSpec& s) {
            const auto r =
                survey::fig2_run(generation, window, s.job_seed(), s.audit_config());
            std::string csv;
            for (const auto& p : r.report.points) {
                csv += csv_row({p.workload, std::to_string(p.active_cores_per_socket),
                                std::to_string(p.threads_per_core),
                                Table::fmt(p.ac_watts, 2), Table::fmt(p.rapl_watts, 2)});
            }
            return BlobSections{{"csv", csv}, {"render", r.render()}};
        },
        csv_filename, "workload,cores_per_socket,threads_per_core,ac_watts,rapl_watts");
    e.generations = {generation};
    return e;
}

// --- Figs. 5/6 (per-generation jobs, result reconstructed for render) ---

std::string fig56_data_section(const std::vector<survey::CstateLatencySeries>& series) {
    std::string out;
    for (const auto& s : series) {
        out += "series " + std::to_string(static_cast<int>(s.generation)) + ' ' +
               std::to_string(static_cast<int>(s.scenario)) + ' ' +
               std::to_string(s.points.size()) + '\n';
        for (const auto& p : s.points) {
            out += fmt_full(p.freq_ghz) + ' ' + fmt_full(p.latency_us) + ' ' +
                   fmt_full(p.stddev_us) + '\n';
        }
    }
    return out;
}

std::vector<survey::CstateLatencySeries> parse_fig56_data(const std::string& data,
                                                          cstates::CState state) {
    std::vector<survey::CstateLatencySeries> out;
    std::istringstream in{data};
    std::string tag;
    while (in >> tag) {
        if (tag != "series") throw std::runtime_error{"fig56 data: bad tag " + tag};
        int generation = 0;
        int scenario = 0;
        std::size_t npoints = 0;
        in >> generation >> scenario >> npoints;
        survey::CstateLatencySeries series;
        series.generation = static_cast<arch::Generation>(generation);
        series.state = state;
        series.scenario = static_cast<cstates::WakeScenario>(scenario);
        for (std::size_t i = 0; i < npoints; ++i) {
            survey::CstateLatencyPoint p;
            in >> p.freq_ghz >> p.latency_us >> p.stddev_us;
            series.points.push_back(p);
        }
        if (!in) throw std::runtime_error{"fig56 data: truncated section"};
        out.push_back(std::move(series));
    }
    return out;
}

Experiment fig56_experiment(const SurveyTuning& t, const char* name,
                            cstates::CState state, const char* csv_filename,
                            std::vector<arch::Generation> gens,
                            std::string description) {
    Experiment e;
    e.name = name;
    e.description = std::move(description);
    // One job per generation, assembled in registration order -- fig56()
    // iterates Haswell-EP first, then the Sandy Bridge-EP comparison
    // series, so fig5/fig6 pass exactly that order for byte-identical
    // assembly; xgen_c6 appends Skylake-SP.
    e.generations = gens;
    const unsigned samples = t.fig56_samples;
    for (arch::Generation g : gens) {
        ExperimentSpec spec = base_spec(
            t, name, "generation=" + std::string{arch::traits(g).name});
        spec.set_param("state", std::string{cstates::name(state)});
        spec.set_param("samples", std::to_string(samples));
        Job job;
        job.spec = std::move(spec);
        job.run = [state, g, samples](const ExperimentSpec& s) {
            survey::CstateSweepConfig cfg;
            cfg.samples_per_point = samples;
            cfg.seed = s.job_seed();
            cfg.audit = s.audit_config();
            const auto series = survey::fig56_generation(state, g, cfg);
            std::string csv;
            for (const auto& ser : series) {
                for (const auto& p : ser.points) {
                    csv += csv_row({std::string{arch::traits(ser.generation).name},
                                    std::string{cstates::name(ser.scenario)},
                                    Table::fmt(p.freq_ghz, 1), Table::fmt(p.latency_us, 3),
                                    Table::fmt(p.stddev_us, 3)});
                }
            }
            return pack_sections(
                BlobSections{{"csv", csv}, {"data", fig56_data_section(series)}});
        };
        e.jobs.push_back(std::move(job));
    }
    e.assemble = [state, csv_filename = std::string{csv_filename}](
                     const std::vector<std::string>& payloads) {
        std::string csv = "generation,scenario,freq_ghz,latency_us,stddev_us\n";
        survey::CstateLatencyResult result;
        result.state = state;
        for (const auto& payload : payloads) {
            csv += section(payload, "csv").value_or("");
            auto series = parse_fig56_data(section(payload, "data").value_or(""), state);
            for (auto& s : series) result.series.push_back(std::move(s));
        }
        return std::vector<Artifact>{
            Artifact{csv_filename, ArtifactKind::Csv, std::move(csv)},
            Artifact{render_name(csv_filename), ArtifactKind::Render, result.render()}};
    };
    return e;
}

// --- Fig. 7 (per-generation jobs) ---

Experiment fig7_experiment(const SurveyTuning& t) {
    Experiment e;
    e.name = "fig7";
    e.description = "Fig. 7 relative L3/DRAM bandwidth vs frequency, three generations";
    const arch::Generation gens[] = {arch::Generation::WestmereEP,
                                     arch::Generation::SandyBridgeEP,
                                     arch::Generation::HaswellEP};
    e.generations.assign(std::begin(gens), std::end(gens));
    for (arch::Generation g : gens) {
        ExperimentSpec spec =
            base_spec(t, "fig7", "generation=" + std::string{arch::traits(g).name});
        Job job;
        job.spec = std::move(spec);
        job.run = [g](const ExperimentSpec& s) {
            const auto series =
                survey::fig7_generation(g, s.job_seed(), s.audit_config());
            std::string csv;
            std::string data = "series " +
                               std::to_string(static_cast<int>(series.generation)) + ' ' +
                               std::to_string(series.points.size()) + '\n';
            for (const auto& p : series.points) {
                csv += csv_row({std::string{arch::traits(series.generation).name},
                                Table::fmt(p.set_ghz, 2), Table::fmt(p.relative_l3, 4),
                                Table::fmt(p.relative_dram, 4)});
                data += fmt_full(p.set_ghz) + ' ' + fmt_full(p.relative_l3) + ' ' +
                        fmt_full(p.relative_dram) + '\n';
            }
            return pack_sections(BlobSections{{"csv", csv}, {"data", data}});
        };
        e.jobs.push_back(std::move(job));
    }
    e.assemble = [](const std::vector<std::string>& payloads) {
        std::string csv = "generation,set_ghz,relative_l3,relative_dram\n";
        survey::Fig7Result result;
        for (const auto& payload : payloads) {
            csv += section(payload, "csv").value_or("");
            std::istringstream in{section(payload, "data").value_or("")};
            std::string tag;
            int generation = 0;
            std::size_t npoints = 0;
            in >> tag >> generation >> npoints;
            if (tag != "series") throw std::runtime_error{"fig7 data: bad tag"};
            survey::RelativeBandwidthSeries series;
            series.generation = static_cast<arch::Generation>(generation);
            for (std::size_t i = 0; i < npoints; ++i) {
                survey::RelativeBandwidthPoint p;
                in >> p.set_ghz >> p.relative_l3 >> p.relative_dram;
                series.points.push_back(p);
            }
            if (!in) throw std::runtime_error{"fig7 data: truncated section"};
            result.series.push_back(std::move(series));
        }
        return std::vector<Artifact>{
            Artifact{"fig7_relative_bandwidth.csv", ArtifactKind::Csv, std::move(csv)},
            Artifact{"fig7_relative_bandwidth.txt", ArtifactKind::Render,
                     result.render()}};
    };
    return e;
}

// --- Table V (18 single-cell jobs) ---

const workloads::Workload& table5_workload(const std::string& name) {
    if (name == "FIRESTARTER") return workloads::firestarter();
    if (name == "LINPACK") return workloads::linpack();
    if (name == "mprime") return workloads::mprime();
    throw std::invalid_argument{"unknown Table V workload: " + name};
}

Experiment table5_experiment(const SurveyTuning& t) {
    Experiment e;
    e.name = "table5";
    e.description = "Table V node power maximization, 18 cells on own nodes";
    const char* workload_names[] = {"FIRESTARTER", "LINPACK", "mprime"};
    const std::pair<msr::EpbPolicy, const char*> epbs[] = {
        {msr::EpbPolicy::EnergySaving, "power"},
        {msr::EpbPolicy::Balanced, "bal"},
        {msr::EpbPolicy::Performance, "perf"}};
    const util::Time run_time = t.table5_run_time;
    const util::Time window = t.table5_window;
    for (const char* wl : workload_names) {
        for (bool turbo : {false, true}) {
            for (const auto& [epb, epb_name] : epbs) {
                ExperimentSpec spec =
                    base_spec(t, "table5",
                              std::string{wl} + '.' + (turbo ? "turbo" : "fixed") + '.' +
                                  epb_name);
                spec.set_param("workload", wl);
                spec.set_param("turbo", turbo ? "1" : "0");
                spec.set_param("epb", epb_name);
                spec.set_param("run_s", seconds_str(run_time));
                spec.set_param("window_s", seconds_str(window));
                Job job;
                job.spec = std::move(spec);
                job.run = [wl = std::string{wl}, turbo, epb, run_time,
                           window](const ExperimentSpec& s) {
                    survey::MaxPowerConfig cfg;
                    cfg.run_time = run_time;
                    cfg.window = window;
                    cfg.seed = s.job_seed();
                    const auto cell =
                        survey::table5_cell(table5_workload(wl), turbo, epb, cfg);
                    const std::string csv = csv_row(
                        {cell.workload, cell.turbo_setting ? "turbo" : "2.5", cell.epb,
                         Table::fmt(cell.ac_watts, 1), Table::fmt(cell.core_ghz, 2)});
                    const std::string data = "cell " + cell.workload + ' ' +
                                             (cell.turbo_setting ? "1" : "0") + ' ' +
                                             cell.epb + ' ' + fmt_full(cell.ac_watts) +
                                             ' ' + fmt_full(cell.core_ghz) + '\n';
                    return pack_sections(BlobSections{{"csv", csv}, {"data", data}});
                };
                e.jobs.push_back(std::move(job));
            }
        }
    }
    e.assemble = [](const std::vector<std::string>& payloads) {
        std::string csv = "workload,setting,epb,ac_watts,core_ghz\n";
        survey::MaxPowerResult result;
        for (const auto& payload : payloads) {
            csv += section(payload, "csv").value_or("");
            std::istringstream in{section(payload, "data").value_or("")};
            std::string tag;
            int turbo = 0;
            survey::MaxPowerCell cell;
            in >> tag >> cell.workload >> turbo >> cell.epb >> cell.ac_watts >>
                cell.core_ghz;
            if (!in || tag != "cell") throw std::runtime_error{"table5 data: bad cell"};
            cell.turbo_setting = turbo != 0;
            result.cells.push_back(std::move(cell));
        }
        return std::vector<Artifact>{
            Artifact{"table5_maxpower.csv", ArtifactKind::Csv, std::move(csv)},
            Artifact{"table5_maxpower.txt", ArtifactKind::Render, result.render()}};
    };
    return e;
}

}  // namespace

SurveyTuning SurveyTuning::quick() {
    SurveyTuning t;
    t.fig2_window = util::Time::sec(1);
    t.fig3_samples = 60;
    t.fig56_samples = 4;
    t.table3_dwell = util::Time::ms(200);
    t.table4_samples = 3;
    t.table5_run_time = util::Time::sec(2);
    t.table5_window = util::Time::sec(1);
    t.skx_settle = util::Time::ms(10);
    t.skx_window = util::Time::ms(50);
    return t;
}

std::vector<Experiment> survey_experiments(const SurveyTuning& t) {
    std::vector<Experiment> out;

    out.push_back(fig2_experiment(t, "fig2a", arch::Generation::SandyBridgeEP,
                                  "fig2a_sandy_bridge.csv"));
    out.push_back(
        fig2_experiment(t, "fig2b", arch::Generation::HaswellEP, "fig2b_haswell.csv"));
    out.push_back(fig2_experiment(t, "fig2c", arch::Generation::SkylakeSP,
                                  "fig2c_skylake_sp.csv"));

    {
        ExperimentSpec spec = base_spec(t, "fig3", "all");
        spec.set_param("samples", std::to_string(t.fig3_samples));
        const unsigned samples = t.fig3_samples;
        out.push_back(single_job(
            "fig3", "Fig. 3 p-state transition latency histograms", std::move(spec),
            [samples](const ExperimentSpec& s) {
                survey::PstateLatencyConfig cfg;
                cfg.samples = samples;
                cfg.seed = s.job_seed();
                cfg.audit = s.audit_config();
                const auto r = survey::fig3(cfg);
                std::string csv;
                for (const auto& ser : r.series) {
                    for (double v : ser.result.latencies_us) {
                        csv += csv_row({ser.label, Table::fmt(v, 2)});
                    }
                }
                return BlobSections{{"csv", csv}, {"render", r.render()}};
            },
            "fig3_pstate_latencies.csv", "series,latency_us"));
    }

    out.push_back(single_job(
        "fig4", "Fig. 4 p-state opportunity grid timeline", base_spec(t, "fig4", "all"),
        [](const ExperimentSpec& s) {
            const auto r = survey::fig4(s.job_seed(), s.audit_config());
            std::string csv;
            csv += csv_row({"same_socket_delta_us", Table::fmt(r.same_socket_delta_us, 3)});
            csv += csv_row({"cross_socket_delta_us",
                            Table::fmt(r.cross_socket_delta_us, 3)});
            csv += csv_row({"observed_period_us", Table::fmt(r.observed_period_us, 3)});
            return BlobSections{{"csv", csv}, {"render", r.render()}};
        },
        "fig4_opportunity.csv", "metric,value"));

    out.push_back(fig56_experiment(
        t, "fig5", cstates::CState::C3, "fig5_c3_latencies.csv",
        {arch::Generation::HaswellEP, arch::Generation::SandyBridgeEP},
        "Fig. 5 C3 wake-up latencies vs core frequency"));
    out.push_back(fig56_experiment(
        t, "fig6", cstates::CState::C6, "fig6_c6_latencies.csv",
        {arch::Generation::HaswellEP, arch::Generation::SandyBridgeEP},
        "Fig. 6 C6 wake-up latencies vs core frequency"));
    out.push_back(fig7_experiment(t));

    out.push_back(single_job(
        "fig8", "Fig. 8 bandwidth over the concurrency x frequency grid",
        base_spec(t, "fig8", "all"),
        [](const ExperimentSpec& s) {
            const auto r = survey::fig8(s.job_seed(), s.audit_config());
            std::string csv;
            for (std::size_t ti = 0; ti < r.threads.size(); ++ti) {
                for (std::size_t fi = 0; fi < r.set_ghz.size(); ++fi) {
                    csv += csv_row({std::to_string(r.threads[ti]),
                                    Table::fmt(r.set_ghz[fi], 1),
                                    Table::fmt(r.l3_gbs[ti][fi], 2),
                                    Table::fmt(r.dram_gbs[ti][fi], 2)});
                }
            }
            return BlobSections{{"csv", csv}, {"render", r.render()}};
        },
        "fig8_bandwidth_grid.csv", "threads,set_ghz,l3_gbs,dram_gbs"));

    {
        ExperimentSpec spec = base_spec(t, "table3", "all");
        spec.set_param("dwell_s", seconds_str(t.table3_dwell));
        const util::Time dwell = t.table3_dwell;
        out.push_back(single_job(
            "table3", "Table III uncore frequencies, active vs passive processor",
            std::move(spec),
            [dwell](const ExperimentSpec& s) {
                const auto r = survey::table3(dwell, s.job_seed());
                std::string csv;
                for (const auto& row : r.rows) {
                    csv += csv_row({row.turbo ? "turbo" : Table::fmt(row.set_ghz, 1),
                                    Table::fmt(row.active_uncore_ghz, 3),
                                    Table::fmt(row.passive_uncore_ghz, 3),
                                    Table::fmt(row.active_uncore_perf_epb_ghz, 3)});
                }
                return BlobSections{{"csv", csv}, {"render", r.render()}};
            },
            "table3_uncore.csv",
            "setting,active_uncore_ghz,passive_uncore_ghz,active_uncore_perf_epb_ghz"));
    }

    {
        ExperimentSpec spec = base_spec(t, "table4", "all");
        spec.set_param("samples", std::to_string(t.table4_samples));
        const unsigned samples = t.table4_samples;
        out.push_back(single_job(
            "table4", "Table IV FIRESTARTER frequency-setting sweep", std::move(spec),
            [samples](const ExperimentSpec& s) {
                survey::FirestarterSweepConfig cfg;
                cfg.samples = samples;
                cfg.seed = s.job_seed();
                const auto r = survey::table4(cfg);
                std::string csv;
                for (const auto& row : r.rows) {
                    csv += csv_row({row.turbo ? "turbo" : Table::fmt(row.set_ghz, 1),
                                    Table::fmt(row.core_ghz[0], 3),
                                    Table::fmt(row.core_ghz[1], 3),
                                    Table::fmt(row.uncore_ghz[0], 3),
                                    Table::fmt(row.uncore_ghz[1], 3),
                                    Table::fmt(row.gips[0], 3),
                                    Table::fmt(row.gips[1], 3),
                                    Table::fmt(row.rapl_pkg_watts[0], 3),
                                    Table::fmt(row.rapl_pkg_watts[1], 3)});
                }
                return BlobSections{{"csv", csv}, {"render", r.render()}};
            },
            "table4_firestarter.csv",
            "setting,core_ghz_p0,core_ghz_p1,uncore_ghz_p0,uncore_ghz_p1,"
            "gips_p0,gips_p1,rapl_pkg_w_p0,rapl_pkg_w_p1"));
    }

    out.push_back(table5_experiment(t));

    // --- cross-generation extensions (Skylake-SP platform backend) ---

    out.push_back(fig56_experiment(
        t, "xgen_c6", cstates::CState::C6, "xgen_c6_latencies.csv",
        {arch::Generation::HaswellEP, arch::Generation::SandyBridgeEP,
         arch::Generation::SkylakeSP},
        "Cross-generation C6 wake-up latencies (Haswell-EP, Sandy Bridge-EP, "
        "Skylake-SP)"));

    {
        ExperimentSpec spec = base_spec(t, "skx_hwp", "all");
        spec.set_param("generation",
                       std::string{arch::traits(arch::Generation::SkylakeSP).name});
        spec.set_param("settle_s", seconds_str(t.skx_settle));
        spec.set_param("window_s", seconds_str(t.skx_window));
        const util::Time settle = t.skx_settle;
        const util::Time window = t.skx_window;
        Experiment e = single_job(
            "skx_hwp", "Skylake-SP HWP/EPP ladder under FIRESTARTER", std::move(spec),
            [settle, window](const ExperimentSpec& s) {
                survey::SkxSweepConfig cfg;
                cfg.settle = settle;
                cfg.window = window;
                cfg.seed = s.job_seed();
                cfg.audit = s.audit_config();
                const auto r = survey::skx_hwp_epp(cfg);
                std::string csv;
                for (const auto& p : r.points) {
                    csv += csv_row({std::to_string(p.epp), Table::fmt(p.core_ghz, 3),
                                    Table::fmt(p.uncore_ghz, 3),
                                    Table::fmt(p.rapl_pkg_watts, 2)});
                }
                return BlobSections{{"csv", csv}, {"render", r.render()}};
            },
            "skx_hwp_epp.csv", "epp,core_ghz,uncore_ghz,rapl_pkg_watts");
        e.generations = {arch::Generation::SkylakeSP};
        out.push_back(std::move(e));
    }

    {
        ExperimentSpec spec = base_spec(t, "skx_avx512", "all");
        spec.set_param("generation",
                       std::string{arch::traits(arch::Generation::SkylakeSP).name});
        spec.set_param("settle_s", seconds_str(t.skx_settle));
        spec.set_param("window_s", seconds_str(t.skx_window));
        const util::Time settle = t.skx_settle;
        const util::Time window = t.skx_window;
        Experiment e = single_job(
            "skx_avx512", "Skylake-SP AVX-512 license levels vs 512-bit density",
            std::move(spec),
            [settle, window](const ExperimentSpec& s) {
                survey::SkxSweepConfig cfg;
                cfg.settle = settle;
                cfg.window = window;
                cfg.seed = s.job_seed();
                cfg.audit = s.audit_config();
                const auto r = survey::skx_avx512_license(cfg);
                std::string csv;
                for (const auto& p : r.points) {
                    csv += csv_row({Table::fmt(p.avx512_fraction, 2),
                                    std::to_string(p.license_level),
                                    Table::fmt(p.core_ghz, 3),
                                    Table::fmt(p.rapl_pkg_watts, 2)});
                }
                return BlobSections{{"csv", csv}, {"render", r.render()}};
            },
            "skx_avx512_license.csv",
            "avx512_fraction,license_level,core_ghz,rapl_pkg_watts");
        e.generations = {arch::Generation::SkylakeSP};
        out.push_back(std::move(e));
    }

    return out;
}

const Experiment* find_experiment(const std::vector<Experiment>& experiments,
                                  std::string_view name) {
    for (const auto& e : experiments) {
        if (e.name == name) return &e;
    }
    return nullptr;
}

JobIndex::JobIndex(const std::vector<Experiment>& experiments) {
    for (const auto& e : experiments) {
        for (const auto& job : e.jobs) by_hash_.emplace(job.spec.hash_hex(), &job);
    }
}

const Job* JobIndex::find(std::string_view hash_hex) const {
    const auto it = by_hash_.find(std::string{hash_hex});
    return it == by_hash_.end() ? nullptr : it->second;
}

const Job* JobIndex::find(const ExperimentSpec& spec) const {
    return find(spec.hash_hex());
}

}  // namespace hsw::engine
