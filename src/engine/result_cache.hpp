// Content-addressed on-disk result cache.
//
// Key = SHA-256 of the ExperimentSpec's canonical text; one file per entry
// under the cache directory, named "<hash-hex>.result". Entries embed a
// code-version salt (bumped whenever driver semantics change), the full
// spec text (collision guard and inspectability) and the payload's own
// SHA-256, so a stale, truncated or bit-flipped entry always reads as a
// miss -- the engine then recomputes and rewrites it. Stores are atomic
// (write to a temp file, then rename), which keeps concurrent survey runs
// over one cache directory safe.
//
// Thread safety: no mutex on purpose. Cross-thread coordination is the
// filesystem's rename atomicity; in-process state is three relaxed atomic
// counters with no invariant between them.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "engine/spec.hpp"
#include "util/version.hpp"

namespace hsw::engine {

/// Salt mixed into every cache entry. Bump when any experiment driver or
/// the blob/spec format changes in a way that alters result bytes --
/// existing caches then invalidate wholesale instead of serving stale data.
/// Defined in util/version.hpp so bench metadata stamps the same string.
inline constexpr std::string_view kCodeVersion = util::kEngineCodeVersion;

class ResultCache {
public:
    /// Probe/store tallies since construction. `misses` counts every load
    /// that returned nullopt -- absent entries and entries rejected as
    /// stale/corrupt alike -- so `stores - misses` over a run exposes
    /// redundant recomputation.
    struct Counters {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
    };

    /// Creates `dir` (and parents) on first store; `salt` defaults to
    /// kCodeVersion and is overridable for tests.
    explicit ResultCache(std::filesystem::path dir,
                         std::string salt = std::string{kCodeVersion});

    /// The payload stored for `spec`, or nullopt on miss. A present but
    /// unreadable entry (wrong salt, wrong spec, truncation, corruption)
    /// is a miss, never an error.
    [[nodiscard]] std::optional<std::string> load(const ExperimentSpec& spec) const;

    /// Atomically (re)writes the entry for `spec`.
    void store(const ExperimentSpec& spec, std::string_view payload) const;

    [[nodiscard]] std::filesystem::path entry_path(const ExperimentSpec& spec) const;
    [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }
    [[nodiscard]] const std::string& salt() const { return salt_; }

    /// Snapshot of the probe/store counters; safe to call while other
    /// threads load and store.
    [[nodiscard]] Counters counters() const;

private:
    /// load() minus the counter bookkeeping.
    [[nodiscard]] std::optional<std::string> read_entry(const ExperimentSpec& spec) const;

    std::filesystem::path dir_;
    std::string salt_;
    // Counters, not state: load()/store() stay logically const.
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
};

}  // namespace hsw::engine
