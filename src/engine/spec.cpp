#include "engine/spec.hpp"

#include <algorithm>
#include <cstdio>

#include "util/rng.hpp"

namespace hsw::engine {

std::string_view name(analysis::AuditMode mode) {
    switch (mode) {
        case analysis::AuditMode::Off: return "off";
        case analysis::AuditMode::Warn: return "warn";
        case analysis::AuditMode::Strict: return "strict";
    }
    return "off";
}

void ExperimentSpec::set_param(std::string name, std::string value) {
    const auto pos = std::lower_bound(
        params_.begin(), params_.end(), name,
        [](const auto& entry, const std::string& key) { return entry.first < key; });
    if (pos != params_.end() && pos->first == name) {
        pos->second = std::move(value);
    } else {
        params_.emplace(pos, std::move(name), std::move(value));
    }
}

const std::string* ExperimentSpec::param(std::string_view name) const {
    for (const auto& [key, value] : params_) {
        if (key == name) return &value;
    }
    return nullptr;
}

std::string ExperimentSpec::canonical_text() const {
    std::string out = "hsw-experiment-spec v1\n";
    out += "experiment=" + experiment + "\n";
    out += "point=" + point + "\n";
    char seed_buf[32];
    std::snprintf(seed_buf, sizeof seed_buf, "seed=0x%016llx\n",
                  static_cast<unsigned long long>(base_seed));
    out += seed_buf;
    out += "audit=";
    out += name(audit);
    out += "\n";
    for (const auto& [key, value] : params_) {
        out += "param." + key + "=" + value + "\n";
    }
    return out;
}

Sha256Digest ExperimentSpec::hash() const { return sha256(canonical_text()); }

std::string ExperimentSpec::hash_hex() const { return hex(hash()); }

std::uint64_t ExperimentSpec::hash64() const { return digest_prefix64(hash()); }

std::uint64_t ExperimentSpec::job_seed() const {
    return util::Rng::derive(hash64(), "engine/job-seed");
}

analysis::AuditConfig ExperimentSpec::audit_config() const {
    analysis::AuditConfig cfg;
    cfg.mode = audit;
    return cfg;
}

std::string ExperimentSpec::label() const { return experiment + "/" + point; }

}  // namespace hsw::engine
