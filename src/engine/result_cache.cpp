#include "engine/result_cache.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace hsw::engine {

namespace {

constexpr std::string_view kMagic = "HSWRESULT v1\n";

/// "key value" line reader; false when the line is absent or mislabeled.
bool read_field(std::istream& in, std::string_view key, std::string& value) {
    std::string line;
    if (!std::getline(in, line)) return false;
    if (line.size() < key.size() + 1 || line.compare(0, key.size(), key) != 0 ||
        line[key.size()] != ' ') {
        return false;
    }
    value = line.substr(key.size() + 1);
    return true;
}

bool parse_size(const std::string& text, std::size_t& out) {
    if (text.empty()) return false;
    std::size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        if (value > (static_cast<std::size_t>(-1) - 9) / 10) return false;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    out = value;
    return true;
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir, std::string salt)
    : dir_{std::move(dir)}, salt_{std::move(salt)} {}

std::filesystem::path ResultCache::entry_path(const ExperimentSpec& spec) const {
    return dir_ / (spec.hash_hex() + ".result");
}

std::optional<std::string> ResultCache::load(const ExperimentSpec& spec) const {
    std::optional<std::string> payload = read_entry(spec);
    (payload ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c_hits =
        obs::counter("hsw_result_cache_hits", "Disk result-cache verified hits");
    static obs::Counter& c_misses = obs::counter(
        "hsw_result_cache_misses", "Disk result-cache misses (absent or corrupt)");
    (payload ? c_hits : c_misses).inc();
    return payload;
}

std::optional<std::string> ResultCache::read_entry(const ExperimentSpec& spec) const {
    std::ifstream in{entry_path(spec), std::ios::binary};
    if (!in) return std::nullopt;

    std::string magic(kMagic.size(), '\0');
    if (!in.read(magic.data(), static_cast<std::streamsize>(magic.size())) ||
        magic != kMagic) {
        return std::nullopt;
    }

    std::string salt, spec_bytes_text, payload_bytes_text, payload_digest;
    if (!read_field(in, "salt", salt) || salt != salt_) return std::nullopt;
    if (!read_field(in, "spec-bytes", spec_bytes_text)) return std::nullopt;
    if (!read_field(in, "payload-bytes", payload_bytes_text)) return std::nullopt;
    if (!read_field(in, "payload-sha256", payload_digest)) return std::nullopt;

    std::size_t spec_bytes = 0;
    std::size_t payload_bytes = 0;
    if (!parse_size(spec_bytes_text, spec_bytes) ||
        !parse_size(payload_bytes_text, payload_bytes)) {
        return std::nullopt;
    }

    std::string spec_text(spec_bytes, '\0');
    if (!in.read(spec_text.data(), static_cast<std::streamsize>(spec_bytes)) ||
        spec_text != spec.canonical_text()) {
        return std::nullopt;
    }

    std::string payload(payload_bytes, '\0');
    if (!in.read(payload.data(), static_cast<std::streamsize>(payload_bytes))) {
        return std::nullopt;  // truncated entry -> recompute, never crash
    }
    if (in.get() != std::char_traits<char>::eof()) return std::nullopt;  // trailing junk
    if (sha256_hex(payload) != payload_digest) return std::nullopt;
    return payload;
}

void ResultCache::store(const ExperimentSpec& spec, std::string_view payload) const {
    std::filesystem::create_directories(dir_);
    const std::filesystem::path final_path = entry_path(spec);
    // Unique-enough temp name: concurrent writers of the *same* spec write
    // identical bytes, so the last rename winning is harmless.
    const std::filesystem::path tmp_path =
        final_path.string() + ".tmp" + std::to_string(spec.hash64() & 0xFFFF);

    const std::string spec_text = spec.canonical_text();
    {
        std::ofstream out{tmp_path, std::ios::binary | std::ios::trunc};
        if (!out) {
            throw std::runtime_error{"result cache: cannot write " + tmp_path.string()};
        }
        out << kMagic;
        out << "salt " << salt_ << "\n";
        out << "spec-bytes " << spec_text.size() << "\n";
        out << "payload-bytes " << payload.size() << "\n";
        out << "payload-sha256 " << sha256_hex(payload) << "\n";
        out << spec_text;
        out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        if (!out) {
            throw std::runtime_error{"result cache: short write to " + tmp_path.string()};
        }
    }
    std::filesystem::rename(tmp_path, final_path);
    stores_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c_stores =
        obs::counter("hsw_result_cache_stores", "Disk result-cache entries written");
    c_stores.inc();
}

ResultCache::Counters ResultCache::counters() const {
    Counters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.stores = stores_.load(std::memory_order_relaxed);
    return c;
}

}  // namespace hsw::engine
