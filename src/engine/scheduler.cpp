#include "engine/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace hsw::engine {

namespace {
obs::Counter& tasks_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_engine_tasks", "Scheduler task executions (including retry attempts)");
    return c;
}
obs::Counter& steals_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_engine_steals", "Tasks taken from another worker's deque");
    return c;
}
obs::Counter& retries_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_engine_retries", "Failed tasks re-queued for another attempt");
    return c;
}
obs::Counter& failures_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_engine_failures", "Tasks that exhausted retries or the deadline");
    return c;
}
}  // namespace

struct Scheduler::Batch {
    std::vector<Task> tasks;
    std::vector<JobOutcome> outcomes;
    // One deque + lock per worker; owner pops back, thieves pop front.
    // (A GUARDED_BY tying deques[i] to locks[i] is inexpressible; hsw_lint's
    // lock-across-io rule and the TSan stress test cover this pairing.)
    std::vector<std::deque<std::size_t>> deques;
    std::vector<util::Mutex> locks;
    util::Mutex listener_lock;
    std::atomic<std::size_t> remaining{0};
    std::chrono::steady_clock::time_point started;

    Batch(std::vector<Task> t, std::size_t workers)
        : tasks{std::move(t)},
          outcomes(tasks.size()),
          deques(workers),
          locks(workers),
          remaining{tasks.size()},
          started{std::chrono::steady_clock::now()} {}
};

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_{cfg} {
    cfg_.threads = std::max(1u, cfg_.threads);
    cfg_.max_attempts = std::max(1u, cfg_.max_attempts);
}

bool Scheduler::next_task(Batch& batch, std::size_t worker, std::size_t& out_index) {
    {
        util::LockGuard lock{batch.locks[worker]};
        auto& own = batch.deques[worker];
        if (!own.empty()) {
            out_index = own.back();
            own.pop_back();
            return true;
        }
    }
    for (std::size_t i = 1; i < batch.deques.size(); ++i) {
        const std::size_t victim = (worker + i) % batch.deques.size();
        util::LockGuard lock{batch.locks[victim]};
        auto& other = batch.deques[victim];
        if (!other.empty()) {
            out_index = other.front();
            other.pop_front();
            steals_counter().inc();
            return true;
        }
    }
    return false;
}

void Scheduler::work(Batch& batch, std::size_t worker) {
    while (batch.remaining.load(std::memory_order_acquire) > 0) {
        std::size_t index = 0;
        if (!next_task(batch, worker, index)) {
            // Nothing to grab, but tasks still in flight elsewhere may yet
            // fail and re-queue -- stay alive until `remaining` hits zero.
            std::this_thread::yield();
            continue;
        }

        auto& outcome = batch.outcomes[index];
        outcome.index = index;
        ++outcome.attempts;
        progress_.running.fetch_add(1, std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        std::string error;
        bool ok = true;
        try {
            obs::trace::Span span{"engine.task", "engine"};
            batch.tasks[index]();
        } catch (const std::exception& e) {
            ok = false;
            error = e.what();
        } catch (...) {
            ok = false;
            error = "unknown exception";
        }
        const auto t1 = std::chrono::steady_clock::now();
        outcome.wall_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        progress_.running.fetch_sub(1, std::memory_order_relaxed);
        tasks_counter().inc();

        if (!ok) {
            outcome.error = error;
            const bool attempts_left = outcome.attempts < cfg_.max_attempts;
            const bool before_deadline =
                cfg_.retry_deadline.count() == 0 ||
                t1 - batch.started < cfg_.retry_deadline;
            if (attempts_left && before_deadline) {
                progress_.retries.fetch_add(1, std::memory_order_relaxed);
                retries_counter().inc();
                util::LockGuard lock{batch.locks[worker]};
                batch.deques[worker].push_back(index);
                continue;  // not finished -- remaining stays up
            }
            progress_.failed.fetch_add(1, std::memory_order_relaxed);
            failures_counter().inc();
        }
        outcome.ok = ok;

        if (listener_) {
            util::LockGuard lock{batch.listener_lock};
            listener_(outcome);
        }
        progress_.done.fetch_add(1, std::memory_order_relaxed);
        batch.remaining.fetch_sub(1, std::memory_order_release);
    }
}

std::vector<JobOutcome> Scheduler::run(std::vector<Task> tasks) {
    const std::size_t workers =
        std::min<std::size_t>(cfg_.threads, std::max<std::size_t>(1, tasks.size()));
    Batch batch{std::move(tasks), workers};
    progress_.queued.store(batch.tasks.size(), std::memory_order_relaxed);

    for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
        batch.deques[i % workers].push_back(i);
    }

    if (workers == 1) {
        work(batch, 0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([this, &batch, w] { work(batch, w); });
        }
        for (auto& t : pool) t.join();
    }
    return std::move(batch.outcomes);
}

}  // namespace hsw::engine
