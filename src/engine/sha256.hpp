// SHA-256 (FIPS 180-4), self-contained.
//
// The engine content-addresses experiment results: the cache key is the
// digest of an ExperimentSpec's canonical serialization (plus the code
// version salt), and every cache entry carries the digest of its payload so
// truncation or bit rot reads as a miss instead of poisoning a survey run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace hsw::engine {

using Sha256Digest = std::array<std::uint8_t, 32>;

[[nodiscard]] Sha256Digest sha256(std::string_view data);

/// Lowercase hex rendering (64 chars).
[[nodiscard]] std::string hex(const Sha256Digest& digest);

[[nodiscard]] std::string sha256_hex(std::string_view data);

/// First eight digest bytes as a big-endian integer (for seed derivation).
[[nodiscard]] std::uint64_t digest_prefix64(const Sha256Digest& digest);

}  // namespace hsw::engine
