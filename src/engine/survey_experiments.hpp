// The full Fig. 2-8 / Table III-V survey expressed as engine Experiments.
//
// Each experiment is decomposed into its independent sweep points (one node
// per job, nothing shared), so the scheduler can fan them across cores:
// Table V contributes 18 single-cell jobs, Figs. 5/6 one job per
// generation, Fig. 7 one per generation; stateful single-node sweeps
// (Fig. 3, Fig. 8, Tables III/IV) stay single jobs. Assembly concatenates
// fragments in point order, so outputs are byte-identical to the serial
// drivers run with the same derived seeds.
#pragma once

#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/audit_config.hpp"
#include "engine/engine.hpp"
#include "util/units.hpp"

namespace hsw::engine {

/// Everything that parameterizes the survey besides the experiment
/// structure itself. Every field is folded into each job's ExperimentSpec,
/// so changing any value invalidates exactly the affected cache entries.
struct SurveyTuning {
    std::uint64_t seed = 0xC0FFEE;
    analysis::AuditMode audit = analysis::AuditMode::Off;

    util::Time fig2_window = util::Time::sec(4);
    unsigned fig3_samples = 1000;
    unsigned fig56_samples = 40;        // per sweep point
    util::Time table3_dwell = util::Time::sec(1);
    unsigned table4_samples = 50;       // one-second LIKWID samples
    util::Time table5_run_time = util::Time::sec(70);
    util::Time table5_window = util::Time::sec(60);  // the paper's 1-minute window
    util::Time skx_settle = util::Time::ms(50);      // Skylake-SP sweeps: per-point
    util::Time skx_window = util::Time::ms(500);     //   settle / measure window

    /// Heavily reduced sampling for smoke tests and determinism checks --
    /// same structure and job fan-out, a fraction of the wall time.
    [[nodiscard]] static SurveyTuning quick();
};

/// All fifteen survey experiments (fig2a fig2b fig2c fig3 fig4 fig5 fig6
/// fig7 fig8 table3 table4 table5 xgen_c6 skx_hwp skx_avx512): the paper's
/// figures and tables in publication order, then the cross-generation
/// extensions on the Skylake-SP platform backend.
[[nodiscard]] std::vector<Experiment> survey_experiments(const SurveyTuning& tuning = {});

/// nullptr when no experiment has that name.
[[nodiscard]] const Experiment* find_experiment(const std::vector<Experiment>& experiments,
                                                std::string_view name);

/// Content-addressed job lookup: every job of every experiment, indexed by
/// its spec's full SHA-256 (hex). This is how a long-lived service resolves
/// an incoming spec to runnable code -- two specs with the same hash are
/// the same job, by the engine's determinism contract. The index borrows
/// the experiments vector; it must outlive the index.
class JobIndex {
public:
    explicit JobIndex(const std::vector<Experiment>& experiments);

    /// nullptr when no registered job has that spec hash.
    [[nodiscard]] const Job* find(std::string_view hash_hex) const;
    [[nodiscard]] const Job* find(const ExperimentSpec& spec) const;
    [[nodiscard]] std::size_t size() const { return by_hash_.size(); }

private:
    std::unordered_map<std::string, const Job*> by_hash_;
};

}  // namespace hsw::engine
