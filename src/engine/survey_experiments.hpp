// The full Fig. 2-8 / Table III-V survey expressed as engine Experiments.
//
// Each experiment is decomposed into its independent sweep points (one node
// per job, nothing shared), so the scheduler can fan them across cores:
// Table V contributes 18 single-cell jobs, Figs. 5/6 one job per
// generation, Fig. 7 one per generation; stateful single-node sweeps
// (Fig. 3, Fig. 8, Tables III/IV) stay single jobs. Assembly concatenates
// fragments in point order, so outputs are byte-identical to the serial
// drivers run with the same derived seeds.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/audit_config.hpp"
#include "engine/engine.hpp"
#include "util/units.hpp"

namespace hsw::engine {

/// Everything that parameterizes the survey besides the experiment
/// structure itself. Every field is folded into each job's ExperimentSpec,
/// so changing any value invalidates exactly the affected cache entries.
struct SurveyTuning {
    std::uint64_t seed = 0xC0FFEE;
    analysis::AuditMode audit = analysis::AuditMode::Off;

    util::Time fig2_window = util::Time::sec(4);
    unsigned fig3_samples = 1000;
    unsigned fig56_samples = 40;        // per sweep point
    util::Time table3_dwell = util::Time::sec(1);
    unsigned table4_samples = 50;       // one-second LIKWID samples
    util::Time table5_run_time = util::Time::sec(70);
    util::Time table5_window = util::Time::sec(60);  // the paper's 1-minute window

    /// Heavily reduced sampling for smoke tests and determinism checks --
    /// same structure and job fan-out, a fraction of the wall time.
    [[nodiscard]] static SurveyTuning quick();
};

/// All eleven survey experiments (fig2a fig2b fig3 fig4 fig5 fig6 fig7
/// fig8 table3 table4 table5), in publication order.
[[nodiscard]] std::vector<Experiment> survey_experiments(const SurveyTuning& tuning = {});

/// nullptr when no experiment has that name.
[[nodiscard]] const Experiment* find_experiment(const std::vector<Experiment>& experiments,
                                                std::string_view name);

}  // namespace hsw::engine
