#include "pcu/hwp.hpp"

#include <algorithm>
#include <cmath>

namespace hsw::pcu {

HwpCapabilities capabilities_for(const arch::Sku& sku) {
    HwpCapabilities caps;
    caps.highest = sku.max_turbo(1).ratio();
    caps.guaranteed = sku.nominal_frequency.ratio();
    caps.lowest = sku.min_frequency.ratio();
    // The most-efficient point sits a few bins above the minimum (leakage
    // dominates below it), never above the guaranteed ratio.
    caps.most_efficient = std::min(caps.lowest + 3, caps.guaranteed);
    return caps;
}

unsigned resolve_hwp_ratio(const HwpCapabilities& caps, const HwpRequest& req) {
    const unsigned lo = caps.lowest;
    const unsigned hi = caps.highest;
    const unsigned eff_min = std::clamp(req.min_ratio == 0 ? lo : req.min_ratio, lo, hi);
    const unsigned eff_max =
        std::clamp(req.max_ratio == 0 ? hi : req.max_ratio, eff_min, hi);
    if (req.desired_ratio != 0) {
        return std::clamp(req.desired_ratio, eff_min, eff_max);
    }
    // Autonomous selection: the EPP ladder walks linearly from the window
    // maximum (any EPP below 64, the "performance" band) down to the window
    // minimum at EPP 255.
    if (req.epp < 64) return eff_max;
    const double t = static_cast<double>(req.epp - 64) / (255.0 - 64.0);
    const unsigned back =
        static_cast<unsigned>(std::lround(t * static_cast<double>(eff_max - eff_min)));
    return eff_max - back;
}

msr::EpbPolicy epp_to_epb(unsigned epp) {
    if (epp < 64) return msr::EpbPolicy::Performance;
    if (epp < 192) return msr::EpbPolicy::Balanced;
    return msr::EpbPolicy::EnergySaving;
}

}  // namespace hsw::pcu
