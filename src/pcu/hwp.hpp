// Hardware-managed p-states (Skylake-SP; SDM Vol. 3 section 14.4).
//
// Under HWP the OS no longer requests a single ratio through IA32_PERF_CTL;
// it programs a window (min/max), an optional explicit desired ratio, and an
// energy-performance preference (EPP, 0 = performance .. 255 = energy) into
// IA32_HWP_REQUEST, and the PCU picks the operating point autonomously.
// This header models the register encodings and the deterministic resolve
// the simulated Skylake-SP PCU applies each opportunity tick.
#pragma once

#include <cstdint>

#include "arch/sku.hpp"
#include "msr/msr_file.hpp"

namespace hsw::pcu {

/// Decoded IA32_HWP_REQUEST fields. Ratios are in 100 MHz units.
struct HwpRequest {
    unsigned min_ratio = 0;      // bits 7:0  (0 = use the lowest capability)
    unsigned max_ratio = 0;      // bits 15:8 (0 = use the highest capability)
    unsigned desired_ratio = 0;  // bits 23:16 (0 = autonomous, EPP decides)
    unsigned epp = 128;          // bits 31:24
};

[[nodiscard]] constexpr HwpRequest decode_hwp_request(std::uint64_t raw) {
    return HwpRequest{
        static_cast<unsigned>(raw & 0xFF),
        static_cast<unsigned>((raw >> 8) & 0xFF),
        static_cast<unsigned>((raw >> 16) & 0xFF),
        static_cast<unsigned>((raw >> 24) & 0xFF),
    };
}

[[nodiscard]] constexpr std::uint64_t encode_hwp_request(const HwpRequest& r) {
    return (static_cast<std::uint64_t>(r.epp & 0xFF) << 24) |
           (static_cast<std::uint64_t>(r.desired_ratio & 0xFF) << 16) |
           (static_cast<std::uint64_t>(r.max_ratio & 0xFF) << 8) |
           (static_cast<std::uint64_t>(r.min_ratio & 0xFF));
}

/// IA32_HWP_CAPABILITIES: the performance range the hardware advertises.
struct HwpCapabilities {
    unsigned highest = 0;         // bits 7:0
    unsigned guaranteed = 0;      // bits 15:8
    unsigned most_efficient = 0;  // bits 23:16
    unsigned lowest = 0;          // bits 31:24
};

[[nodiscard]] constexpr std::uint64_t encode_hwp_capabilities(const HwpCapabilities& c) {
    return (static_cast<std::uint64_t>(c.lowest & 0xFF) << 24) |
           (static_cast<std::uint64_t>(c.most_efficient & 0xFF) << 16) |
           (static_cast<std::uint64_t>(c.guaranteed & 0xFF) << 8) |
           (static_cast<std::uint64_t>(c.highest & 0xFF));
}

[[nodiscard]] constexpr HwpCapabilities decode_hwp_capabilities(std::uint64_t raw) {
    return HwpCapabilities{
        static_cast<unsigned>(raw & 0xFF),
        static_cast<unsigned>((raw >> 8) & 0xFF),
        static_cast<unsigned>((raw >> 16) & 0xFF),
        static_cast<unsigned>((raw >> 24) & 0xFF),
    };
}

/// Capability range for a SKU: highest = 1-core turbo, guaranteed = nominal,
/// lowest = the minimum p-state, most-efficient a little above it.
[[nodiscard]] HwpCapabilities capabilities_for(const arch::Sku& sku);

/// The ratio the PCU grants for one request: an explicit desired ratio is
/// clamped into the effective [min, max] window; otherwise the EPP ladder
/// picks a point in the window, monotone non-increasing in EPP
/// (EPP < 64 always yields the window maximum).
[[nodiscard]] unsigned resolve_hwp_ratio(const HwpCapabilities& caps, const HwpRequest& req);

/// Collapse an EPP value onto the coarse bias tiers the shared PCU pipeline
/// understands (performance / balanced / energy saving).
[[nodiscard]] msr::EpbPolicy epp_to_epb(unsigned epp);

}  // namespace hsw::pcu
