#include "pcu/avx_license.hpp"

#include "arch/calibration.hpp"

namespace hsw::pcu {

namespace cal = hsw::arch::cal;

void AvxLicense::update(double avx_fraction, Time now) {
    const bool avx_active = avx_fraction >= kLicenseThreshold;
    if (avx_active) {
        last_avx_seen_ = now;
        if (!licensed_) {
            licensed_ = true;
            ramp_end_ = now + kRampDuration;
        }
        return;
    }
    // "The PCU returns to regular (non-AVX) operating mode 1 ms after AVX
    // instructions are completed."
    if (licensed_ && now - last_avx_seen_ >= cal::kAvxRelaxDelay) {
        licensed_ = false;
    }
}

}  // namespace hsw::pcu
