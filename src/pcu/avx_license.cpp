#include "pcu/avx_license.hpp"

#include "arch/calibration.hpp"

namespace hsw::pcu {

namespace cal = hsw::arch::cal;

void AvxLicense::update(double avx_fraction, Time now) {
    const bool avx_active = avx_fraction >= kLicenseThreshold;
    if (avx_active) {
        last_avx_seen_ = now;
        if (!licensed_) {
            licensed_ = true;
            ramp_end_ = now + kRampDuration;
        }
        return;
    }
    // "The PCU returns to regular (non-AVX) operating mode 1 ms after AVX
    // instructions are completed."
    if (licensed_ && now - last_avx_seen_ >= cal::kAvxRelaxDelay) {
        licensed_ = false;
    }
}

void AvxLicenseLevels::update(double avx_fraction, double avx512_fraction, Time now) {
    unsigned demanded = 0;
    if (avx512_fraction >= kAvx512Threshold) {
        demanded = kMaxLevel;
    } else if (avx_fraction >= AvxLicense::kLicenseThreshold) {
        demanded = 1;
    }
    if (demanded >= level_) last_at_or_above_ = now;
    if (demanded > level_) {
        level_ = demanded;
        ramp_end_ = now + AvxLicense::kRampDuration;
        return;
    }
    // Same relax rule as the single license: 1 ms after the demand last
    // covered the held level, drop -- but only one level per expiry.
    if (demanded < level_ && now - last_at_or_above_ >= cal::kAvxRelaxDelay) {
        --level_;
        last_at_or_above_ = now;
    }
}

}  // namespace hsw::pcu
