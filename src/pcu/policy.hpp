// Generation hooks into the PCU firmware model.
//
// The PCU evaluation pipeline (caps, EET, budget loop, dither) is shared
// across processor generations; what differs is the uncore grant policy,
// whether HWP request windows are honored, how many AVX license levels
// exist and what voltage each one costs. A PlatformBackend (src/platform/)
// supplies a PcuPolicy; pcu itself only knows the abstract interface, so
// the layering stays pcu -> {arch, msr, power, util}.
#pragma once

#include "pcu/uncore_scaling.hpp"

namespace hsw::pcu {

class PcuPolicy {
public:
    virtual ~PcuPolicy() = default;

    /// Uncore decision for one opportunity-grid evaluation. The default is
    /// the Haswell UFS policy (Sections II-D, V-A).
    [[nodiscard]] virtual UfsDecision uncore(const UfsInputs& in) const {
        return uncore_policy(in);
    }

    /// True when the PCU honors IA32_HWP_REQUEST windows (Skylake-SP+).
    [[nodiscard]] virtual bool hwp_capable() const { return false; }

    /// Highest AVX license level: 1 = the 256-bit license only (Haswell),
    /// 2 adds the AVX-512 license (Skylake-SP).
    [[nodiscard]] virtual unsigned max_license_level() const { return 1; }

    /// Voltage adder applied while a core holds `level`.
    [[nodiscard]] virtual double license_voltage_adder_volts(unsigned level) const;

    /// True when the uncore clock is granted per die cluster (Skylake-SP
    /// sub-NUMA clustering) rather than package-wide.
    [[nodiscard]] virtual bool per_die_uncore() const { return false; }
};

/// The default policy: Haswell semantics, byte-identical to the pre-policy
/// pipeline. Used whenever a PcuController is built without a backend.
[[nodiscard]] const PcuPolicy& haswell_policy();

}  // namespace hsw::pcu
