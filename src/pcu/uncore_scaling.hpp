// Uncore frequency scaling policy (Sections II-D and V-A, Table III).
//
// Per the patent description, the hardware derives the uncore clock from
// core stall cycles, the EPB, and c-states. Our policy distinguishes three
// regimes, calibrated against the paper's observations:
//  - no stalls (while(1)): a firmware ladder below the fastest active
//    core's clock (Table III),
//  - moderate stalls (FIRESTARTER): the uncore tracks the fastest core 1:1
//    (Table IV turbo row),
//  - stall-dominated (memory streaming): the uncore heads for its maximum
//    (3.0 GHz upper bound, Section V-A).
// EPB=performance forces the maximum; the passive socket follows the
// system's fastest core one 100 MHz step lower; deep package sleep halts
// the uncore clock entirely.
#pragma once

#include <cstdint>

#include "arch/sku.hpp"
#include "msr/msr_file.hpp"
#include "util/units.hpp"

namespace hsw::pcu {

using util::Frequency;

struct UfsInputs {
    const arch::Sku* sku = nullptr;
    msr::EpbPolicy epb = msr::EpbPolicy::Balanced;
    /// Highest granted core clock among active cores on *this* socket
    /// (zero when the socket is passive).
    Frequency fastest_local_core;
    /// Highest granted core clock among active cores in the whole system.
    Frequency fastest_system_core;
    /// Maximum off-core stall fraction over this socket's active cores.
    double stall_fraction = 0.0;
    /// True if any core on this socket is in C0.
    bool socket_active = false;
    /// True if any core anywhere in the system is in C0 (blocks PC-states).
    bool system_active = false;
    /// True while a turbo-range p-state is requested on this socket.
    bool turbo_requested = false;
    /// Software clamp from MSR_UNCORE_RATIO_LIMIT (bits 6:0 max ratio,
    /// bits 14:8 min ratio, in 100 MHz units; 0 = unconstrained).
    unsigned msr_max_ratio = 0;
    unsigned msr_min_ratio = 0;
};

/// The uncore target *demand* (before power limiting), and the floor the
/// budget allocator must preserve while throttling cores.
struct UfsDecision {
    Frequency target;        // what UFS wants given headroom
    Frequency floor;         // minimum to hold while cores are throttled
    bool clock_halted = false;  // package C3/C6: uncore clock stops
};

[[nodiscard]] UfsDecision uncore_policy(const UfsInputs& in);

/// The Table III firmware ladder: uncore clock for a core ratio in the
/// no-stall regime. Exposed for tests and the Table III bench.
[[nodiscard]] Frequency ladder_frequency(unsigned core_ratio);

/// Decode MSR_UNCORE_RATIO_LIMIT into (max_ratio, min_ratio); zero fields
/// mean "unconstrained".
struct UncoreRatioLimit {
    unsigned max_ratio = 0;
    unsigned min_ratio = 0;
};
[[nodiscard]] constexpr UncoreRatioLimit decode_uncore_ratio_limit(std::uint64_t raw) {
    return UncoreRatioLimit{static_cast<unsigned>(raw & 0x7F),
                            static_cast<unsigned>((raw >> 8) & 0x7F)};
}
[[nodiscard]] constexpr std::uint64_t encode_uncore_ratio_limit(unsigned max_ratio,
                                                                unsigned min_ratio) {
    return (static_cast<std::uint64_t>(min_ratio & 0x7F) << 8) |
           (static_cast<std::uint64_t>(max_ratio & 0x7F));
}

}  // namespace hsw::pcu
