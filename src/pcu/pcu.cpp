#include "pcu/pcu.hpp"

#include <algorithm>
#include <cassert>

#include "arch/calibration.hpp"
#include "pcu/hwp.hpp"
#include "power/power_model.hpp"

namespace hsw::pcu {

namespace cal = hsw::arch::cal;

namespace {

constexpr double kUncoreStepMhz = 50.0;  // ladder granularity (1.75/1.65 GHz)

[[nodiscard]] Frequency step_up(Frequency f) { return Frequency::mhz(f.as_mhz() + kUncoreStepMhz); }

}  // namespace

PcuController::PcuController(const arch::Sku& sku, unsigned socket_id,
                             const PcuPolicy* policy)
    : sku_{&sku},
      socket_id_{socket_id},
      policy_{policy != nullptr ? policy : &haswell_policy()},
      core_curve_{power::VfCurve::core_curve(socket_id)},
      uncore_curve_{power::VfCurve::uncore_curve(socket_id)},
      licenses_(sku.cores) {}

Voltage PcuController::core_voltage(unsigned core, Frequency f, unsigned level) const {
    Voltage v = core_curve_.voltage_for(f);
    if (level > 0) {
        v = v + Voltage::volts(policy_->license_voltage_adder_volts(level));
    }
    (void)core;  // per-core variation is applied by the socket's noise layer
    return v;
}

Power PcuController::effective_budget(double current_intensity) const {
    const double shave = std::max(0.0, current_intensity - cal::kGuardbandCurrentThreshold) *
                         cal::kGuardbandWattsPerUnit;
    return Power::watts(sku_->tdp.as_watts() - shave);
}

Power PcuController::estimate_package_power(const PcuInputs& in,
                                            const std::vector<unsigned>& core_ratios,
                                            Frequency uncore) const {
    assert(core_ratios.size() == in.cores.size());
    Power total = power::socket_static_power();
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const auto& c = in.cores[i];
        const Frequency f = Frequency::from_ratio(core_ratios[i]);
        const unsigned level = licenses_[i].level();
        const power::CoreActivity activity{
            .cdyn_utilization = c.cdyn_utilization,
            .clock_running = c.state == cstates::CState::C0,
            .power_gated = cstates::power_gated(c.state),
        };
        total += power::core_power(activity, core_voltage(static_cast<unsigned>(i), f, level), f);
    }
    total += power::uncore_power(in.uncore_traffic, uncore_curve_.voltage_for(uncore), uncore);
    return total;
}

PcuOutputs PcuController::evaluate(const PcuInputs& in, Time now) {
    PcuOutputs out;
    if (in.hwp_enabled && policy_->hwp_capable()) {
        PcuInputs adjusted = in;
        apply_hwp(adjusted);
        out = evaluate_impl(adjusted, now);
    } else {
        out = evaluate_impl(in, now);
    }
    if (policy_->per_die_uncore()) fill_die_uncore(in, out);
    return out;
}

void PcuController::apply_hwp(PcuInputs& in) const {
    const HwpCapabilities caps = capabilities_for(*sku_);
    unsigned min_epp = 255;
    bool any_active = false;
    for (auto& c : in.cores) {
        const std::uint64_t raw =
            c.hwp_request_raw != 0 ? c.hwp_request_raw : in.hwp_request_pkg_raw;
        // Raw zero means "nobody programmed a request": run autonomously
        // with the default (balanced) EPP rather than decoding epp = 0.
        const HwpRequest req = raw != 0 ? decode_hwp_request(raw) : HwpRequest{};
        c.requested_ratio = resolve_hwp_ratio(caps, req);
        if (c.state == cstates::CState::C0) {
            min_epp = std::min(min_epp, req.epp);
            any_active = true;
        }
    }
    // The most performance-hungry active core sets the package bias tier.
    if (any_active) in.epb = epp_to_epb(min_epp);
}

void PcuController::fill_die_uncore(const PcuInputs& in, PcuOutputs& out) const {
    // Two sub-NUMA clusters: low core IDs on die 0, high on die 1. A die
    // with no running core parks its uncore at the minimum; an active die
    // follows its own fastest core but never exceeds the package grant.
    const std::size_t half = (in.cores.size() + 1) / 2;
    out.die_uncore_frequency.assign(2, sku_->uncore_min);
    if (out.uncore_clock_halted) return;
    for (std::size_t die = 0; die < 2; ++die) {
        const std::size_t begin = die == 0 ? 0 : half;
        const std::size_t end = die == 0 ? half : in.cores.size();
        Frequency fastest = Frequency::zero();
        for (std::size_t i = begin; i < end && i < out.cores.size(); ++i) {
            if (in.cores[i].state != cstates::CState::C0) continue;
            fastest = std::max(fastest, out.cores[i].frequency);
        }
        if (fastest > Frequency::zero()) {
            out.die_uncore_frequency[die] =
                std::min(out.uncore_frequency, std::max(sku_->uncore_min, fastest));
        }
    }
}

PcuOutputs PcuController::evaluate_impl(const PcuInputs& in, Time now) {
    assert(in.cores.size() == sku_->cores);
    ++tick_count_;

    // --- AVX license state machines ---
    const bool avx512_capable = policy_->max_license_level() >= 2;
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const bool running = in.cores[i].state == cstates::CState::C0;
        licenses_[i].update(running ? in.cores[i].avx_fraction : 0.0,
                            running && avx512_capable ? in.cores[i].avx512_fraction : 0.0,
                            now);
    }

    unsigned n_active = 0;
    double max_stall = 0.0;
    bool turbo_requested = false;
    const unsigned nominal_ratio = sku_->nominal_frequency.ratio();
    for (const auto& c : in.cores) {
        if (c.state != cstates::CState::C0) continue;
        ++n_active;
        max_stall = std::max(max_stall, c.stall_fraction);
        if (c.requested_ratio > nominal_ratio) turbo_requested = true;
    }
    if (in.epb == msr::EpbPolicy::Performance && n_active > 0) turbo_requested = true;

    PcuOutputs out;
    out.cores.resize(in.cores.size());

    const UncoreRatioLimit msr_limit =
        decode_uncore_ratio_limit(in.uncore_ratio_limit_raw);

    // --- Passive socket / fully idle system ---
    if (n_active == 0) {
        UfsInputs ufs{
            .sku = sku_,
            .epb = in.epb,
            .fastest_local_core = Frequency::zero(),
            .fastest_system_core = in.fastest_system_core,
            .stall_fraction = 0.0,
            .socket_active = false,
            .system_active = in.system_active,
            .turbo_requested = in.system_active &&
                               in.fastest_system_core > sku_->nominal_frequency,
            .msr_max_ratio = msr_limit.max_ratio,
            .msr_min_ratio = msr_limit.min_ratio,
        };
        UfsDecision d = policy_->uncore(ufs);
        Frequency uncore = d.target;
        if (!d.clock_halted && ufs.turbo_requested) {
            // Table III: the passive uncore fluctuates between 2.9 and
            // 3.0 GHz when the active socket runs turbo frequencies.
            uncore = (tick_count_ % 2 == 0)
                         ? sku_->uncore_max
                         : Frequency::mhz(sku_->uncore_max.as_mhz() - 100.0);
            if (msr_limit.max_ratio != 0) {
                uncore = std::min(uncore, Frequency::from_ratio(msr_limit.max_ratio));
            }
        }
        std::vector<unsigned> parked(in.cores.size(), sku_->min_frequency.ratio());
        for (std::size_t i = 0; i < in.cores.size(); ++i) {
            const Frequency f = sku_->min_frequency;
            out.cores[i] = CoreGrant{f, core_voltage(static_cast<unsigned>(i), f, 0),
                                     licenses_[i].licensed(), licenses_[i].level(), 1.0};
        }
        out.uncore_frequency = uncore;
        out.uncore_voltage = uncore_curve_.voltage_for(uncore);
        out.uncore_clock_halted = d.clock_halted;
        out.estimated_package_power = estimate_package_power(in, parked, uncore);
        return out;
    }

    // --- EET's sporadic stall polling (Section II-E): refresh the stall
    // snapshot at most once per kEetPollPeriod; turbo demotion decisions in
    // between use the stale value. ---
    if (now - last_eet_poll_ >= cal::kEetPollPeriod) {
        last_eet_poll_ = now;
        eet_stall_snapshot_ = max_stall;
    }

    // --- Per-core frequency caps ---
    const TurboContext ctx{sku_, n_active, in.turbo_enabled, in.epb};
    std::vector<unsigned> caps(in.cores.size());
    std::vector<unsigned> floors(in.cores.size());
    const unsigned avx_base_ratio = sku_->avx_base_frequency.ratio();
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const auto& c = in.cores[i];
        if (c.state != cstates::CState::C0) {
            // Parked cores keep their requested ratio so they resume it on
            // wake-up (the C-state probes vary this frequency).
            caps[i] = floors[i] =
                std::clamp(c.requested_ratio, sku_->min_frequency.ratio(), nominal_ratio);
            continue;
        }
        Frequency cap = resolve_cap(ctx, Frequency::from_ratio(c.requested_ratio),
                                    licenses_[i].licensed());
        // The AVX-512 license caps harder than the 256-bit one (Skylake-SP:
        // 2.7 GHz nominal drops to 1.9 GHz all-core at license 2).
        if (licenses_[i].level() >= 2) {
            cap = std::min(cap, sku_->max_avx512_turbo(n_active));
        }
        cap = eet_demote(ctx, cap, eet_stall_snapshot_);
        caps[i] = cap.ratio();
        // Guaranteed floor: everything above the license base frequency is
        // opportunistic (Section II-F); requests at or below it are honored.
        const unsigned base_ratio = licenses_[i].level() >= 2
                                        ? sku_->avx512_base_frequency.ratio()
                                        : avx_base_ratio;
        floors[i] = std::min(caps[i], base_ratio);
    }

    Power budget = effective_budget(in.current_intensity);
    if (in.power_limit_watts > 0.0) {
        budget = std::min(budget, Power::watts(in.power_limit_watts));
    }

    auto fastest_ratio = [&](const std::vector<unsigned>& ratios) {
        unsigned best = sku_->min_frequency.ratio();
        for (std::size_t i = 0; i < ratios.size(); ++i) {
            if (in.cores[i].state == cstates::CState::C0) best = std::max(best, ratios[i]);
        }
        return best;
    };

    auto ufs_decision = [&](const std::vector<unsigned>& ratios) {
        const UfsInputs ufs{
            .sku = sku_,
            .epb = in.epb,
            .fastest_local_core = Frequency::from_ratio(fastest_ratio(ratios)),
            .fastest_system_core = in.fastest_system_core,
            .stall_fraction = max_stall,
            .socket_active = true,
            .system_active = true,
            .turbo_requested = turbo_requested,
            .msr_max_ratio = msr_limit.max_ratio,
            .msr_min_ratio = msr_limit.min_ratio,
        };
        return policy_->uncore(ufs);
    };

    // --- Core throttle loop: shed 100 MHz from the fastest cores while the
    // operating point (cores at ratios, uncore at its floor) overruns the
    // budget. The UFS floor moves down with the cores in tracking mode. ---
    std::vector<unsigned> ratios = caps;
    UfsDecision ufs = ufs_decision(ratios);
    bool throttled = false;
    auto over_budget = [&](const std::vector<unsigned>& r, Frequency unc) {
        return estimate_package_power(in, r, unc) > budget;
    };
    while (over_budget(ratios, ufs.floor)) {
        const unsigned fastest = fastest_ratio(ratios);
        bool reduced = false;
        for (std::size_t i = 0; i < ratios.size(); ++i) {
            if (in.cores[i].state != cstates::CState::C0) continue;
            if (ratios[i] == fastest && ratios[i] > floors[i]) {
                --ratios[i];
                reduced = true;
            }
        }
        if (!reduced) break;  // at guaranteed floors; budget may be exceeded
        throttled = true;
        ufs = ufs_decision(ratios);
    }
    out.tdp_limited = throttled || over_budget(caps, ufs_decision(caps).floor);

    Frequency uncore = std::min(ufs.floor, sku_->uncore_max);

    if (throttled) {
        // --- TDP-limited regime: the operating point dithers between
        // (core lo, uncore = tracking floor) and (core hi, its floor),
        // weighted so the *average* power equals the budget. This is what
        // yields the paper's fractional frequencies (core 2.30-2.35 with
        // uncore ~= core in Table IV's turbo/2.5/2.4 rows). The uncore is
        // NOT additionally raised here -- the freed budget goes to the
        // cores first. ---
        std::vector<unsigned> hi = ratios;
        bool can_step = false;
        const unsigned fastest = fastest_ratio(ratios);
        for (std::size_t i = 0; i < hi.size(); ++i) {
            if (in.cores[i].state != cstates::CState::C0) continue;
            if (hi[i] == fastest && hi[i] < caps[i]) {
                ++hi[i];
                can_step = true;
            }
        }
        if (can_step) {
            const UfsDecision ufs_hi = ufs_decision(hi);
            const double p_lo =
                estimate_package_power(in, ratios, ufs.floor).as_watts();
            const double p_hi =
                estimate_package_power(in, hi, ufs_hi.floor).as_watts();
            double alpha = 0.0;
            if (p_hi > p_lo) {
                alpha = std::clamp((budget.as_watts() - p_lo) / (p_hi - p_lo), 0.0, 1.0);
            }
            core_dither_accum_ += alpha;
            if (core_dither_accum_ >= 1.0) {
                core_dither_accum_ -= 1.0;
                ratios = hi;
                ufs = ufs_hi;
            }
        }
        uncore = std::min(ufs.floor, sku_->uncore_max);
    } else {
        // --- Headroom regime: the cores hold their requested clocks; the
        // remaining budget is granted to the uncore, from the UFS floor
        // toward its target, in 50 MHz steps (Table III/IV behaviour). ---
        while (step_up(uncore) <= ufs.target && !over_budget(ratios, step_up(uncore))) {
            uncore = step_up(uncore);
        }
        // Uncore dither between the feasible step and the next one.
        if (step_up(uncore) <= ufs.target) {
            const double p_lo = estimate_package_power(in, ratios, uncore).as_watts();
            const double p_hi =
                estimate_package_power(in, ratios, step_up(uncore)).as_watts();
            if (p_hi > p_lo) {
                const double alpha =
                    std::clamp((budget.as_watts() - p_lo) / (p_hi - p_lo), 0.0, 1.0);
                uncore_dither_accum_ += alpha;
                if (uncore_dither_accum_ >= 1.0) {
                    uncore_dither_accum_ -= 1.0;
                    uncore = step_up(uncore);
                }
            }
        }
    }

    // --- Assemble grants ---
    for (std::size_t i = 0; i < in.cores.size(); ++i) {
        const Frequency f = Frequency::from_ratio(ratios[i]);
        const unsigned level = licenses_[i].level();
        out.cores[i] = CoreGrant{
            f,
            core_voltage(static_cast<unsigned>(i), f, level),
            licenses_[i].licensed(),
            level,
            licenses_[i].throughput_factor(now),
        };
    }
    out.uncore_frequency = uncore;
    out.uncore_voltage = uncore_curve_.voltage_for(uncore);
    out.uncore_clock_halted = false;
    out.estimated_package_power = estimate_package_power(in, ratios, uncore);
    return out;
}

}  // namespace hsw::pcu
