#include "pcu/turbo.hpp"

#include <algorithm>

#include "arch/calibration.hpp"

namespace hsw::pcu {

namespace cal = hsw::arch::cal;

Frequency resolve_cap(const TurboContext& ctx, Frequency requested, bool avx_licensed) {
    const arch::Sku& sku = *ctx.sku;
    const bool turbo_request = requested > sku.nominal_frequency;

    // "When setting EPB to performance, turbo mode will be active even when
    // the base frequency is selected" (Section II-C).
    const bool wants_turbo =
        ctx.turbo_enabled &&
        (turbo_request || (ctx.epb == msr::EpbPolicy::Performance &&
                           requested >= sku.nominal_frequency));

    const Frequency bin = avx_licensed ? sku.max_avx_turbo(ctx.active_cores)
                                       : sku.max_turbo(ctx.active_cores);

    if (wants_turbo) return bin;

    // Fixed p-state request: the cap is the request itself, except that an
    // AVX license can pull even nominal requests down to the AVX bins.
    Frequency cap = std::min(requested, sku.nominal_frequency);
    if (avx_licensed) cap = std::min(cap, bin);
    return cap;
}

Frequency eet_demote(const TurboContext& ctx, Frequency cap, double stall_fraction) {
    const arch::Sku& sku = *ctx.sku;
    if (ctx.epb == msr::EpbPolicy::Performance) return cap;
    if (cap <= sku.nominal_frequency) return cap;

    // Stall-dominated code gains little from turbo: balanced EPB strips the
    // turbo range, energy saving additionally drops to a mid p-state.
    if (stall_fraction >= cal::kUfsStallHighWatermark) {
        if (ctx.epb == msr::EpbPolicy::Balanced) return sku.nominal_frequency;
        const unsigned mid =
            (sku.nominal_frequency.ratio() + sku.min_frequency.ratio()) / 2;
        return Frequency::from_ratio(mid);
    }
    return cap;
}

}  // namespace hsw::pcu
