#include "pcu/policy.hpp"

#include "pcu/avx_license.hpp"

namespace hsw::pcu {

double PcuPolicy::license_voltage_adder_volts(unsigned level) const {
    return level >= 1 ? AvxLicense::kLicenseVoltageAdderVolts : 0.0;
}

const PcuPolicy& haswell_policy() {
    static const PcuPolicy policy;
    return policy;
}

}  // namespace hsw::pcu
