// AVX frequency license state machine (Section II-F).
//
// Workflow modeled after the paper's description:
//  1. AVX instructions draw more current; the core signals the PCU,
//  2. execution of AVX instructions is slowed during the voltage ramp,
//  3. the clock may drop to stay inside TDP (handled by the budget loop),
//  4. full throughput resumes once the voltage is adjusted,
//  5. the license is dropped 1 ms after the last AVX instruction.
#pragma once

#include "util/units.hpp"

namespace hsw::pcu {

using util::Time;
using util::Voltage;

class AvxLicense {
public:
    /// AVX density above which a core requests the 256-bit license.
    static constexpr double kLicenseThreshold = 0.30;
    /// Extra voltage while the license is held.
    static constexpr double kLicenseVoltageAdderVolts = 0.020;
    /// Duration of the reduced-throughput voltage ramp phase.
    static constexpr Time kRampDuration = Time::us(10);
    /// Throughput factor while ramping (execution "slowed").
    static constexpr double kRampThroughputFactor = 0.25;

    /// Update with the current workload AVX density; `now` is sim time.
    void update(double avx_fraction, Time now);

    [[nodiscard]] bool licensed() const { return licensed_; }

    /// True while the voltage ramp throttles execution.
    [[nodiscard]] bool ramping(Time now) const {
        return licensed_ && now < ramp_end_;
    }

    /// Voltage adder to apply to the core's V-f point.
    [[nodiscard]] Voltage voltage_adder() const {
        return Voltage::volts(licensed_ ? kLicenseVoltageAdderVolts : 0.0);
    }

    /// Throughput multiplier for instruction execution at `now`.
    [[nodiscard]] double throughput_factor(Time now) const {
        return ramping(now) ? kRampThroughputFactor : 1.0;
    }

private:
    bool licensed_ = false;
    Time ramp_end_ = Time::zero();
    Time last_avx_seen_ = Time::zero();
};

/// Multi-level license state machine (Skylake-SP, Schoene et al.):
/// level 0 = scalar/SSE, level 1 = the 256-bit AVX license above,
/// level 2 = AVX-512. Upward transitions jump straight to the demanded
/// level (one voltage ramp); downward transitions relax one level at a
/// time, each after the 1 ms delay. With zero AVX-512 density the machine
/// is byte-for-byte equivalent to AvxLicense (asserted by tests), which is
/// what keeps the Haswell goldens untouched.
class AvxLicenseLevels {
public:
    /// 512-bit density above which a core requests license level 2.
    static constexpr double kAvx512Threshold = 0.20;
    static constexpr unsigned kMaxLevel = 2;

    void update(double avx_fraction, double avx512_fraction, Time now);

    [[nodiscard]] unsigned level() const { return level_; }
    [[nodiscard]] bool licensed() const { return level_ >= 1; }

    [[nodiscard]] bool ramping(Time now) const {
        return level_ > 0 && now < ramp_end_;
    }

    [[nodiscard]] double throughput_factor(Time now) const {
        return ramping(now) ? AvxLicense::kRampThroughputFactor : 1.0;
    }

private:
    unsigned level_ = 0;
    Time ramp_end_ = Time::zero();
    // Last instant the demanded level was at or above the held one; the
    // relax timer measures from here (AvxLicense's last_avx_seen_).
    Time last_at_or_above_ = Time::zero();
};

}  // namespace hsw::pcu
