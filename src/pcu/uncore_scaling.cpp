#include "pcu/uncore_scaling.hpp"

#include <algorithm>

#include "arch/calibration.hpp"

namespace hsw::pcu {

namespace cal = hsw::arch::cal;

Frequency ladder_frequency(unsigned core_ratio) {
    // Entries are sorted descending by core ratio; pick the first entry
    // whose core ratio is <= the requested one, clamping at the ends.
    const auto& ladder = cal::kUncoreLadder;
    const auto* chosen = &ladder[std::size(ladder) - 1];
    for (const auto& e : ladder) {
        if (core_ratio >= e.core_ratio) {
            chosen = &e;
            break;
        }
    }
    return Frequency::mhz(static_cast<double>(chosen->uncore_ratio_x2) * 50.0);
}

namespace {

UfsDecision policy_unclamped(const UfsInputs& in);

}  // namespace

UfsDecision uncore_policy(const UfsInputs& in) {
    UfsDecision d = policy_unclamped(in);
    // Software clamp from MSR_UNCORE_RATIO_LIMIT (Section II-D mentions the
    // register; the encoding became public after the paper).
    if (in.msr_max_ratio != 0) {
        const Frequency cap = Frequency::from_ratio(in.msr_max_ratio);
        d.target = std::min(d.target, cap);
        d.floor = std::min(d.floor, cap);
    }
    if (in.msr_min_ratio != 0) {
        const Frequency fl = Frequency::from_ratio(in.msr_min_ratio);
        d.target = std::max(d.target, fl);
        d.floor = std::max(d.floor, fl);
    }
    return d;
}

namespace {

UfsDecision policy_unclamped(const UfsInputs& in) {
    const arch::Sku& sku = *in.sku;
    UfsDecision d;

    // Pre-Haswell parts have no UFS: Nehalem/Westmere-EP run a fixed uncore
    // clock; Sandy/Ivy Bridge-EP clock the uncore with the fastest core
    // (Section II-D) -- the source of their frequency-dependent DRAM
    // bandwidth in Figure 7.
    const auto clocking = arch::traits(sku.generation).uncore_clocking;
    if (clocking == arch::UncoreClocking::Fixed) {
        d.target = d.floor = sku.uncore_max;
        return d;
    }
    if (clocking == arch::UncoreClocking::CoupledToCore) {
        const Frequency fastest =
            in.socket_active ? in.fastest_local_core : sku.uncore_min;
        d.target = d.floor = std::clamp(fastest, sku.uncore_min, sku.uncore_max);
        return d;
    }

    if (!in.system_active) {
        // Whole system idle: packages may enter PC3/PC6 and the uncore
        // clock halts (Section V-A).
        d.clock_halted = true;
        d.target = d.floor = sku.uncore_min;
        return d;
    }

    if (!in.socket_active) {
        // Passive socket: tracks the system's fastest core one step lower
        // (Table III second row); at turbo it hovers just below maximum.
        if (in.turbo_requested || in.epb == msr::EpbPolicy::Performance) {
            d.target = d.floor = sku.uncore_max;
            return d;
        }
        const Frequency ladder = ladder_frequency(in.fastest_system_core.ratio());
        const double mhz = std::max(ladder.as_mhz() -
                                        50.0 * cal::kPassiveUncoreStepX2,
                                    sku.uncore_min.as_mhz());
        d.target = d.floor = Frequency::mhz(mhz);
        return d;
    }

    // EPB=performance drives the uncore to maximum whenever headroom
    // exists (Table III footnote), but under power limiting the cores keep
    // priority -- Table V shows EPB has very little impact on TDP-bound
    // frequencies.
    if (in.epb == msr::EpbPolicy::Performance) {
        d.target = sku.uncore_max;
        d.floor = std::clamp(in.fastest_local_core, sku.uncore_min, sku.uncore_max);
        return d;
    }

    if (in.stall_fraction >= cal::kUfsStallHighWatermark) {
        // Memory bound: drive the uncore to its maximum; hold at least the
        // tracking point while cores are power limited.
        d.target = sku.uncore_max;
        d.floor = std::min(in.fastest_local_core, sku.uncore_max);
        return d;
    }

    if (in.stall_fraction >= cal::kUfsTrackingStallThreshold) {
        // Moderate stalls: track the fastest core 1:1 and spend remaining
        // headroom on more uncore clock (Table IV).
        d.floor = std::clamp(in.fastest_local_core, sku.uncore_min, sku.uncore_max);
        d.target = sku.uncore_max;
        return d;
    }

    // No stalls: the firmware ladder. A turbo request targets the maximum
    // (Table III "Turbo" column) but yields to the cores under power
    // limiting, like the EPB=performance case.
    if (in.turbo_requested) {
        d.target = sku.uncore_max;
        d.floor = std::clamp(ladder_frequency(in.fastest_local_core.ratio()),
                             sku.uncore_min, sku.uncore_max);
        return d;
    }
    const Frequency ladder = ladder_frequency(in.fastest_local_core.ratio());
    d.target = d.floor = std::clamp(ladder, sku.uncore_min, sku.uncore_max);
    return d;
}

}  // namespace

}  // namespace hsw::pcu
