// Turbo bin resolution and energy-efficient turbo (Sections II-E, II-F).
//
// The per-active-core-count turbo tables come from the SKU; EET demotes
// turbo when the stall profile predicts little performance benefit, taking
// the EPB setting into account.
#pragma once

#include "arch/sku.hpp"
#include "msr/msr_file.hpp"
#include "util/units.hpp"

namespace hsw::pcu {

using util::Frequency;

/// Upper bound for a core's clock before power limiting, considering the
/// request, turbo enablement, active-core turbo bins and the AVX license.
struct TurboContext {
    const arch::Sku* sku = nullptr;
    unsigned active_cores = 1;
    bool turbo_enabled = true;
    msr::EpbPolicy epb = msr::EpbPolicy::Balanced;
};

/// Resolve the frequency cap for one core.
/// `requested` is the p-state request (ratio nominal+1 encodes "turbo");
/// `avx_licensed` selects the AVX frequency tables.
[[nodiscard]] Frequency resolve_cap(const TurboContext& ctx, Frequency requested,
                                    bool avx_licensed);

/// Energy-efficient turbo: given the observed stall fraction, possibly
/// demote a turbo-range cap. Returns the (possibly reduced) cap.
/// With EPB=performance EET never demotes; with balanced it removes turbo
/// for stall-dominated code; with energy-saving it is more aggressive.
[[nodiscard]] Frequency eet_demote(const TurboContext& ctx, Frequency cap,
                                   double stall_fraction);

}  // namespace hsw::pcu
