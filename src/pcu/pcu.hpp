// Power control unit firmware model.
//
// Each socket's PCU evaluates its control loops on the 500 us opportunity
// grid (Section VI-A): it latches pending p-state requests, resolves turbo
// and AVX-license caps, runs energy-efficient turbo, decides the uncore
// clock (UFS), and enforces the package power limit by first throttling
// cores (holding the UFS floor) and then granting remaining headroom to the
// uncore -- the mechanism behind Table IV's "lower core frequency setting
// can increase performance" observation.
//
// Fractional TDP equilibria are realized by dithering between adjacent
// 100 MHz ratios across opportunity ticks, exactly like the real PCU's
// running-average limiter; time-averaged counters then show the
// non-multiple frequencies the paper reports (e.g. 2.31 GHz).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/sku.hpp"
#include "cstates/cstate.hpp"
#include "msr/msr_file.hpp"
#include "pcu/avx_license.hpp"
#include "pcu/policy.hpp"
#include "pcu/turbo.hpp"
#include "pcu/uncore_scaling.hpp"
#include "power/vf_curve.hpp"
#include "util/units.hpp"

namespace hsw::pcu {

using util::Frequency;
using util::Power;
using util::Time;
using util::Voltage;

struct CoreInputs {
    cstates::CState state = cstates::CState::C6;
    unsigned requested_ratio = 12;   // IA32_PERF_CTL target (nominal+1 = turbo)
    double avx_fraction = 0.0;       // of the running workload
    double avx512_fraction = 0.0;    // 512-bit density (license level 2 input)
    double stall_fraction = 0.0;
    double cdyn_utilization = 0.0;   // current dynamic activity
    /// Raw IA32_HWP_REQUEST for this core (0 = fall back to the package
    /// request, then to an autonomous default). Ignored unless HWP is on.
    std::uint64_t hwp_request_raw = 0;
};

struct PcuInputs {
    std::vector<CoreInputs> cores;
    msr::EpbPolicy epb = msr::EpbPolicy::Balanced;
    bool turbo_enabled = true;
    double uncore_traffic = 0.0;       // [0,1]
    double current_intensity = 0.0;    // worst over running workloads
    bool system_active = true;         // any C0 core anywhere (both sockets)
    Frequency fastest_system_core;     // for the passive-socket uncore rule
    /// Software package power cap from MSR_PKG_POWER_LIMIT (0 = use TDP).
    double power_limit_watts = 0.0;
    /// Raw MSR_UNCORE_RATIO_LIMIT value (0 = unconstrained).
    std::uint64_t uncore_ratio_limit_raw = 0;
    /// MSR_PM_ENABLE bit 0: requests are taken from hwp_request_raw instead
    /// of requested_ratio. Only honored by HWP-capable policies.
    bool hwp_enabled = false;
    /// Raw IA32_HWP_REQUEST_PKG fallback for cores with no own request.
    std::uint64_t hwp_request_pkg_raw = 0;
};

struct CoreGrant {
    Frequency frequency;
    Voltage voltage;
    bool avx_licensed = false;
    unsigned license_level = 0;      // 0 none, 1 AVX, 2 AVX-512
    double throughput_factor = 1.0;  // < 1 during the AVX voltage ramp
};

struct PcuOutputs {
    std::vector<CoreGrant> cores;
    Frequency uncore_frequency;
    Voltage uncore_voltage;
    bool uncore_clock_halted = false;
    bool tdp_limited = false;
    Power estimated_package_power;
    /// Per-die uncore grants (Skylake-SP sub-NUMA clusters); empty for
    /// policies with a package-wide uncore clock.
    std::vector<Frequency> die_uncore_frequency;
};

class PcuController {
public:
    /// A null policy means the default Haswell policy (haswell_policy()).
    PcuController(const arch::Sku& sku, unsigned socket_id,
                  const PcuPolicy* policy = nullptr);

    /// Run one opportunity-grid evaluation. Deterministic given inputs.
    [[nodiscard]] PcuOutputs evaluate(const PcuInputs& in, Time now);

    /// Model-estimated package power for a hypothetical operating point
    /// (used by the budget loop and exposed for tests).
    [[nodiscard]] Power estimate_package_power(const PcuInputs& in,
                                               const std::vector<unsigned>& core_ratios,
                                               Frequency uncore) const;

    [[nodiscard]] const arch::Sku& sku() const { return *sku_; }
    [[nodiscard]] unsigned socket_id() const { return socket_id_; }

    /// Effective power budget after the peak-current guardband: very
    /// current-intense code (LINPACK) is budgeted below TDP, which is why
    /// it shows both lower frequency and lower power in Table V.
    [[nodiscard]] Power effective_budget(double current_intensity) const;

private:
    /// The pipeline shared by all generations; `in` already has HWP
    /// requests resolved into requested_ratio when HWP is live.
    [[nodiscard]] PcuOutputs evaluate_impl(const PcuInputs& in, Time now);
    /// Resolve IA32_HWP_REQUEST windows into per-core requested ratios and
    /// an effective bias tier (the minimum EPP over active cores wins).
    void apply_hwp(PcuInputs& in) const;
    /// Split the package uncore grant into per-die grants (idle die parks
    /// at the minimum; an active die never exceeds the package grant).
    void fill_die_uncore(const PcuInputs& in, PcuOutputs& out) const;
    [[nodiscard]] Voltage core_voltage(unsigned core, Frequency f, unsigned level) const;

    const arch::Sku* sku_;
    unsigned socket_id_;
    const PcuPolicy* policy_;
    power::VfCurve core_curve_;
    power::VfCurve uncore_curve_;
    std::vector<AvxLicenseLevels> licenses_;
    double core_dither_accum_ = 0.0;
    double uncore_dither_accum_ = 0.0;
    std::uint64_t tick_count_ = 0;
    // EET polls the stall data only sporadically (1 ms per the patent,
    // Section II-E); decisions between polls use the stale snapshot, which
    // is what hurts workloads that change phase at unfavorable rates.
    Time last_eet_poll_ = Time::ns(-1'000'000'000);
    double eet_stall_snapshot_ = 0.0;
};

}  // namespace hsw::pcu
