#include "msr/msr_file.hpp"

#include <cstdio>

namespace hsw::msr {

namespace {
std::uint64_t storage_key(MsrAddress addr, unsigned cpu) {
    return (static_cast<std::uint64_t>(addr) << 32) | cpu;
}
std::string hex(MsrAddress addr) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%X", addr);
    return buf;
}
}  // namespace

void MsrFile::register_msr(MsrAddress addr, ReadFn read, WriteFn write) {
    register_msr_range(addr, 0, std::numeric_limits<unsigned>::max(), std::move(read),
                       std::move(write));
}

void MsrFile::register_msr_range(MsrAddress addr, unsigned first_cpu, unsigned last_cpu,
                                 ReadFn read, WriteFn write) {
    handlers_[addr].push_back(
        RangeHandlers{first_cpu, last_cpu, std::move(read), std::move(write)});
}

void MsrFile::register_storage(MsrAddress addr, std::uint64_t initial) {
    register_msr(
        addr,
        [this, addr, initial](unsigned cpu) {
            const auto it = storage_.find(storage_key(addr, cpu));
            return it == storage_.end() ? initial : it->second;
        },
        [this, addr](unsigned cpu, std::uint64_t value) {
            storage_[storage_key(addr, cpu)] = value;
        });
}

const MsrFile::RangeHandlers* MsrFile::find(unsigned cpu, MsrAddress addr) const {
    const auto it = handlers_.find(addr);
    if (it == handlers_.end()) return nullptr;
    // Later registrations take precedence: scan back to front.
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        if (cpu >= rit->first && cpu <= rit->last) return &*rit;
    }
    return nullptr;
}

std::uint64_t MsrFile::read(unsigned cpu, MsrAddress addr) const {
    for (const auto& [id, observer] : observers_) {
        observer(MsrAccessEvent{MsrAccessEvent::Kind::Read, cpu, addr, 0});
    }
    const RangeHandlers* h = find(cpu, addr);
    if (h == nullptr || !h->read) {
        throw MsrError{"rdmsr " + hex(addr) + ": unimplemented MSR (#GP)"};
    }
    return h->read(cpu);
}

void MsrFile::write(unsigned cpu, MsrAddress addr, std::uint64_t value) {
    for (const auto& [id, observer] : observers_) {
        observer(MsrAccessEvent{MsrAccessEvent::Kind::Write, cpu, addr, value});
    }
    const RangeHandlers* h = find(cpu, addr);
    if (h == nullptr) {
        throw MsrError{"wrmsr " + hex(addr) + ": unimplemented MSR (#GP)"};
    }
    if (!h->write) {
        throw MsrError{"wrmsr " + hex(addr) + ": read-only MSR (#GP)"};
    }
    h->write(cpu, value);
}

}  // namespace hsw::msr
