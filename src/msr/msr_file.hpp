// Simulated /dev/cpu/*/msr: the only interface through which tool code
// (perfmon, FTaLaT, cpufreq) touches the machine, mirroring how LIKWID and
// friends access real hardware. Devices (PCU, RAPL, counters) register
// read/write handlers per address; package-scoped registers register one
// handler per CPU range so each socket answers for its own cores.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "msr/addresses.hpp"

namespace hsw::msr {

/// Thrown on access to an unimplemented MSR or a write to a read-only one,
/// like the #GP fault a real rdmsr/wrmsr would raise.
class MsrError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One rdmsr/wrmsr as seen by an access observer. `value` is the written
/// value for writes and zero for reads (the observer fires before the read
/// handler runs, mirroring a bus-level probe).
struct MsrAccessEvent {
    enum class Kind { Read, Write };
    Kind kind = Kind::Read;
    unsigned cpu = 0;
    MsrAddress address = 0;
    std::uint64_t value = 0;
};

class MsrFile {
public:
    using ReadFn = std::function<std::uint64_t(unsigned cpu)>;
    using WriteFn = std::function<void(unsigned cpu, std::uint64_t value)>;
    using Observer = std::function<void(const MsrAccessEvent&)>;
    using ObserverId = std::uint64_t;

    /// Register handlers valid for all CPUs. Pass nullptr WriteFn for
    /// read-only registers. Later registrations for an overlapping range
    /// take precedence.
    void register_msr(MsrAddress addr, ReadFn read, WriteFn write = nullptr);

    /// Register handlers for the CPU range [first_cpu, last_cpu] only
    /// (package-scoped registers such as RAPL).
    void register_msr_range(MsrAddress addr, unsigned first_cpu, unsigned last_cpu,
                            ReadFn read, WriteFn write = nullptr);

    /// Register a plain storage MSR (read/write to a per-cpu cell).
    void register_storage(MsrAddress addr, std::uint64_t initial = 0);

    [[nodiscard]] std::uint64_t read(unsigned cpu, MsrAddress addr) const;
    void write(unsigned cpu, MsrAddress addr, std::uint64_t value);

    [[nodiscard]] bool exists(MsrAddress addr) const { return handlers_.contains(addr); }

    /// Install a tap that sees every access before it is dispatched (the
    /// analysis layer's MSR linter). Observers must not access the MsrFile
    /// reentrantly. Multiple observers coexist; registration never
    /// displaces another component's tap. Observer state is per-MsrFile
    /// (per-Node): worker threads each driving their own node never share
    /// any of it.
    ObserverId add_observer(Observer observer) {
        observers_.emplace_back(next_observer_id_, std::move(observer));
        return next_observer_id_++;
    }

    /// Remove one observer by its add_observer id; unknown ids are ignored.
    void remove_observer(ObserverId id) {
        std::erase_if(observers_, [id](const auto& o) { return o.first == id; });
    }

    [[nodiscard]] std::size_t observer_count() const { return observers_.size(); }

private:
    struct RangeHandlers {
        unsigned first;
        unsigned last;
        ReadFn read;
        WriteFn write;
    };
    [[nodiscard]] const RangeHandlers* find(unsigned cpu, MsrAddress addr) const;

    std::unordered_map<MsrAddress, std::vector<RangeHandlers>> handlers_;
    // Backing store for register_storage cells: (addr, cpu) -> value.
    std::unordered_map<std::uint64_t, std::uint64_t> storage_;
    ObserverId next_observer_id_ = 1;
    std::vector<std::pair<ObserverId, Observer>> observers_;
};

/// EPB policy semantics (Section II-C): only 0, 6 and 15 are architecturally
/// defined; measurements show 1-7 map to balanced and 8-14 to energy saving.
enum class EpbPolicy { Performance, Balanced, EnergySaving };

[[nodiscard]] constexpr EpbPolicy decode_epb(std::uint64_t raw) {
    const auto bits = raw & 0xF;
    if (bits == 0) return EpbPolicy::Performance;
    if (bits <= 7) return EpbPolicy::Balanced;
    return EpbPolicy::EnergySaving;
}

[[nodiscard]] constexpr std::uint64_t encode_epb(EpbPolicy p) {
    switch (p) {
        case EpbPolicy::Performance: return 0;
        case EpbPolicy::Balanced: return 6;
        case EpbPolicy::EnergySaving: return 15;
    }
    return 6;
}

[[nodiscard]] constexpr const char* epb_name(EpbPolicy p) {
    switch (p) {
        case EpbPolicy::Performance: return "performance";
        case EpbPolicy::Balanced: return "balanced";
        case EpbPolicy::EnergySaving: return "energy-saving";
    }
    return "?";
}

}  // namespace hsw::msr
