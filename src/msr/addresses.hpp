// Model-specific register addresses used by the simulated machine.
// Numbers follow the Intel SDM Vol. 3 / Xeon E5 v3 registers datasheet so
// that tool code reads like real LIKWID/msr-tools code.
#pragma once

#include <cstdint>

namespace hsw::msr {

using MsrAddress = std::uint32_t;

// Per-thread time-stamp and feedback counters.
inline constexpr MsrAddress IA32_MPERF = 0xE7;  // counts at nominal frequency in C0
inline constexpr MsrAddress IA32_APERF = 0xE8;  // counts at actual frequency in C0

// P-state request/status (Section VI-A: requests go through IA32_PERF_CTL;
// the hardware applies them at the next PCU opportunity).
inline constexpr MsrAddress IA32_PERF_STATUS = 0x198;
inline constexpr MsrAddress IA32_PERF_CTL = 0x199;

// Performance and Energy Bias Hint (Section II-C). 4 bits; 0 performance,
// 6 balanced, 15 energy saving.
inline constexpr MsrAddress IA32_ENERGY_PERF_BIAS = 0x1B0;

// Fixed-function core counters (simplified: direct counter reads).
inline constexpr MsrAddress IA32_FIXED_CTR0 = 0x309;  // INST_RETIRED.ANY
inline constexpr MsrAddress IA32_FIXED_CTR1 = 0x30A;  // CPU_CLK_UNHALTED.CORE
inline constexpr MsrAddress IA32_FIXED_CTR2 = 0x30B;  // CPU_CLK_UNHALTED.REF

// A programmable event the tools use: resource/memory stall cycles.
inline constexpr MsrAddress MSR_STALL_CYCLES = 0x30C;  // model-internal

// C-state residency counters (TSC-rate ticks spent in the state).
inline constexpr MsrAddress MSR_PKG_C3_RESIDENCY = 0x3F8;
inline constexpr MsrAddress MSR_PKG_C6_RESIDENCY = 0x3F9;
inline constexpr MsrAddress MSR_CORE_C3_RESIDENCY = 0x3FC;
inline constexpr MsrAddress MSR_CORE_C6_RESIDENCY = 0x3FD;

// RAPL (Section IV).
inline constexpr MsrAddress MSR_RAPL_POWER_UNIT = 0x606;
inline constexpr MsrAddress MSR_PKG_POWER_LIMIT = 0x610;
inline constexpr MsrAddress MSR_PKG_ENERGY_STATUS = 0x611;
inline constexpr MsrAddress MSR_DRAM_POWER_LIMIT = 0x618;
inline constexpr MsrAddress MSR_DRAM_ENERGY_STATUS = 0x619;
inline constexpr MsrAddress MSR_PP0_ENERGY_STATUS = 0x639;

// Hardware-managed p-states (Skylake-SP and later; SDM Vol. 3 §14.4).
// HWP hands the p-state decision to the PCU: software expresses a
// min/max/desired window plus an energy-performance preference (EPP) and
// the hardware picks the operating point inside it.
inline constexpr MsrAddress MSR_PM_ENABLE = 0x770;            // bit 0: HWP enable
inline constexpr MsrAddress IA32_HWP_CAPABILITIES = 0x771;    // highest/guaranteed/efficient/lowest
inline constexpr MsrAddress IA32_HWP_REQUEST_PKG = 0x772;     // package-wide fallback request
inline constexpr MsrAddress IA32_HWP_REQUEST = 0x774;         // per-thread min/max/desired/EPP
inline constexpr MsrAddress IA32_HWP_STATUS = 0x777;          // excursion status bits

// Uncore frequency control/observation.
// "it can be specified via the MSR UNCORE_RATIO_LIMIT. However, neither the
// actual number of this MSR nor the encoded information is available"
// (Section II-D; the number 0x620 became public later).
inline constexpr MsrAddress MSR_UNCORE_RATIO_LIMIT = 0x620;

// U-box fixed counter: counts uncore clocks (LIKWID's UNCORE_CLOCK:UBOXFIX,
// Section V-A footnote).
inline constexpr MsrAddress U_MSR_PMON_UCLK_FIXED_CTL = 0x703;
inline constexpr MsrAddress U_MSR_PMON_UCLK_FIXED_CTR = 0x704;

}  // namespace hsw::msr
