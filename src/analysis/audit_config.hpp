// Audit modes and tolerances for the invariant checker.
//
// The checker is wired into the survey drivers behind this config: Off adds
// zero overhead (nothing attaches), Warn collects diagnostics and prints a
// summary to stderr, Strict turns any violation into an AuditError so the
// reproduction sweeps double as invariant tests.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace hsw::analysis {

enum class AuditMode { Off, Warn, Strict };

/// Thrown by InvariantChecker::finish() in Strict mode when the run
/// produced diagnostics; carries the sink summary.
class AuditError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct AuditConfig {
    AuditMode mode = AuditMode::Off;

    /// Cadence of the periodic state sampling event on the simulator.
    util::Time sample_period = util::Time::us(100);

    /// Package power upper bound: TDP * (1 + fraction) + absolute. The
    /// margin covers the PCU's deliberate dither overshoot around the
    /// budget and the modeled-RAPL workload bias (Fig. 2a).
    double power_margin_fraction = 0.15;
    util::Power power_margin = util::Power::watts(10.0);

    /// Power above the capping bound only becomes a violation once it has
    /// persisted this long. RAPL capping is an averaged control (PL1/PL2
    /// style) and the PCU reacts at the next ~500 us p-state opportunity,
    /// so a C-state exit storm between grants legitimately overshoots for
    /// up to one opportunity period plus the apply latency.
    util::Time power_excursion_allowance = util::Time::us(700);

    /// Instantaneous never-exceed envelope, PL4 style: TDP * (1 + fraction)
    /// + the absolute margin above. Even inside the excursion allowance the
    /// model must stay under this.
    double power_peak_fraction = 0.50;

    /// Package power floor while any core is in C0 (leakage + static rails
    /// can never vanish under load).
    util::Power active_power_floor = util::Power::watts(0.5);

    /// Upper bound on plausible DRAM-domain power for the wrap check.
    util::Power dram_power_bound = util::Power::watts(60.0);

    /// Residency sum may exceed wall time by this fraction (tick rounding
    /// at sample edges) plus a small absolute tick slack.
    double residency_slack_fraction = 0.01;
    double residency_slack_ticks = 1e6;  // 400 us of 2.5 GHz TSC ticks

    /// P-state grid tolerances: opportunity spacing must stay within
    /// `grid_period_slack` of the ~500 us period, and a "change complete"
    /// must trail its opportunity by at most switch-time-max plus
    /// `grid_apply_slack`.
    util::Time grid_period_slack = util::Time::us(25);
    util::Time grid_apply_slack = util::Time::us(5);

    /// Diagnostics retained verbatim by the sink (everything is counted).
    std::size_t max_diagnostics = 256;

    [[nodiscard]] static AuditConfig off() { return AuditConfig{}; }
    [[nodiscard]] static AuditConfig warn() {
        AuditConfig c;
        c.mode = AuditMode::Warn;
        return c;
    }
    [[nodiscard]] static AuditConfig strict() {
        AuditConfig c;
        c.mode = AuditMode::Strict;
        return c;
    }
};

}  // namespace hsw::analysis
