#include "analysis/invariant_checker.hpp"

#include <algorithm>
#include <cstdio>

#include "arch/calibration.hpp"
#include "arch/generation.hpp"
#include "core/node.hpp"
#include "pcu/uncore_scaling.hpp"

namespace hsw::analysis {

namespace cal = hsw::arch::cal;
using util::Frequency;
using util::Power;
using util::Time;

namespace {

/// Frequency comparisons tolerate half a ratio step of float noise.
constexpr double kHzTolerance = 0.5e6;
/// Residency monotonicity tolerance (counter quantization).
constexpr double kTickTolerance = 1.0;
/// Absolute slack on decoded energy deltas (counter quantization, joules).
constexpr double kEnergySlackJoules = 0.5;

}  // namespace

InvariantChecker::InvariantChecker(AuditConfig cfg)
    : cfg_{cfg}, sink_{cfg.max_diagnostics}, linter_{sink_} {}

InvariantChecker::~InvariantChecker() { detach(); }

void InvariantChecker::violation(Invariant inv, Time when, std::string subject,
                                 std::string message, double value, double bound) {
    sink_.report(Diagnostic{
        .invariant = inv,
        .severity = Severity::Violation,
        .when = when,
        .subject = std::move(subject),
        .message = std::move(message),
        .value = value,
        .bound = bound,
    });
}

Power InvariantChecker::package_power_bound(const arch::Sku& sku) const {
    return sku.tdp * (1.0 + cfg_.power_margin_fraction) + cfg_.power_margin;
}

Power InvariantChecker::package_power_peak_bound(const arch::Sku& sku) const {
    return sku.tdp * (1.0 + cfg_.power_peak_fraction) + cfg_.power_margin;
}

// --- node attachment --------------------------------------------------------

void InvariantChecker::attach(core::Node& node) {
    if (cfg_.mode == AuditMode::Off || node_ != nullptr) return;
    node_ = &node;
    deferred_grid_ = arch::traits(node.sku().generation).deferred_pstate_grid;

    trace_observer_ = node.trace().add_observer(
        [this](const sim::TraceView& rec) { observe_trace(rec, deferred_grid_); });

    msr_observer_ = node.msrs().add_observer([this](const msr::MsrAccessEvent& access) {
        const Time now = node_->now();
        if (access.kind == msr::MsrAccessEvent::Kind::Read) {
            observe_msr_read(now, access.cpu, access.address);
        } else {
            observe_msr_write(now, access.cpu, access.address, access.value);
        }
    });

    periodic_id_ = node.simulator().schedule_periodic(
        node.now() + cfg_.sample_period, cfg_.sample_period, [this](Time) { sample(); });

    sample();  // establish counter/residency baselines at attach time
}

void InvariantChecker::detach() {
    if (node_ == nullptr) return;
    // Remove only this checker's taps: another observer registered on the
    // same node (an engine metrics probe, a second checker) stays live.
    node_->trace().remove_observer(trace_observer_);
    node_->msrs().remove_observer(msr_observer_);
    trace_observer_ = 0;
    msr_observer_ = 0;
    node_->simulator().cancel_periodic(periodic_id_);
    periodic_id_ = 0;
    node_ = nullptr;
}

void InvariantChecker::sample() {
    if (node_ == nullptr) return;
    core::Node& n = *node_;
    n.sync();
    const Time now = n.now();
    const arch::Sku& sku = n.sku();
    const double tick_hz = sku.nominal_frequency.as_hz();
    // The wrap check only needs to separate real accumulation from the
    // absurd deltas a backwards counter decodes to, so it runs with a
    // deliberately loose bound (modeled RAPL on SNB-EP has workload bias).
    const Power pkg_wrap_bound = sku.tdp * 2.0 + Power::watts(20.0);

    for (unsigned s = 0; s < n.socket_count(); ++s) {
        const core::Socket& sock = n.socket(s);
        const std::string tag = "socket" + std::to_string(s);

        const rapl::RaplPackage& rp = sock.rapl();
        observe_energy_counter(tag + ".pkg", now, rp.pkg_energy_raw(),
                               rp.energy_unit(rapl::Domain::Package), pkg_wrap_bound);
        // DRAM mode 0 produces unspecified values on Haswell-EP (Section
        // IV) -- no invariant to hold there.
        if (rp.has_domain(rapl::Domain::Dram) && rp.dram_mode() == rapl::DramMode::Mode1) {
            observe_energy_counter(tag + ".dram", now, rp.dram_energy_raw(),
                                   rp.energy_unit(rapl::Domain::Dram),
                                   cfg_.dram_power_bound);
        }

        observe_package_power(sku, now, s, sock.current_package_power(now),
                              sock.any_core_active());

        const auto limit = pcu::decode_uncore_ratio_limit(sock.uncore_ratio_limit());
        observe_uncore(sku, now, s, sock.uncore_frequency(), sock.uncore_halted(),
                       limit.max_ratio);

        observe_residency(tag + ".pkg-cstate", now, sock.pkg_c3_residency(),
                          sock.pkg_c6_residency(), tick_hz);

        for (unsigned c = 0; c < n.cores_per_socket(); ++c) {
            const core::SimCore& core = sock.cores()[c];
            const unsigned cpu = n.cpu_id(s, c);
            observe_core(sku, now, cpu, core.state, core.frequency, core.avx_licensed);
            observe_residency("cpu" + std::to_string(cpu), now, core.c3_residency,
                              core.c6_residency, tick_hz);
        }
    }
}

// --- observation primitives -------------------------------------------------

void InvariantChecker::observe_trace(const sim::TraceView& rec, bool deferred_grid) {
    if (trace_time_seen_ && rec.when < last_trace_time_) {
        std::string subject{rec.category};
        subject += '/';
        subject += rec.subject;
        violation(Invariant::TimeMonotonic, rec.when, std::move(subject),
                  "trace record earlier than its predecessor", rec.when.as_us(),
                  last_trace_time_.as_us());
    } else {
        last_trace_time_ = rec.when;
        trace_time_seen_ = true;
    }

    // Grid semantics only exist on parts with the deferred p-state
    // mechanism (Section VI-A); legacy parts apply requests immediately.
    if (!deferred_grid) return;

    if (rec.category == "pcu" && rec.detail == "opportunity") {
        const auto it = last_opportunity_.find(rec.subject);
        if (it != last_opportunity_.end()) {
            const Time spacing = rec.when - it->second;
            const Time slack = cal::kPstateOpportunityJitter + cfg_.grid_period_slack;
            if (spacing < cal::kPstateOpportunityPeriod - slack ||
                spacing > cal::kPstateOpportunityPeriod + slack) {
                violation(Invariant::PstateGrid, rec.when, std::string{rec.subject},
                          "opportunity spacing off the ~500 us grid", spacing.as_us(),
                          cal::kPstateOpportunityPeriod.as_us());
            }
            it->second = rec.when;
        } else {
            last_opportunity_.emplace(rec.subject, rec.when);
        }
        return;
    }

    if (rec.category == "pstate" && rec.detail == "change complete") {
        const auto it = last_opportunity_.find(rec.subject);
        if (it == last_opportunity_.end()) {
            violation(Invariant::PstateGrid, rec.when, std::string{rec.subject},
                      "p-state grant without a preceding PCU opportunity",
                      rec.when.as_us(), 0.0);
            return;
        }
        const Time delta = rec.when - it->second;
        const Time lo = cal::kPstateSwitchTimeMin - cfg_.grid_apply_slack;
        const Time hi = cal::kPstateSwitchTimeMax + cfg_.grid_apply_slack;
        if (delta < lo || delta > hi) {
            violation(Invariant::PstateGrid, rec.when, std::string{rec.subject},
                      "grant applied outside the switching window after the "
                      "opportunity",
                      delta.as_us(), hi.as_us());
        }
    }
}

void InvariantChecker::observe_energy_counter(std::string_view subject, Time when,
                                              std::uint32_t raw, double joules_per_count,
                                              Power max_plausible) {
    CounterState& st = counters_[std::string{subject}];
    if (st.seen && raw != st.raw) {
        // A well-behaved counter only wraps forward: any decrease decodes
        // to a near-2^32 delta, i.e. an impossible energy for the interval.
        const std::uint32_t delta = raw - st.raw;
        const double joules = static_cast<double>(delta) * joules_per_count;
        const double dt = (when - st.when).as_seconds();
        const double budget = max_plausible.as_watts() * dt + kEnergySlackJoules;
        if (joules > budget) {
            violation(Invariant::EnergyCounter, when, std::string{subject},
                      "energy counter regressed or jumped implausibly", joules, budget);
        }
    }
    if (!st.seen || raw != st.raw) {
        st.raw = raw;
        st.when = when;
        st.seen = true;
    }
}

void InvariantChecker::observe_core(const arch::Sku& sku, Time when, unsigned cpu,
                                    cstates::CState state, Frequency granted,
                                    bool avx_licensed) {
    (void)state;  // grants exist (as the resume point) even for parked cores
    const double hz = granted.as_hz();
    const double lo = sku.min_frequency.as_hz() - kHzTolerance;
    const double hi = sku.max_turbo(1).as_hz() + kHzTolerance;
    const std::string subject = "cpu" + std::to_string(cpu);
    if (hz < lo || hz > hi) {
        violation(Invariant::CoreFrequency, when, subject,
                  "granted clock outside the SKU's p-state range", granted.as_ghz(),
                  hz < lo ? sku.min_frequency.as_ghz() : sku.max_turbo(1).as_ghz());
        return;
    }
    if (avx_licensed && hz > sku.max_avx_turbo(1).as_hz() + kHzTolerance) {
        violation(Invariant::AvxLicense, when, subject,
                  "AVX-licensed core above its AVX turbo bin", granted.as_ghz(),
                  sku.max_avx_turbo(1).as_ghz());
    }
}

void InvariantChecker::observe_uncore(const arch::Sku& sku, Time when, unsigned socket,
                                      Frequency frequency, bool clock_halted,
                                      unsigned msr_max_ratio) {
    if (clock_halted) return;  // PC3/PC6: the clock is stopped, not scaled
    double lo = sku.uncore_min.as_hz();
    if (msr_max_ratio != 0) {
        // A software UNCORE_RATIO_LIMIT cap may legitimately pull the
        // uncore below the UFS hardware floor.
        lo = std::min(lo, Frequency::from_ratio(msr_max_ratio).as_hz());
    }
    const double hz = frequency.as_hz();
    if (hz < lo - kHzTolerance || hz > sku.uncore_max.as_hz() + kHzTolerance) {
        violation(Invariant::UncoreFrequency, when, "socket" + std::to_string(socket),
                  "uncore clock outside the UFS bounds", frequency.as_ghz(),
                  hz < lo ? Frequency::hz(lo).as_ghz() : sku.uncore_max.as_ghz());
    }
}

void InvariantChecker::observe_package_power(const arch::Sku& sku, Time when,
                                             unsigned socket, Power power,
                                             bool any_core_active) {
    const std::string subject = "socket" + std::to_string(socket);
    const Power upper = package_power_bound(sku);
    if (power > upper) {
        // Capping is an averaged control: the PCU only reacts at the next
        // ~500 us opportunity, so a wake storm between grants (e.g. nine
        // parked cores resuming at a 9-active turbo ratio) overshoots for
        // up to one period plus the apply latency. Tolerate excursions
        // shorter than the allowance; anything longer is a real capping
        // failure, and the PL4-style peak envelope holds unconditionally.
        const Power peak = package_power_peak_bound(sku);
        if (power > peak) {
            violation(Invariant::PackagePower, when, subject,
                      "package power above the instantaneous peak envelope",
                      power.as_watts(), peak.as_watts());
            return;
        }
        ExcursionState& exc = power_excursions_[socket];
        if (!exc.above) {
            exc.above = true;
            exc.since = when;
            return;
        }
        if (when - exc.since <= cfg_.power_excursion_allowance) return;
        violation(Invariant::PackagePower, when, subject,
                  "package power above TDP plus capping margin", power.as_watts(),
                  upper.as_watts());
        return;
    }
    power_excursions_[socket].above = false;
    const Power floor = any_core_active ? cfg_.active_power_floor : Power::zero();
    if (power < floor) {
        violation(Invariant::PackagePower, when, subject,
                  any_core_active ? "package power below the active idle floor"
                                  : "negative package power",
                  power.as_watts(), floor.as_watts());
    }
}

void InvariantChecker::observe_residency(std::string_view subject, Time when,
                                         double c3_ticks, double c6_ticks,
                                         double tick_hz) {
    ResidencyState& st = residencies_[std::string{subject}];
    if (!st.seen) {
        st.seen = true;
        st.c3 = st.c3_base = c3_ticks;
        st.c6 = st.c6_base = c6_ticks;
        st.base_time = when;
        return;
    }
    if (c3_ticks + kTickTolerance < st.c3 || c6_ticks + kTickTolerance < st.c6) {
        violation(Invariant::Residency, when, std::string{subject},
                  "C-state residency counter regressed",
                  std::min(c3_ticks - st.c3, c6_ticks - st.c6), 0.0);
    }
    const double wall_ticks = (when - st.base_time).as_seconds() * tick_hz;
    const double used = (c3_ticks - st.c3_base) + (c6_ticks - st.c6_base);
    const double bound =
        wall_ticks * (1.0 + cfg_.residency_slack_fraction) + cfg_.residency_slack_ticks;
    if (used > bound) {
        violation(Invariant::Residency, when, std::string{subject},
                  "C3+C6 residency exceeds elapsed wall time", used, bound);
    }
    st.c3 = c3_ticks;
    st.c6 = c6_ticks;
}

void InvariantChecker::observe_msr_read(Time when, unsigned cpu, msr::MsrAddress addr) {
    linter_.check_read(when, cpu, addr);
}

void InvariantChecker::observe_msr_write(Time when, unsigned cpu, msr::MsrAddress addr,
                                         std::uint64_t value) {
    linter_.check_write(when, cpu, addr, value);
}

// --- results ----------------------------------------------------------------

void InvariantChecker::finish() {
    if (node_ != nullptr) sample();
    if (sink_.empty() || cfg_.mode == AuditMode::Off) return;
    if (cfg_.mode == AuditMode::Strict) throw AuditError{sink_.summary()};
    std::fputs(sink_.summary().c_str(), stderr);
}

}  // namespace hsw::analysis
