// MSR access linter.
//
// Validates every simulated rdmsr/wrmsr against a catalog derived from
// msr/addresses.hpp: the address must be known, writes must target writable
// registers (IA32_PERF_STATUS, the energy-status counters and the other
// hardware-maintained counters reject writes, like the #GP a real wrmsr
// raises), and written values must fit the register's architected field
// width. Violations become Invariant::MsrAccess diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "analysis/diagnostic.hpp"
#include "msr/addresses.hpp"
#include "util/units.hpp"

namespace hsw::analysis {

struct MsrSpec {
    msr::MsrAddress address = 0;
    std::string_view name;
    bool writable = false;
    /// Highest meaningful bit count for writes; values with bits at or
    /// above this width are flagged (64 = no width restriction).
    unsigned write_width_bits = 64;
};

/// The full catalog (every address in msr/addresses.hpp), address-sorted.
[[nodiscard]] std::span<const MsrSpec> msr_catalog();

/// Catalog entry for an address, or nullptr if unknown.
[[nodiscard]] const MsrSpec* msr_lookup(msr::MsrAddress addr);

/// Stateless per-access linter reporting into a shared sink.
class MsrLinter {
public:
    explicit MsrLinter(DiagnosticSink& sink) : sink_{&sink} {}

    /// Lint one read; returns true when the access is clean.
    bool check_read(util::Time when, unsigned cpu, msr::MsrAddress addr);

    /// Lint one write; returns true when the access is clean.
    bool check_write(util::Time when, unsigned cpu, msr::MsrAddress addr,
                     std::uint64_t value);

private:
    DiagnosticSink* sink_;
};

}  // namespace hsw::analysis
