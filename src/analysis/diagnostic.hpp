// Structured audit findings.
//
// Every invariant violation the analysis layer detects becomes one
// Diagnostic record: which invariant, when (simulated time), on what subject
// (a socket, a cpu, an MSR address), the offending value and the bound it
// broke. Tools print them; tests assert on exact (invariant, count) pairs.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace hsw::analysis {

/// The invariant catalog. One enumerator per model property the checker
/// audits; tests produce exactly one class of these per violation scenario.
enum class Invariant {
    TimeMonotonic,     // trace/event stream timestamps never go backwards
    EnergyCounter,     // RAPL energy counters non-decreasing modulo 2^32 wrap
    PackagePower,      // package power within [idle floor, TDP + margin]
    CoreFrequency,     // granted core clock inside the SKU's p-state range
    AvxLicense,        // licensed core above its AVX turbo bin
    UncoreFrequency,   // uncore clock outside the UFS (or MSR-clamped) bounds
    PstateGrid,        // grant outside the ~500 us opportunity grid semantics
    Residency,         // C-state residency regressed or exceeds wall time
    MsrAccess,         // unknown MSR, write to read-only, or oversized value
    EngineJob,         // experiment-engine job retried or failed permanently
    ServiceAdmission,  // survey service rejected a request (overload/deadline)
};

[[nodiscard]] std::string_view name(Invariant i);

enum class Severity { Warning, Violation };

struct Diagnostic {
    Invariant invariant = Invariant::TimeMonotonic;
    Severity severity = Severity::Violation;
    util::Time when;
    std::string subject;  // e.g. "socket0.pkg", "cpu3", "msr 0x611"
    std::string message;  // human-readable description
    double value = 0.0;   // offending quantity (unit depends on invariant)
    double bound = 0.0;   // the bound it violated

    /// One-line rendering: "[  123.456 us] energy-counter socket0.pkg: ...".
    [[nodiscard]] std::string format() const;
};

/// Bounded collector for diagnostics. Keeps the first `capacity` records
/// verbatim (a broken invariant usually repeats every sample; the first
/// occurrences carry the signal) but counts everything.
class DiagnosticSink {
public:
    explicit DiagnosticSink(std::size_t capacity = 256) : capacity_{capacity} {}

    void report(Diagnostic d);

    [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    [[nodiscard]] bool empty() const { return total_ == 0; }
    /// All diagnostics ever reported, including ones dropped beyond capacity.
    [[nodiscard]] std::size_t total() const { return total_; }
    /// Reported diagnostics of one invariant class (capped at capacity).
    [[nodiscard]] std::size_t count(Invariant i) const;

    void clear();

    /// Multi-line report: per-invariant totals followed by the retained
    /// records. Empty string when clean.
    [[nodiscard]] std::string summary() const;

private:
    std::size_t capacity_;
    std::size_t total_ = 0;
    std::vector<Diagnostic> diags_;
};

}  // namespace hsw::analysis
