// Runtime invariant audit for the simulated machine.
//
// The checker attaches to a live core::Node and mechanically enforces the
// physical and architectural invariants the paper's results rest on:
//  - the event/trace stream is time-monotone,
//  - RAPL energy counters only grow (modulo the 32-bit wrap), at a
//    plausible rate,
//  - package power stays inside [idle floor, TDP + capping margin] --
//    excursions shorter than one PCU reaction time are tolerated up to a
//    PL4-style instantaneous peak envelope,
//  - granted core clocks stay inside the SKU's p-state range and, when the
//    AVX license is held, inside the AVX turbo bins (Section II-F),
//  - the uncore clock respects the UFS bounds (Section II-D / Table III),
//  - p-state grants follow the ~500 us opportunity grid semantics of
//    Figures 3/4 (opportunity spacing, apply-after-switch-time),
//  - C-state residency counters are monotone and sum to <= wall time,
//  - every MSR access passes the msr_lint catalog.
//
// Attachment uses three hooks: a sim::Trace observer (grid + monotonicity),
// an msr::MsrFile observer (access linting), and a periodic sampling event
// on the node's simulator (state bounds). All observe_* primitives are
// public so tests can feed synthetic out-of-spec data without a node.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "analysis/audit_config.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/msr_lint.hpp"
#include "arch/sku.hpp"
#include "msr/msr_file.hpp"
#include "cstates/cstate.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

namespace hsw::core {
class Node;
}

namespace hsw::analysis {

class InvariantChecker {
public:
    explicit InvariantChecker(AuditConfig cfg = AuditConfig::warn());
    ~InvariantChecker();
    InvariantChecker(const InvariantChecker&) = delete;
    InvariantChecker& operator=(const InvariantChecker&) = delete;

    /// Hook into a node: trace observer, MSR observer, periodic sampling.
    /// No-op when the config mode is Off. The node must outlive the checker
    /// or detach() must be called first.
    void attach(core::Node& node);
    void detach();
    [[nodiscard]] bool attached() const { return node_ != nullptr; }

    /// One full sampling pass over the attached node (runs periodically
    /// while attached; public so tests can force a pass).
    void sample();

    // --- observation primitives (public for synthetic-data tests) ---

    /// Trace stream: time monotonicity, and on grid-scheduled parts the
    /// opportunity spacing / grant timing invariants. Takes the borrowed
    /// view observers receive (a TraceRecord converts implicitly).
    void observe_trace(const sim::TraceView& rec, bool deferred_grid = true);

    /// One reading of a wrapping 32-bit energy counter. `max_plausible`
    /// bounds the decoded power between counter changes; a counter that
    /// moves backwards decodes to an absurd wrapped delta and trips it.
    void observe_energy_counter(std::string_view subject, util::Time when,
                                std::uint32_t raw, double joules_per_count,
                                util::Power max_plausible);

    /// One core operating point: granted clock within the SKU's p-state
    /// range; licensed cores within the AVX turbo bins.
    void observe_core(const arch::Sku& sku, util::Time when, unsigned cpu,
                      cstates::CState state, util::Frequency granted, bool avx_licensed);

    /// Uncore clock within [UFS min (or MSR clamp), UFS max].
    void observe_uncore(const arch::Sku& sku, util::Time when, unsigned socket,
                        util::Frequency frequency, bool clock_halted,
                        unsigned msr_max_ratio);

    /// Package power within [idle floor, TDP + capping margin]. Excursions
    /// above the capping bound are tolerated for `power_excursion_allowance`
    /// (the PCU's reaction time) as long as they stay under the peak
    /// envelope; sustained overshoot is a violation on every later sample.
    void observe_package_power(const arch::Sku& sku, util::Time when, unsigned socket,
                               util::Power power, bool any_core_active);

    /// C-state residency counters (ticks at `tick_hz`): monotone, and the
    /// accumulation since the first observation bounded by wall time.
    void observe_residency(std::string_view subject, util::Time when, double c3_ticks,
                           double c6_ticks, double tick_hz);

    /// MSR accesses (delegates to the msr_lint catalog).
    void observe_msr_read(util::Time when, unsigned cpu, msr::MsrAddress addr);
    void observe_msr_write(util::Time when, unsigned cpu, msr::MsrAddress addr,
                           std::uint64_t value);

    // --- results ---

    [[nodiscard]] const DiagnosticSink& sink() const { return sink_; }
    [[nodiscard]] bool clean() const { return sink_.empty(); }
    [[nodiscard]] std::string report() const { return sink_.summary(); }
    [[nodiscard]] const AuditConfig& config() const { return cfg_; }

    /// Final audit pass + mode action: Strict throws AuditError when any
    /// diagnostic was recorded; Warn prints the summary to stderr. Survey
    /// drivers call this after their sweeps.
    void finish();

private:
    struct CounterState {
        bool seen = false;
        std::uint32_t raw = 0;
        util::Time when;
    };
    struct ResidencyState {
        bool seen = false;
        double c3 = 0.0;
        double c6 = 0.0;
        double c3_base = 0.0;
        double c6_base = 0.0;
        util::Time base_time;
    };

    struct ExcursionState {
        bool above = false;
        util::Time since;
    };

    [[nodiscard]] util::Power package_power_bound(const arch::Sku& sku) const;
    [[nodiscard]] util::Power package_power_peak_bound(const arch::Sku& sku) const;
    void violation(Invariant inv, util::Time when, std::string subject,
                   std::string message, double value, double bound);

    AuditConfig cfg_;
    DiagnosticSink sink_;
    MsrLinter linter_;

    core::Node* node_ = nullptr;
    bool deferred_grid_ = true;
    std::uint64_t periodic_id_ = 0;
    sim::Trace::ObserverId trace_observer_ = 0;
    msr::MsrFile::ObserverId msr_observer_ = 0;

    bool trace_time_seen_ = false;
    util::Time last_trace_time_;
    std::map<std::string, util::Time, std::less<>> last_opportunity_;
    std::map<std::string, CounterState, std::less<>> counters_;
    std::map<std::string, ResidencyState, std::less<>> residencies_;
    std::map<unsigned, ExcursionState> power_excursions_;
};

}  // namespace hsw::analysis
