#include "analysis/msr_lint.hpp"

#include <array>
#include <cstdio>

namespace hsw::analysis {

namespace {

using msr::MsrAddress;

// One entry per register the simulated machine implements. Read-only-ness
// follows the device models: status registers and hardware-maintained
// counters reject writes; control registers accept them with the field
// widths used by the model (ratio fields are 100 MHz multiples in bits 15:8,
// EPB is a 4-bit hint, UNCORE_RATIO_LIMIT packs two 7-bit ratios).
constexpr std::array<MsrSpec, 27> kCatalog = {{
    {msr::IA32_MPERF, "IA32_MPERF", false, 64},
    {msr::IA32_APERF, "IA32_APERF", false, 64},
    {msr::IA32_PERF_STATUS, "IA32_PERF_STATUS", false, 64},
    {msr::IA32_PERF_CTL, "IA32_PERF_CTL", true, 16},
    {msr::IA32_ENERGY_PERF_BIAS, "IA32_ENERGY_PERF_BIAS", true, 4},
    {msr::IA32_FIXED_CTR0, "IA32_FIXED_CTR0", false, 64},
    {msr::IA32_FIXED_CTR1, "IA32_FIXED_CTR1", false, 64},
    {msr::IA32_FIXED_CTR2, "IA32_FIXED_CTR2", false, 64},
    {msr::MSR_STALL_CYCLES, "MSR_STALL_CYCLES", false, 64},
    {msr::MSR_PKG_C3_RESIDENCY, "MSR_PKG_C3_RESIDENCY", false, 64},
    {msr::MSR_PKG_C6_RESIDENCY, "MSR_PKG_C6_RESIDENCY", false, 64},
    {msr::MSR_CORE_C3_RESIDENCY, "MSR_CORE_C3_RESIDENCY", false, 64},
    {msr::MSR_CORE_C6_RESIDENCY, "MSR_CORE_C6_RESIDENCY", false, 64},
    {msr::MSR_RAPL_POWER_UNIT, "MSR_RAPL_POWER_UNIT", false, 64},
    {msr::MSR_PKG_POWER_LIMIT, "MSR_PKG_POWER_LIMIT", true, 64},
    {msr::MSR_PKG_ENERGY_STATUS, "MSR_PKG_ENERGY_STATUS", false, 64},
    {msr::MSR_DRAM_POWER_LIMIT, "MSR_DRAM_POWER_LIMIT", true, 64},
    {msr::MSR_DRAM_ENERGY_STATUS, "MSR_DRAM_ENERGY_STATUS", false, 64},
    {msr::MSR_UNCORE_RATIO_LIMIT, "MSR_UNCORE_RATIO_LIMIT", true, 15},
    // PP0 is a valid architectural address (present on SNB-EP); whether the
    // running part implements it is the MsrFile's #GP decision, not a lint.
    {msr::MSR_PP0_ENERGY_STATUS, "MSR_PP0_ENERGY_STATUS", false, 64},
    {msr::U_MSR_PMON_UCLK_FIXED_CTL, "U_MSR_PMON_UCLK_FIXED_CTL", true, 32},
    {msr::U_MSR_PMON_UCLK_FIXED_CTR, "U_MSR_PMON_UCLK_FIXED_CTR", false, 64},
    // HWP registers (Skylake-SP+): architecturally valid addresses; on
    // pre-HWP parts the MsrFile #GPs, which is its decision, not a lint.
    {msr::MSR_PM_ENABLE, "MSR_PM_ENABLE", true, 1},
    {msr::IA32_HWP_CAPABILITIES, "IA32_HWP_CAPABILITIES", false, 32},
    {msr::IA32_HWP_REQUEST_PKG, "IA32_HWP_REQUEST_PKG", true, 32},
    {msr::IA32_HWP_REQUEST, "IA32_HWP_REQUEST", true, 32},
    {msr::IA32_HWP_STATUS, "IA32_HWP_STATUS", false, 32},
}};

std::string subject_for(MsrAddress addr) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "msr 0x%X", addr);
    return buf;
}

}  // namespace

std::span<const MsrSpec> msr_catalog() { return kCatalog; }

const MsrSpec* msr_lookup(MsrAddress addr) {
    for (const auto& spec : kCatalog) {
        if (spec.address == addr) return &spec;
    }
    return nullptr;
}

bool MsrLinter::check_read(util::Time when, unsigned cpu, MsrAddress addr) {
    if (msr_lookup(addr) != nullptr) return true;
    sink_->report(Diagnostic{
        .invariant = Invariant::MsrAccess,
        .severity = Severity::Violation,
        .when = when,
        .subject = subject_for(addr),
        .message = "rdmsr of unknown register on cpu" + std::to_string(cpu),
        .value = static_cast<double>(addr),
        .bound = 0.0,
    });
    return false;
}

bool MsrLinter::check_write(util::Time when, unsigned cpu, MsrAddress addr,
                            std::uint64_t value) {
    const MsrSpec* spec = msr_lookup(addr);
    if (spec == nullptr) {
        sink_->report(Diagnostic{
            .invariant = Invariant::MsrAccess,
            .severity = Severity::Violation,
            .when = when,
            .subject = subject_for(addr),
            .message = "wrmsr to unknown register on cpu" + std::to_string(cpu),
            .value = static_cast<double>(addr),
            .bound = 0.0,
        });
        return false;
    }
    if (!spec->writable) {
        sink_->report(Diagnostic{
            .invariant = Invariant::MsrAccess,
            .severity = Severity::Violation,
            .when = when,
            .subject = subject_for(addr),
            .message = std::string{"wrmsr to read-only "} + std::string{spec->name} +
                       " on cpu" + std::to_string(cpu),
            .value = static_cast<double>(value),
            .bound = 0.0,
        });
        return false;
    }
    if (spec->write_width_bits < 64 && (value >> spec->write_width_bits) != 0) {
        sink_->report(Diagnostic{
            .invariant = Invariant::MsrAccess,
            .severity = Severity::Violation,
            .when = when,
            .subject = subject_for(addr),
            .message = std::string{"wrmsr value exceeds "} +
                       std::to_string(spec->write_width_bits) + "-bit field of " +
                       std::string{spec->name} + " on cpu" + std::to_string(cpu),
            .value = static_cast<double>(value),
            .bound = static_cast<double>((std::uint64_t{1} << spec->write_width_bits) - 1),
        });
        return false;
    }
    return true;
}

}  // namespace hsw::analysis
