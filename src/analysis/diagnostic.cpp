#include "analysis/diagnostic.hpp"

#include <array>
#include <cstdio>

namespace hsw::analysis {

std::string_view name(Invariant i) {
    switch (i) {
        case Invariant::TimeMonotonic: return "time-monotonic";
        case Invariant::EnergyCounter: return "energy-counter";
        case Invariant::PackagePower: return "package-power";
        case Invariant::CoreFrequency: return "core-frequency";
        case Invariant::AvxLicense: return "avx-license";
        case Invariant::UncoreFrequency: return "uncore-frequency";
        case Invariant::PstateGrid: return "pstate-grid";
        case Invariant::Residency: return "residency";
        case Invariant::MsrAccess: return "msr-access";
        case Invariant::EngineJob: return "engine-job";
        case Invariant::ServiceAdmission: return "service-admission";
    }
    return "?";
}

std::string Diagnostic::format() const {
    char buf[384];
    std::snprintf(buf, sizeof buf, "[%12.3f us] %s %-16s %s: %s (value %.6g, bound %.6g)",
                  when.as_us(), severity == Severity::Violation ? "VIOLATION" : "warning",
                  std::string{name(invariant)}.c_str(), subject.c_str(), message.c_str(),
                  value, bound);
    return buf;
}

void DiagnosticSink::report(Diagnostic d) {
    ++total_;
    if (diags_.size() < capacity_) diags_.push_back(std::move(d));
}

std::size_t DiagnosticSink::count(Invariant i) const {
    std::size_t n = 0;
    for (const auto& d : diags_) {
        if (d.invariant == i) ++n;
    }
    return n;
}

void DiagnosticSink::clear() {
    total_ = 0;
    diags_.clear();
}

std::string DiagnosticSink::summary() const {
    if (empty()) return {};
    constexpr std::array<Invariant, 10> kAll = {
        Invariant::TimeMonotonic, Invariant::EnergyCounter,  Invariant::PackagePower,
        Invariant::CoreFrequency, Invariant::AvxLicense,     Invariant::UncoreFrequency,
        Invariant::PstateGrid,    Invariant::Residency,      Invariant::MsrAccess,
        Invariant::EngineJob,
    };
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof buf, "invariant audit: %zu diagnostic(s)", total_);
    out += buf;
    if (total_ > diags_.size()) {
        std::snprintf(buf, sizeof buf, " (%zu retained)", diags_.size());
        out += buf;
    }
    out += "\n";
    for (Invariant i : kAll) {
        const std::size_t n = count(i);
        if (n == 0) continue;
        std::snprintf(buf, sizeof buf, "  %-16s %zu\n", std::string{name(i)}.c_str(), n);
        out += buf;
    }
    for (const auto& d : diags_) {
        out += "  ";
        out += d.format();
        out += "\n";
    }
    return out;
}

}  // namespace hsw::analysis
