#include "core/socket.hpp"

#include <algorithm>
#include <cmath>

#include "arch/calibration.hpp"
#include "platform/registry.hpp"
#include "power/power_model.hpp"
#include "util/rng.hpp"

namespace hsw::core {

namespace cal = hsw::arch::cal;

Socket::Socket(const arch::Sku& sku, unsigned socket_id, bool turbo_enabled,
               rapl::DramMode dram_mode, std::uint64_t seed)
    : sku_{&sku},
      id_{socket_id},
      topo_{arch::make_die_topology(sku.cores)},
      pcu_{sku, socket_id, &platform::backend_for(sku.generation).pcu_policy()},
      rapl_{sku.generation, socket_id, dram_mode, seed},
      bw_model_{sku.generation, sku.cores},
      thermal_{},
      cores_(sku.cores),
      turbo_enabled_{turbo_enabled},
      uncore_freq_{sku.uncore_min},
      uncore_voltage_{power::VfCurve::uncore_curve(socket_id).voltage_for(sku.uncore_min)} {
    util::Rng rng{seed * 131 + 7};
    for (auto& c : cores_) {
        c.requested_ratio = sku.nominal_frequency.ratio();
        c.frequency = sku.min_frequency;
        // Per-core silicon variation (Section III: core voltages for a
        // given p-state differ), clamped to +-2.5 %.
        c.vf_factor = std::clamp(1.0 + rng.normal(0.0, cal::kPerCoreVoltageSigma),
                                 0.975, 1.025);
        c.voltage = power::VfCurve::core_curve(socket_id).voltage_for(sku.min_frequency) *
                    c.vf_factor;
    }
}

pcu::PcuInputs Socket::build_pcu_inputs(Time now, bool system_active,
                                        Frequency fastest_system_core) const {
    pcu::PcuInputs in;
    in.cores.resize(cores_.size());
    double traffic = 0.0;
    double current_intensity = 0.0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const SimCore& c = cores_[i];
        auto& ci = in.cores[i];
        ci.state = c.state;
        ci.requested_ratio = c.requested_ratio;
        ci.hwp_request_raw = c.hwp_request_raw;
        if (c.state == cstates::CState::C0 && c.workload != nullptr) {
            const bool ht = c.threads >= 2;
            ci.avx_fraction = c.workload->avx_fraction;
            ci.avx512_fraction = c.workload->avx512_fraction;
            ci.stall_fraction = c.workload->stall_fraction;
            ci.cdyn_utilization = c.workload->cdyn_at(now, ht);
            traffic += c.workload->uncore_traffic;
            current_intensity = std::max(current_intensity, c.workload->current_intensity);
        }
    }
    in.epb = epb_;
    in.turbo_enabled = turbo_enabled_;
    in.uncore_traffic = std::min(1.0, traffic / static_cast<double>(cores_.size()));
    in.current_intensity = current_intensity;
    in.system_active = system_active;
    in.fastest_system_core = fastest_system_core;
    if (const auto limit = rapl_.active_power_limit()) {
        in.power_limit_watts = limit->as_watts();
    }
    in.uncore_ratio_limit_raw = uncore_ratio_limit_raw_;
    in.hwp_enabled = hwp_enabled_;
    in.hwp_request_pkg_raw = hwp_request_pkg_raw_;
    return in;
}

void Socket::advance_to(Time now) {
    const Time dt = now - last_update_;
    if (dt <= Time::zero()) {
        last_update_ = now;
        return;
    }
    const double seconds = dt.as_seconds();

    // --- core counters ---
    const double tsc_ticks = sku_->nominal_frequency.as_hz() * seconds;
    for (SimCore& c : cores_) {
        if (c.state == cstates::CState::C3) c.c3_residency += tsc_ticks;
        if (c.state == cstates::CState::C6) c.c6_residency += tsc_ticks;
        if (c.state != cstates::CState::C0) continue;
        const double cycles = c.frequency.as_hz() * seconds;
        c.aperf += cycles;
        c.core_cycles += cycles;
        c.mperf += sku_->nominal_frequency.as_hz() * seconds;
        if (c.workload != nullptr) {
            const bool ht = c.threads >= 2;
            const double ratio =
                uncore_freq_ > Frequency::zero() ? c.frequency / uncore_freq_ : 1.0;
            const double ipc = c.workload->ipc(ratio, ht) * c.throughput_factor;
            c.instructions += ipc * cycles;
            c.stall_cycles += c.workload->stall_fraction * cycles;
        }
    }

    // --- uncore clock counter ---
    if (!uncore_halted_) uncore_cycles_ += uncore_freq_.as_hz() * seconds;

    // --- package C-state residency ---
    {
        std::vector<cstates::CState> states;
        states.reserve(cores_.size());
        for (const SimCore& c : cores_) states.push_back(c.state);
        const auto pkg = cstates::resolve_package_state(states, system_active_hint_);
        if (pkg == cstates::PackageCState::PC3) pkg_c3_residency_ += tsc_ticks;
        if (pkg == cstates::PackageCState::PC6) pkg_c6_residency_ += tsc_ticks;
    }

    // --- energy ---
    const Power pkg = current_package_power(last_update_);
    const Power dram = current_dram_power();
    rapl_.integrate(pkg, dram, activity_vector(last_update_), dt);
    thermal_.advance(pkg, dt);

    last_update_ = now;
}

std::optional<pcu::PcuOutputs> Socket::pcu_tick(Time now, bool system_active,
                                                Frequency fastest_system_core) {
    const pcu::PcuInputs in = build_pcu_inputs(now, system_active, fastest_system_core);
    pcu::PcuOutputs out = pcu_.evaluate(in, now);

    // Suppress the apply event when nothing changes (common in steady state).
    bool changed = out.uncore_frequency != uncore_freq_ ||
                   out.uncore_clock_halted != uncore_halted_;
    for (std::size_t i = 0; i < cores_.size() && !changed; ++i) {
        changed = out.cores[i].frequency != cores_[i].frequency ||
                  out.cores[i].throughput_factor != cores_[i].throughput_factor;
    }
    if (!changed) return std::nullopt;
    return out;
}

void Socket::apply_grants(const pcu::PcuOutputs& out) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i].frequency = out.cores[i].frequency;
        cores_[i].voltage = out.cores[i].voltage * cores_[i].vf_factor;
        cores_[i].avx_licensed = out.cores[i].avx_licensed;
        cores_[i].license_level = out.cores[i].license_level;
        cores_[i].throughput_factor = out.cores[i].throughput_factor;
    }
    uncore_freq_ = out.uncore_frequency;
    uncore_voltage_ = out.uncore_voltage;
    uncore_halted_ = out.uncore_clock_halted;
    die_uncore_ = out.die_uncore_frequency;
}

Frequency Socket::fastest_active_core() const {
    Frequency best = Frequency::zero();
    for (const SimCore& c : cores_) {
        if (c.state == cstates::CState::C0) best = std::max(best, c.frequency);
    }
    return best;
}

bool Socket::any_core_active() const {
    return std::any_of(cores_.begin(), cores_.end(), [](const SimCore& c) {
        return c.state == cstates::CState::C0;
    });
}

unsigned Socket::active_core_count() const {
    return static_cast<unsigned>(
        std::count_if(cores_.begin(), cores_.end(), [](const SimCore& c) {
            return c.state == cstates::CState::C0;
        }));
}

Power Socket::current_package_power(Time now) const {
    Power total = power::socket_static_power();
    for (const SimCore& c : cores_) {
        const bool running = c.state == cstates::CState::C0;
        const power::CoreActivity activity{
            .cdyn_utilization = (running && c.workload != nullptr)
                                    ? c.workload->cdyn_at(now, c.threads >= 2)
                                    : 0.0,
            .clock_running = running,
            .power_gated = cstates::power_gated(c.state),
        };
        total += power::core_power(activity, c.voltage, c.frequency);
    }
    if (!uncore_halted_) {
        double traffic = 0.0;
        for (const SimCore& c : cores_) {
            if (c.state == cstates::CState::C0 && c.workload != nullptr) {
                traffic += c.workload->uncore_traffic;
            }
        }
        traffic = std::min(1.0, traffic / static_cast<double>(cores_.size()));
        total += power::uncore_power(traffic, uncore_voltage_, uncore_freq_);
    }
    return total;
}

Bandwidth Socket::current_dram_traffic() const {
    double demand = 0.0;
    for (const SimCore& c : cores_) {
        if (c.state != cstates::CState::C0 || c.workload == nullptr) continue;
        const double scale = c.frequency / sku_->nominal_frequency;
        const double ht = c.threads >= 2 ? 1.15 : 1.0;
        demand += c.workload->dram_gbs_per_core * scale * ht;
    }
    const double peak =
        bw_model_.dram_read(mem::ConcurrencyConfig{sku_->cores, 2},
                            sku_->nominal_frequency, sku_->uncore_max)
            .as_gb_per_sec();
    return Bandwidth::gb_per_sec(std::min(demand, peak));
}

Power Socket::current_dram_power() const {
    return power::dram_power(current_dram_traffic());
}

Bandwidth Socket::achieved_l3_bandwidth() const {
    const Frequency f = fastest_active_core();
    if (f == Frequency::zero()) return Bandwidth::gb_per_sec(0.0);
    return bw_model_.l3_read(concurrency(), f, uncore_freq_);
}

Bandwidth Socket::achieved_dram_bandwidth() const {
    const Frequency f = fastest_active_core();
    if (f == Frequency::zero()) return Bandwidth::gb_per_sec(0.0);
    return bw_model_.dram_read(concurrency(), f, uncore_freq_);
}

mem::ConcurrencyConfig Socket::concurrency() const {
    mem::ConcurrencyConfig cfg{0, 1};
    for (const SimCore& c : cores_) {
        if (c.state != cstates::CState::C0 || c.workload == nullptr) continue;
        ++cfg.cores;
        cfg.threads_per_core = std::max(cfg.threads_per_core, c.threads);
    }
    cfg.cores = std::max(cfg.cores, 1u);
    return cfg;
}

rapl::ActivityVector Socket::activity_vector(Time now) const {
    rapl::ActivityVector av;
    for (const SimCore& c : cores_) {
        if (c.state != cstates::CState::C0 || c.workload == nullptr) continue;
        const double f = c.frequency.as_hz();
        const double ratio = uncore_freq_ > Frequency::zero() ? c.frequency / uncore_freq_ : 1.0;
        const double ipc = c.workload->ipc(ratio, c.threads >= 2);
        av.core_cycles_per_s += f;
        av.uops_per_s += ipc * f * 1.12;  // fused-uop expansion estimate
        av.avx_ops_per_s += ipc * f * c.workload->avx_fraction;
        (void)now;
    }
    av.dram_gbs = current_dram_traffic().as_gb_per_sec();
    if (!uncore_halted_) av.uncore_cycles_per_s = uncore_freq_.as_hz();
    return av;
}

}  // namespace hsw::core
