// One simulated processor package: cores, uncore, PCU, RAPL, thermal.
//
// Between events all state is constant, so the socket integrates counters
// and energy in closed form in advance_to(). The PCU evaluates on the
// 500 us opportunity grid; grants take effect after the FIVR/PLL switching
// time, which is what the FTaLaT-style tools measure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/sku.hpp"
#include "arch/topology.hpp"
#include "cstates/cstate.hpp"
#include "mem/bandwidth_model.hpp"
#include "pcu/pcu.hpp"
#include "power/thermal.hpp"
#include "rapl/model.hpp"
#include "rapl/rapl.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workloads/workload.hpp"

namespace hsw::core {

using util::Bandwidth;
using util::Frequency;
using util::Power;
using util::Time;
using util::Voltage;

class Node;

/// One physical core (up to two hardware threads run the same workload).
struct SimCore {
    cstates::CState state = cstates::CState::C6;
    const workloads::Workload* workload = nullptr;  // null while parked
    unsigned threads = 1;                           // 1 or 2 (HT)
    unsigned requested_ratio = 0;                   // IA32_PERF_CTL target

    // Current grant.
    Frequency frequency;
    Voltage voltage;
    bool avx_licensed = false;
    unsigned license_level = 0;  // 0 none, 1 AVX, 2 AVX-512
    double throughput_factor = 1.0;

    /// Raw IA32_HWP_REQUEST for this core (0 = package fallback). Only
    /// consulted while HWP is enabled on an HWP-capable backend.
    std::uint64_t hwp_request_raw = 0;

    // Free-running counters (doubles; converted to u64 at the MSR edge).
    double aperf = 0.0;
    double mperf = 0.0;
    double instructions = 0.0;
    double core_cycles = 0.0;
    double stall_cycles = 0.0;
    // C-state residency in TSC-rate ticks (MSR_CORE_C3/C6_RESIDENCY).
    double c3_residency = 0.0;
    double c6_residency = 0.0;
    // Per-core silicon variation: relative voltage factor (Section III).
    double vf_factor = 1.0;
};

class Socket {
public:
    Socket(const arch::Sku& sku, unsigned socket_id, bool turbo_enabled,
           rapl::DramMode dram_mode, std::uint64_t seed);

    // --- time integration ---
    /// Integrate counters/energy from the last update to `now` assuming the
    /// current operating point, then remember `now`.
    void advance_to(Time now);

    /// One PCU opportunity-grid evaluation. Returns the grants to apply
    /// after the switching delay (nullopt when nothing changes).
    [[nodiscard]] std::optional<pcu::PcuOutputs> pcu_tick(Time now, bool system_active,
                                                          Frequency fastest_system_core);

    /// Apply previously computed grants (called at tick + switching time).
    void apply_grants(const pcu::PcuOutputs& out);

    // --- state access ---
    [[nodiscard]] unsigned id() const { return id_; }
    [[nodiscard]] const arch::Sku& sku() const { return *sku_; }
    [[nodiscard]] std::vector<SimCore>& cores() { return cores_; }
    [[nodiscard]] const std::vector<SimCore>& cores() const { return cores_; }
    [[nodiscard]] Frequency uncore_frequency() const { return uncore_freq_; }
    [[nodiscard]] bool uncore_halted() const { return uncore_halted_; }
    [[nodiscard]] double uncore_cycles() const { return uncore_cycles_; }
    [[nodiscard]] double pkg_c3_residency() const { return pkg_c3_residency_; }
    [[nodiscard]] double pkg_c6_residency() const { return pkg_c6_residency_; }
    /// Whether the whole system was active at the last update (package
    /// C-state bookkeeping input; set by the node).
    void set_system_active_hint(bool active) { system_active_hint_ = active; }
    [[nodiscard]] rapl::RaplPackage& rapl() { return rapl_; }
    [[nodiscard]] const rapl::RaplPackage& rapl() const { return rapl_; }
    [[nodiscard]] pcu::PcuController& pcu() { return pcu_; }
    [[nodiscard]] const mem::BandwidthModel& bandwidth_model() const { return bw_model_; }
    [[nodiscard]] const arch::DieTopology& topology() const { return topo_; }
    [[nodiscard]] const power::ThermalModel& thermal() const { return thermal_; }

    void set_epb(msr::EpbPolicy p) { epb_ = p; }
    [[nodiscard]] msr::EpbPolicy epb() const { return epb_; }
    void set_turbo_enabled(bool on) { turbo_enabled_ = on; }
    [[nodiscard]] bool turbo_enabled() const { return turbo_enabled_; }

    /// Raw MSR_UNCORE_RATIO_LIMIT value (consumed by the UFS policy).
    void set_uncore_ratio_limit(std::uint64_t raw) { uncore_ratio_limit_raw_ = raw; }
    [[nodiscard]] std::uint64_t uncore_ratio_limit() const { return uncore_ratio_limit_raw_; }

    // --- HWP (Skylake-SP+; ignored by non-HWP backends) ---
    void set_hwp_enabled(bool on) { hwp_enabled_ = on; }
    [[nodiscard]] bool hwp_enabled() const { return hwp_enabled_; }
    void set_hwp_request_pkg(std::uint64_t raw) { hwp_request_pkg_raw_ = raw; }
    [[nodiscard]] std::uint64_t hwp_request_pkg() const { return hwp_request_pkg_raw_; }

    /// Per-die uncore grants (empty unless the backend models them).
    [[nodiscard]] const std::vector<Frequency>& die_uncore_frequencies() const {
        return die_uncore_;
    }

    /// Highest granted clock among C0 cores (zero if none).
    [[nodiscard]] Frequency fastest_active_core() const;
    [[nodiscard]] bool any_core_active() const;
    [[nodiscard]] unsigned active_core_count() const;

    /// Instantaneous package / DRAM power at the current operating point.
    [[nodiscard]] Power current_package_power(Time now) const;
    [[nodiscard]] Power current_dram_power() const;

    /// Aggregate DRAM traffic implied by the running workloads.
    [[nodiscard]] Bandwidth current_dram_traffic() const;

    /// Achieved read bandwidths at the current operating point (what the
    /// membench tool observes).
    [[nodiscard]] Bandwidth achieved_l3_bandwidth() const;
    [[nodiscard]] Bandwidth achieved_dram_bandwidth() const;

    /// Build the PCU inputs for the current state (modulation evaluated at
    /// `now`). Public for tests.
    [[nodiscard]] pcu::PcuInputs build_pcu_inputs(Time now, bool system_active,
                                                  Frequency fastest_system_core) const;

private:
    [[nodiscard]] rapl::ActivityVector activity_vector(Time now) const;
    [[nodiscard]] mem::ConcurrencyConfig concurrency() const;

    const arch::Sku* sku_;
    unsigned id_;
    arch::DieTopology topo_;
    pcu::PcuController pcu_;
    rapl::RaplPackage rapl_;
    mem::BandwidthModel bw_model_;
    power::ThermalModel thermal_;
    std::vector<SimCore> cores_;
    msr::EpbPolicy epb_ = msr::EpbPolicy::Balanced;
    bool turbo_enabled_ = true;
    std::uint64_t uncore_ratio_limit_raw_ = 0;
    bool hwp_enabled_ = false;
    std::uint64_t hwp_request_pkg_raw_ = 0;

    Frequency uncore_freq_;
    Voltage uncore_voltage_;
    bool uncore_halted_ = false;
    std::vector<Frequency> die_uncore_;
    double uncore_cycles_ = 0.0;
    double pkg_c3_residency_ = 0.0;
    double pkg_c6_residency_ = 0.0;
    bool system_active_hint_ = false;
    Time last_update_;
};

}  // namespace hsw::core
