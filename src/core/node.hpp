// The simulated dual-socket compute node -- the library's main entry point.
//
// A Node assembles sockets (cores + PCU + RAPL), the MSR file, the AC-side
// model with an LMG450 meter, and the event schedule (per-socket PCU
// opportunity grids, RAPL counter refresh). Tool code observes the machine
// exclusively through the MSR file and the meter, like on real hardware.
//
// Typical use:
//   core::Node node;                                  // the paper's system
//   node.set_all_workloads(&workloads::firestarter(), 2);
//   node.request_turbo_all();
//   node.run_for(Time::sec(5));
//   auto watts = node.rapl_power_over(Time::sec(4));  // RAPL pkg+DRAM
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/socket.hpp"
#include "cstates/wake_latency.hpp"
#include "pcu/hwp.hpp"
#include "meter/lmg450.hpp"
#include "msr/msr_file.hpp"
#include "power/psu.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace hsw::core {

struct NodeConfig {
    const arch::Sku* sku = nullptr;   // default: Xeon E5-2680 v3
    unsigned sockets = 2;
    bool turbo_enabled = true;
    msr::EpbPolicy epb = msr::EpbPolicy::Balanced;
    rapl::DramMode dram_mode = rapl::DramMode::Mode1;
    std::uint64_t seed = 0xC0FFEE;
    bool trace_enabled = false;
    /// C-state parked cores default to (C6 = deepest, as an idle OS would).
    cstates::CState park_state = cstates::CState::C6;
};

class Node {
public:
    explicit Node(NodeConfig cfg = {});
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    // --- simulation control ---
    [[nodiscard]] util::Time now() const { return sim_.now(); }
    void run_for(util::Time dt);
    void run_until(util::Time t);
    [[nodiscard]] sim::Simulator& simulator() { return sim_; }
    [[nodiscard]] sim::Trace& trace() { return trace_; }

    // --- topology ---
    [[nodiscard]] unsigned socket_count() const { return static_cast<unsigned>(sockets_.size()); }
    [[nodiscard]] unsigned cores_per_socket() const { return sku_->cores; }
    [[nodiscard]] unsigned cpu_count() const { return socket_count() * cores_per_socket(); }
    [[nodiscard]] unsigned cpu_id(unsigned socket, unsigned core) const {
        return socket * cores_per_socket() + core;
    }
    [[nodiscard]] unsigned socket_of(unsigned cpu) const { return cpu / cores_per_socket(); }
    [[nodiscard]] unsigned core_of(unsigned cpu) const { return cpu % cores_per_socket(); }
    [[nodiscard]] const arch::Sku& sku() const { return *sku_; }
    [[nodiscard]] arch::Generation generation() const { return sku_->generation; }
    [[nodiscard]] Socket& socket(unsigned id) { return *sockets_[id]; }
    [[nodiscard]] const Socket& socket(unsigned id) const { return *sockets_[id]; }

    // --- workload control ---
    /// Run `w` on the core; `threads` = 1 or 2 (Hyper-Threading). Wakes the
    /// core into C0 immediately (no latency; use wake() to measure that).
    void set_workload(unsigned cpu, const workloads::Workload* w, unsigned threads = 1);
    /// Park the core in the config's park state.
    void clear_workload(unsigned cpu);
    void set_all_workloads(const workloads::Workload* w, unsigned threads = 1);
    void clear_all_workloads();

    // --- p-state control (through the MSR path, like cpufreq) ---
    void set_pstate(unsigned cpu, util::Frequency f);
    void set_pstate_all(util::Frequency f);
    /// Request the turbo range (ratio nominal+1) on all cpus.
    void request_turbo_all();
    void set_epb(msr::EpbPolicy p);
    void set_turbo_enabled(bool on);

    // --- HWP control (no-ops unless the generation's backend is
    // HWP-capable; see platform::PlatformBackend::hwp_capable()) ---
    /// Whether the simulated part exposes the HWP MSR surface at all.
    [[nodiscard]] bool hwp_capable() const;
    /// Write MSR_PM_ENABLE bit 0 on every package (one-way on real
    /// hardware; the model allows disabling for A/B experiments).
    void enable_hwp(bool on = true);
    /// Program IA32_HWP_REQUEST for one cpu.
    void set_hwp_request(unsigned cpu, const pcu::HwpRequest& req);
    /// Program the same IA32_HWP_REQUEST on every cpu.
    void set_hwp_request_all(const pcu::HwpRequest& req);

    // --- C-state control ---
    void park(unsigned cpu, cstates::CState state);
    /// Wake `wakee` via an IPI from `waker`; returns the sampled transition
    /// latency (the wakee reaches C0 after it).
    util::Time wake(unsigned waker_cpu, unsigned wakee_cpu);
    [[nodiscard]] cstates::CState core_state(unsigned cpu) const;
    /// Package state of a socket under the system-wide activity rule.
    [[nodiscard]] cstates::PackageCState package_state(unsigned socket) const;

    // --- observation ---
    [[nodiscard]] msr::MsrFile& msrs() { return msrs_; }
    [[nodiscard]] const msr::MsrFile& msrs() const { return msrs_; }
    [[nodiscard]] util::Frequency core_frequency(unsigned cpu) const;
    [[nodiscard]] util::Frequency uncore_frequency(unsigned socket) const;
    /// Instantaneous true wall power (PSU model over both RAPL domains).
    [[nodiscard]] util::Power ac_power();
    [[nodiscard]] meter::Lmg450& meter() { return *meter_; }
    /// Run the simulation for `dt` and return the average RAPL package+DRAM
    /// power over that window (sum of both sockets), read via the MSRs.
    [[nodiscard]] util::Power rapl_power_over(util::Time dt);
    /// Same, split per domain for one socket.
    struct RaplWindow {
        util::Power package;
        util::Power dram;
    };
    [[nodiscard]] RaplWindow rapl_window(unsigned socket, util::Time dt);
    /// True (model ground-truth) power, for validation tests.
    [[nodiscard]] util::Power true_node_dc_power();

    [[nodiscard]] const cstates::WakeLatencyModel& wake_model() const { return wake_model_; }
    [[nodiscard]] util::Rng& rng() { return rng_; }

    /// Bring every socket's bookkeeping up to now() (called internally
    /// before reads/mutations; public for tests).
    void sync();

private:
    void install_msrs();
    void schedule_pcu_grid(unsigned socket_id, util::Time first);
    [[nodiscard]] bool any_core_active_in_system() const;
    [[nodiscard]] util::Frequency fastest_system_core() const;
    [[nodiscard]] double read_counter(unsigned cpu, unsigned which) const;

    NodeConfig cfg_;
    const arch::Sku* sku_;
    sim::Simulator sim_;
    sim::Trace trace_;
    msr::MsrFile msrs_;
    util::Rng rng_;
    std::vector<std::unique_ptr<Socket>> sockets_;
    power::NodeAcModel ac_model_;
    std::unique_ptr<meter::Lmg450> meter_;
    cstates::WakeLatencyModel wake_model_;
};

}  // namespace hsw::core
