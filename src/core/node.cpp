#include "core/node.hpp"

#include <algorithm>
#include <cmath>

#include "arch/calibration.hpp"
#include "msr/addresses.hpp"
#include "pcu/hwp.hpp"
#include "platform/registry.hpp"

namespace hsw::core {

namespace cal = hsw::arch::cal;
using util::Frequency;
using util::Power;
using util::Time;

Node::Node(NodeConfig cfg)
    : cfg_{cfg},
      sku_{cfg.sku != nullptr ? cfg.sku : &arch::xeon_e5_2680_v3()},
      rng_{cfg.seed},
      ac_model_{sku_->generation},
      wake_model_{sku_->generation} {
    trace_.enable(cfg.trace_enabled);

    for (unsigned s = 0; s < cfg_.sockets; ++s) {
        sockets_.push_back(std::make_unique<Socket>(*sku_, s, cfg_.turbo_enabled,
                                                    cfg_.dram_mode,
                                                    cfg_.seed * 31 + s + 1));
        sockets_.back()->set_epb(cfg_.epb);
    }

    meter_ = std::make_unique<meter::Lmg450>([this] { return ac_power(); },
                                             cfg_.seed * 17 + 5);

    install_msrs();

    // Per-socket PCU opportunity grids with independent phases (cores on
    // the same socket switch together; sockets are independent -- the
    // Section VI-A parallel-FTaLaT observation).
    const bool deferred = arch::traits(sku_->generation).deferred_pstate_grid;
    if (deferred) {
        for (unsigned s = 0; s < cfg_.sockets; ++s) {
            const auto phase_ns = static_cast<std::int64_t>(
                rng_.uniform(0.0, cal::kPstateOpportunityPeriod.as_us()) * 1000.0);
            schedule_pcu_grid(s, Time::ns(phase_ns));
        }
    } else {
        // Legacy parts still evaluate periodically (turbo/TDP control), but
        // p-state requests additionally trigger immediate evaluations from
        // the PERF_CTL write handler.
        for (unsigned s = 0; s < cfg_.sockets; ++s) {
            schedule_pcu_grid(s, Time::us(50) * (s + 1));
        }
    }

    // RAPL counter refresh cadence (~1 ms).
    for (unsigned s = 0; s < cfg_.sockets; ++s) {
        sim_.schedule_periodic(Time::us(900) + Time::us(40) * s, cal::kRaplUpdatePeriod,
                               [this, s](Time) {
                                   sockets_[s]->advance_to(sim_.now());
                                   sockets_[s]->rapl().publish();
                               });
    }

    // The LMG450 samples the wall power at 20 Sa/s continuously.
    sim_.schedule_periodic(cal::kMeterSamplePeriod, cal::kMeterSamplePeriod,
                           [this](Time) { meter_->sample(sim_.now()); });
}

void Node::schedule_pcu_grid(unsigned socket_id, Time first) {
    sim_.schedule_at(first, [this, socket_id] {
        const Time now = sim_.now();
        sync();
        trace_.record(now, "pcu", "socket" + std::to_string(socket_id), "opportunity");
        auto out = sockets_[socket_id]->pcu_tick(now, any_core_active_in_system(),
                                                 fastest_system_core());
        if (out.has_value()) {
            const double switch_us = rng_.uniform(cal::kPstateSwitchTimeMin.as_us(),
                                                  cal::kPstateSwitchTimeMax.as_us());
            sim_.schedule_after(Time::from_us(switch_us),
                                [this, socket_id, grants = *out] {
                                    sync();
                                    sockets_[socket_id]->apply_grants(grants);
                                    trace_.record(sim_.now(), "pstate",
                                                  "socket" + std::to_string(socket_id),
                                                  "change complete",
                                                  grants.cores.empty()
                                                      ? 0.0
                                                      : grants.cores[0].frequency.as_ghz());
                                });
        }
        // Next opportunity: ~500 us later with a little grid jitter.
        const double jitter_us = rng_.uniform(-cal::kPstateOpportunityJitter.as_us(),
                                              cal::kPstateOpportunityJitter.as_us());
        schedule_pcu_grid(socket_id,
                          now + cal::kPstateOpportunityPeriod + Time::from_us(jitter_us));
    });
}

void Node::sync() {
    const Time now = sim_.now();
    const bool system_active = any_core_active_in_system();
    for (auto& s : sockets_) {
        s->set_system_active_hint(system_active);
        s->advance_to(now);
    }
}

void Node::run_for(Time dt) { run_until(sim_.now() + dt); }

void Node::run_until(Time t) {
    sim_.run_until(t);
    sync();
}

bool Node::any_core_active_in_system() const {
    return std::any_of(sockets_.begin(), sockets_.end(),
                       [](const auto& s) { return s->any_core_active(); });
}

Frequency Node::fastest_system_core() const {
    Frequency best = Frequency::zero();
    for (const auto& s : sockets_) best = std::max(best, s->fastest_active_core());
    return best;
}

// --- MSR wiring -----------------------------------------------------------

void Node::install_msrs() {
    auto core_ref = [this](unsigned cpu) -> SimCore& {
        return sockets_[socket_of(cpu)]->cores()[core_of(cpu)];
    };

    auto counter = [this, core_ref](double SimCore::*member) {
        return [this, core_ref, member](unsigned cpu) {
            sync();
            return static_cast<std::uint64_t>(core_ref(cpu).*member);
        };
    };

    msrs_.register_msr(msr::IA32_APERF, counter(&SimCore::aperf));
    msrs_.register_msr(msr::IA32_MPERF, counter(&SimCore::mperf));
    msrs_.register_msr(msr::IA32_FIXED_CTR0, counter(&SimCore::instructions));
    msrs_.register_msr(msr::IA32_FIXED_CTR1, counter(&SimCore::core_cycles));
    msrs_.register_msr(msr::IA32_FIXED_CTR2, counter(&SimCore::mperf));
    msrs_.register_msr(msr::MSR_STALL_CYCLES, counter(&SimCore::stall_cycles));

    // P-state request/status. The request is latched; hardware acts on it
    // at the next PCU opportunity (Haswell-EP) or near-immediately (older
    // generations and Haswell-HE).
    msrs_.register_msr(
        msr::IA32_PERF_CTL,
        [this, core_ref](unsigned cpu) {
            return static_cast<std::uint64_t>(core_ref(cpu).requested_ratio) << 8;
        },
        [this, core_ref](unsigned cpu, std::uint64_t value) {
            sync();
            const auto ratio = static_cast<unsigned>((value >> 8) & 0xFF);
            core_ref(cpu).requested_ratio = ratio;
            trace_.record(sim_.now(), "pstate", "cpu" + std::to_string(cpu),
                          "request", static_cast<double>(ratio) / 10.0);
            if (!arch::traits(sku_->generation).deferred_pstate_grid) {
                // Legacy behaviour: the request is executed immediately,
                // paying only the switching time.
                const unsigned sid = socket_of(cpu);
                sim_.schedule_after(cal::kLegacyPstateSwitchTime, [this, sid] {
                    sync();
                    auto out = sockets_[sid]->pcu_tick(sim_.now(),
                                                       any_core_active_in_system(),
                                                       fastest_system_core());
                    if (out.has_value()) sockets_[sid]->apply_grants(*out);
                });
            }
        });
    msrs_.register_msr(msr::IA32_PERF_STATUS, [this, core_ref](unsigned cpu) {
        sync();
        const SimCore& c = core_ref(cpu);
        // Bits 15:8 current ratio; bits 47:32 current voltage in 2^-13 V
        // units (the field the paper's Section III voltage observation is
        // read from).
        const auto vid = static_cast<std::uint64_t>(c.voltage.as_volts() * 8192.0);
        return (vid << 32) | (static_cast<std::uint64_t>(c.frequency.ratio()) << 8);
    });

    // C-state residency counters (TSC-rate ticks).
    msrs_.register_msr(msr::MSR_CORE_C3_RESIDENCY, counter(&SimCore::c3_residency));
    msrs_.register_msr(msr::MSR_CORE_C6_RESIDENCY, counter(&SimCore::c6_residency));
    msrs_.register_msr(msr::MSR_PKG_C3_RESIDENCY, [this](unsigned cpu) {
        sync();
        return static_cast<std::uint64_t>(sockets_[socket_of(cpu)]->pkg_c3_residency());
    });
    msrs_.register_msr(msr::MSR_PKG_C6_RESIDENCY, [this](unsigned cpu) {
        sync();
        return static_cast<std::uint64_t>(sockets_[socket_of(cpu)]->pkg_c6_residency());
    });

    // EPB: per-thread register; the PCU consumes the socket-wide policy.
    msrs_.register_msr(
        msr::IA32_ENERGY_PERF_BIAS,
        [this](unsigned cpu) {
            return msr::encode_epb(sockets_[socket_of(cpu)]->epb());
        },
        [this](unsigned cpu, std::uint64_t value) {
            sockets_[socket_of(cpu)]->set_epb(msr::decode_epb(value));
        });

    // Uncore fixed counter (UBOXFIX) and its control register.
    msrs_.register_msr(msr::U_MSR_PMON_UCLK_FIXED_CTR, [this](unsigned cpu) {
        sync();
        return static_cast<std::uint64_t>(sockets_[socket_of(cpu)]->uncore_cycles());
    });
    msrs_.register_storage(msr::U_MSR_PMON_UCLK_FIXED_CTL);

    // UNCORE_RATIO_LIMIT: per-package max/min ratio clamp consumed by the
    // UFS policy. The paper notes the register existed but was undocumented
    // (Section II-D); the encoding became public with later parts.
    msrs_.register_msr(
        msr::MSR_UNCORE_RATIO_LIMIT,
        [this](unsigned cpu) { return sockets_[socket_of(cpu)]->uncore_ratio_limit(); },
        [this](unsigned cpu, std::uint64_t value) {
            sync();
            sockets_[socket_of(cpu)]->set_uncore_ratio_limit(value);
        });

    // HWP surface (Skylake-SP+). The registers only exist on HWP-capable
    // parts; reading them on older generations faults like real hardware
    // (MsrFile reports an unknown register).
    if (platform::backend_for(sku_->generation).hwp_capable()) {
        // MSR_PM_ENABLE: package scoped; bit 0 switches the socket from
        // PERF_CTL-driven to autonomous HWP operation.
        msrs_.register_msr(
            msr::MSR_PM_ENABLE,
            [this](unsigned cpu) {
                return static_cast<std::uint64_t>(
                    sockets_[socket_of(cpu)]->hwp_enabled() ? 1 : 0);
            },
            [this](unsigned cpu, std::uint64_t value) {
                sync();
                sockets_[socket_of(cpu)]->set_hwp_enabled((value & 1) != 0);
                trace_.record(sim_.now(), "hwp",
                              "socket" + std::to_string(socket_of(cpu)),
                              (value & 1) != 0 ? "enable" : "disable");
            });
        msrs_.register_msr(msr::IA32_HWP_CAPABILITIES, [this](unsigned) {
            return pcu::encode_hwp_capabilities(pcu::capabilities_for(*sku_));
        });
        msrs_.register_msr(
            msr::IA32_HWP_REQUEST_PKG,
            [this](unsigned cpu) { return sockets_[socket_of(cpu)]->hwp_request_pkg(); },
            [this](unsigned cpu, std::uint64_t value) {
                sync();
                sockets_[socket_of(cpu)]->set_hwp_request_pkg(value);
            });
        msrs_.register_msr(
            msr::IA32_HWP_REQUEST,
            [this, core_ref](unsigned cpu) { return core_ref(cpu).hwp_request_raw; },
            [this, core_ref](unsigned cpu, std::uint64_t value) {
                sync();
                core_ref(cpu).hwp_request_raw = value;
                trace_.record(sim_.now(), "hwp", "cpu" + std::to_string(cpu),
                              "request",
                              static_cast<double>(
                                  pcu::decode_hwp_request(value).epp));
            });
        // No guaranteed/excursion change events are modelled: status is 0.
        msrs_.register_msr(msr::IA32_HWP_STATUS, [](unsigned) {
            return std::uint64_t{0};
        });
    }

    // RAPL registers, package scoped.
    for (unsigned s = 0; s < cfg_.sockets; ++s) {
        sockets_[s]->rapl().attach(msrs_, cpu_id(s, 0), cpu_id(s, sku_->cores - 1));
    }
}

// --- workload / p-state / c-state control ----------------------------------

void Node::set_workload(unsigned cpu, const workloads::Workload* w, unsigned threads) {
    sync();
    SimCore& c = sockets_[socket_of(cpu)]->cores()[core_of(cpu)];
    c.workload = w;
    c.threads = std::clamp(threads, 1u, 2u);
    c.state = cstates::CState::C0;
}

void Node::clear_workload(unsigned cpu) {
    sync();
    SimCore& c = sockets_[socket_of(cpu)]->cores()[core_of(cpu)];
    c.workload = nullptr;
    c.state = cfg_.park_state;
}

void Node::set_all_workloads(const workloads::Workload* w, unsigned threads) {
    for (unsigned cpu = 0; cpu < cpu_count(); ++cpu) set_workload(cpu, w, threads);
}

void Node::clear_all_workloads() {
    for (unsigned cpu = 0; cpu < cpu_count(); ++cpu) clear_workload(cpu);
}

void Node::set_pstate(unsigned cpu, Frequency f) {
    msrs_.write(cpu, msr::IA32_PERF_CTL, static_cast<std::uint64_t>(f.ratio()) << 8);
}

void Node::set_pstate_all(Frequency f) {
    for (unsigned cpu = 0; cpu < cpu_count(); ++cpu) set_pstate(cpu, f);
}

void Node::request_turbo_all() {
    set_pstate_all(Frequency::from_ratio(sku_->nominal_frequency.ratio() + 1));
}

void Node::set_epb(msr::EpbPolicy p) {
    for (unsigned cpu = 0; cpu < cpu_count(); ++cpu) {
        msrs_.write(cpu, msr::IA32_ENERGY_PERF_BIAS, msr::encode_epb(p));
    }
}

bool Node::hwp_capable() const {
    return platform::backend_for(sku_->generation).hwp_capable();
}

void Node::enable_hwp(bool on) {
    if (!hwp_capable()) return;
    for (unsigned s = 0; s < socket_count(); ++s) {
        msrs_.write(cpu_id(s, 0), msr::MSR_PM_ENABLE, on ? 1 : 0);
    }
}

void Node::set_hwp_request(unsigned cpu, const pcu::HwpRequest& req) {
    if (!hwp_capable()) return;
    msrs_.write(cpu, msr::IA32_HWP_REQUEST, pcu::encode_hwp_request(req));
}

void Node::set_hwp_request_all(const pcu::HwpRequest& req) {
    for (unsigned cpu = 0; cpu < cpu_count(); ++cpu) set_hwp_request(cpu, req);
}

void Node::set_turbo_enabled(bool on) {
    sync();
    for (auto& s : sockets_) s->set_turbo_enabled(on);
}

void Node::park(unsigned cpu, cstates::CState state) {
    sync();
    SimCore& c = sockets_[socket_of(cpu)]->cores()[core_of(cpu)];
    c.workload = nullptr;
    c.state = state;
}

Time Node::wake(unsigned waker_cpu, unsigned wakee_cpu) {
    sync();
    Socket& wakee_socket = *sockets_[socket_of(wakee_cpu)];
    SimCore& wakee = wakee_socket.cores()[core_of(wakee_cpu)];
    if (wakee.state == cstates::CState::C0) return Time::zero();

    cstates::WakeScenario scenario;
    if (socket_of(waker_cpu) == socket_of(wakee_cpu)) {
        scenario = cstates::WakeScenario::Local;
    } else if (wakee_socket.any_core_active()) {
        scenario = cstates::WakeScenario::RemoteActive;
    } else {
        scenario = cstates::WakeScenario::RemoteIdle;
    }

    // The core resumes at its requested p-state; the wake latency depends
    // on that frequency (Figures 5/6).
    const Frequency resume = Frequency::from_ratio(
        std::clamp(wakee.requested_ratio, sku_->min_frequency.ratio(),
                   sku_->nominal_frequency.ratio()));
    const Time latency = wake_model_.sample(wakee.state, resume, scenario, rng_);

    trace_.record(sim_.now(), "cstate", "cpu" + std::to_string(wakee_cpu),
                  std::string{"wake from "} + std::string{cstates::name(wakee.state)},
                  latency.as_us());

    sim_.schedule_after(latency, [this, wakee_cpu] {
        sync();
        SimCore& c = sockets_[socket_of(wakee_cpu)]->cores()[core_of(wakee_cpu)];
        c.state = cstates::CState::C0;
    });
    return latency;
}

cstates::CState Node::core_state(unsigned cpu) const {
    return sockets_[socket_of(cpu)]->cores()[core_of(cpu)].state;
}

cstates::PackageCState Node::package_state(unsigned socket) const {
    std::vector<cstates::CState> states;
    states.reserve(sku_->cores);
    for (const SimCore& c : sockets_[socket]->cores()) states.push_back(c.state);
    return cstates::resolve_package_state(states, any_core_active_in_system());
}

// --- observation ------------------------------------------------------------

Frequency Node::core_frequency(unsigned cpu) const {
    return sockets_[socket_of(cpu)]->cores()[core_of(cpu)].frequency;
}

Frequency Node::uncore_frequency(unsigned socket) const {
    return sockets_[socket]->uncore_frequency();
}

Power Node::ac_power() {
    sync();
    return ac_model_.ac_power(true_node_dc_power());
}

Power Node::true_node_dc_power() {
    sync();
    Power total = Power::zero();
    const Time now = sim_.now();
    for (auto& s : sockets_) {
        total += s->current_package_power(now) + s->current_dram_power();
    }
    return total;
}

Power Node::rapl_power_over(Time dt) {
    Power total = Power::zero();
    std::vector<std::uint32_t> pkg_before;
    std::vector<std::uint32_t> dram_before;
    for (unsigned s = 0; s < socket_count(); ++s) {
        const unsigned cpu = cpu_id(s, 0);
        pkg_before.push_back(
            static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_PKG_ENERGY_STATUS)));
        dram_before.push_back(
            static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_DRAM_ENERGY_STATUS)));
    }
    run_for(dt);
    for (unsigned s = 0; s < socket_count(); ++s) {
        const unsigned cpu = cpu_id(s, 0);
        const auto pkg_after =
            static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_PKG_ENERGY_STATUS));
        const auto dram_after =
            static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_DRAM_ENERGY_STATUS));
        const double pkg_j = static_cast<std::uint32_t>(pkg_after - pkg_before[s]) *
                             sockets_[s]->rapl().energy_unit(rapl::Domain::Package);
        const double dram_j = static_cast<std::uint32_t>(dram_after - dram_before[s]) *
                              sockets_[s]->rapl().energy_unit(rapl::Domain::Dram);
        total += Power::watts((pkg_j + dram_j) / dt.as_seconds());
    }
    return total;
}

Node::RaplWindow Node::rapl_window(unsigned socket, Time dt) {
    const unsigned cpu = cpu_id(socket, 0);
    const auto pkg0 = static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_PKG_ENERGY_STATUS));
    const auto dram0 =
        static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_DRAM_ENERGY_STATUS));
    run_for(dt);
    const auto pkg1 = static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_PKG_ENERGY_STATUS));
    const auto dram1 =
        static_cast<std::uint32_t>(msrs_.read(cpu, msr::MSR_DRAM_ENERGY_STATUS));
    RaplWindow w;
    w.package = Power::watts(static_cast<std::uint32_t>(pkg1 - pkg0) *
                             sockets_[socket]->rapl().energy_unit(rapl::Domain::Package) /
                             dt.as_seconds());
    w.dram = Power::watts(static_cast<std::uint32_t>(dram1 - dram0) *
                          sockets_[socket]->rapl().energy_unit(rapl::Domain::Dram) /
                          dt.as_seconds());
    return w;
}

}  // namespace hsw::core
