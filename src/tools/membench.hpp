// Memory bandwidth benchmark (Section VII, extending [28]).
//
// Consecutively reads a 17 MB working set for the L3 measurement and a
// 350 MB working set for DRAM, at a configurable concurrency and frequency,
// and reports the achieved aggregate read bandwidth on the measured socket
// (processor 1 in the paper; processor 0 stays idle).
#pragma once

#include "core/node.hpp"
#include "util/units.hpp"

namespace hsw::tools {

using util::Bandwidth;
using util::Frequency;
using util::Time;

struct MembenchPoint {
    unsigned cores = 0;
    unsigned threads_per_core = 1;
    double set_ghz = 0.0;        // requested core clock (0 = turbo)
    double core_ghz = 0.0;       // measured core clock
    double uncore_ghz = 0.0;     // measured uncore clock
    double l3_gbs = 0.0;
    double dram_gbs = 0.0;
};

class Membench {
public:
    /// `socket`: the measured processor (the paper uses processor 1).
    Membench(core::Node& node, unsigned socket = 1);

    static constexpr std::size_t kL3WorkingSet = 17u * 1024u * 1024u;    // 17 MB
    static constexpr std::size_t kDramWorkingSet = 350u * 1024u * 1024u; // 350 MB

    /// Measure one (concurrency, frequency) point. `setting` may be the
    /// turbo request (nominal ratio + 1).
    [[nodiscard]] MembenchPoint measure(unsigned cores, unsigned threads_per_core,
                                        Frequency setting,
                                        Time settle = Time::ms(20));

private:
    core::Node* node_;
    unsigned socket_;
};

}  // namespace hsw::tools
