// RAPL validation harness (Section IV, Figure 2).
//
// Runs microbenchmarks at several thread counts, averages a 4-second
// constant-load window, and pairs the RAPL package+DRAM reading (both
// sockets) with the AC reference from the LMG450. The per-generation fits
// (linear for the modeled Sandy Bridge backend, quadratic for the measured
// Haswell backend) and their R-squared reproduce Figure 2.
#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/stats.hpp"
#include "workloads/workload.hpp"

namespace hsw::tools {

struct RaplSamplePoint {
    std::string workload;
    unsigned active_cores_per_socket = 0;
    unsigned threads_per_core = 1;
    double ac_watts = 0.0;
    double rapl_watts = 0.0;  // pkg + DRAM, both sockets
};

struct RaplValidationReport {
    std::vector<RaplSamplePoint> points;
    util::LinearFit linear;        // over all points
    util::QuadraticFit quadratic;  // over all points
    /// Per-workload linear fits (workload bias shows as divergent slopes).
    struct WorkloadFit {
        std::string workload;
        util::LinearFit fit;
    };
    std::vector<WorkloadFit> per_workload;
    /// Max per-workload deviation of the slope from the global slope,
    /// relative (large on SNB, small on HSW).
    double slope_spread = 0.0;
};

class RaplValidator {
public:
    explicit RaplValidator(core::Node& node);

    /// One measurement point: `cores` active cores on *each* socket.
    [[nodiscard]] RaplSamplePoint run_point(const workloads::Workload* w, unsigned cores,
                                            unsigned threads_per_core,
                                            util::Time window = util::Time::sec(4));

    /// The full Fig. 2 suite: idle + each microbenchmark at several
    /// concurrency levels.
    [[nodiscard]] RaplValidationReport run_suite(util::Time window = util::Time::sec(4));

private:
    core::Node* node_;
};

/// Fit helper exposed for tests and the bench harness.
[[nodiscard]] RaplValidationReport analyze(std::vector<RaplSamplePoint> points);

}  // namespace hsw::tools
