#include "tools/ftalat.hpp"

#include <algorithm>
#include <cmath>

#include "msr/addresses.hpp"
#include "workloads/mixes.hpp"

namespace hsw::tools {

namespace {
constexpr double kDetectToleranceGhz = 0.055;  // within 55 MHz of the target
}

double FtalatResult::min() const { return util::min_of(latencies_us); }
double FtalatResult::max() const { return util::max_of(latencies_us); }
double FtalatResult::median() const { return util::median(latencies_us); }
double FtalatResult::mean() const { return util::mean(latencies_us); }
double FtalatResult::ci99() const { return util::confidence_halfwidth(latencies_us, 0.99); }

Ftalat::Ftalat(core::Node& node) : node_{&node} {}

Frequency Ftalat::observe(unsigned cpu, Time window) {
    // The paper's modification: count cycles over a busy-wait window via
    // the perf interface instead of trusting scaling_cur_freq.
    const auto before = node_->msrs().read(cpu, msr::IA32_FIXED_CTR1);
    node_->run_for(window);
    const auto after = node_->msrs().read(cpu, msr::IA32_FIXED_CTR1);
    return Frequency::hz(static_cast<double>(after - before) / window.as_seconds());
}

Time Ftalat::detect_frequency(unsigned cpu, Frequency from, Frequency to, Time window,
                              Time timeout) {
    const Time start = node_->now();
    const double delta = to.as_ghz() - from.as_ghz();
    while (node_->now() - start < timeout) {
        const Time window_start = node_->now();
        const Frequency f = observe(cpu, window);
        if (std::abs(f.as_ghz() - to.as_ghz()) < kDetectToleranceGhz) {
            // The window's cycle count mixes the old and new clock:
            //   f = from + x * (to - from), x = target-clock share.
            // Interpolate the change instant inside the window.
            double x = 1.0;
            if (std::abs(delta) > 1e-12) {
                x = std::clamp((f.as_ghz() - from.as_ghz()) / delta, 0.0, 1.0);
            }
            const double into_window_us = (1.0 - x) * window.as_us();
            return window_start + Time::from_us(into_window_us);
        }
    }
    return node_->now();
}

FtalatResult Ftalat::measure(const FtalatConfig& cfg) {
    // The probe thread busy-spins on the target core for the whole run.
    node_->set_workload(cfg.cpu, &workloads::while_one(), 1);

    unsigned from = cfg.from_ratio;
    unsigned to = cfg.to_ratio;

    // Settle at the start frequency.
    node_->set_pstate(cfg.cpu, Frequency::from_ratio(from));
    detect_frequency(cfg.cpu, Frequency::from_ratio(to), Frequency::from_ratio(from),
                     cfg.verify_window, cfg.detect_timeout);

    FtalatResult result;
    result.latencies_us.reserve(cfg.samples);

    for (unsigned i = 0; i < cfg.samples; ++i) {
        switch (cfg.delay_mode) {
            case DelayMode::Random:
                // Requests land uniformly across the opportunity grid.
                node_->run_for(Time::from_us(node_->rng().uniform(0.0, 1500.0)));
                break;
            case DelayMode::Immediate:
                break;  // request right after the previous detection
            case DelayMode::Fixed: {
                // nanosleep-class delays carry slop; the paper's ~500 us
                // series owes its bimodality to this race against the grid.
                const double slop = node_->rng().uniform(cfg.delay_slop_lo.as_us(),
                                                         cfg.delay_slop_hi.as_us());
                node_->run_for(cfg.fixed_delay + Time::from_us(slop));
                break;
            }
        }

        const Time t0 = node_->now();
        node_->set_pstate(cfg.cpu, Frequency::from_ratio(to));
        const Time changed =
            detect_frequency(cfg.cpu, Frequency::from_ratio(from),
                             Frequency::from_ratio(to), cfg.verify_window,
                             cfg.detect_timeout);
        result.latencies_us.push_back((changed - t0).as_us());
        std::swap(from, to);
    }

    node_->clear_workload(cfg.cpu);
    return result;
}

Ftalat::PairResult Ftalat::measure_pair(unsigned cpu_a, unsigned cpu_b,
                                        unsigned from_ratio, unsigned to_ratio) {
    node_->set_workload(cpu_a, &workloads::while_one(), 1);
    node_->set_workload(cpu_b, &workloads::while_one(), 1);
    node_->set_pstate(cpu_a, Frequency::from_ratio(from_ratio));
    node_->set_pstate(cpu_b, Frequency::from_ratio(from_ratio));
    node_->run_for(Time::ms(3));  // settle both

    // Desynchronize from the grid, then request both changes in the same
    // instant.
    node_->run_for(Time::from_us(node_->rng().uniform(0.0, 500.0)));
    node_->set_pstate(cpu_a, Frequency::from_ratio(to_ratio));
    node_->set_pstate(cpu_b, Frequency::from_ratio(to_ratio));

    const Frequency target = Frequency::from_ratio(to_ratio);
    const Time window = Time::us(20);
    Time change_a = Time::zero();
    Time change_b = Time::zero();
    const Time deadline = node_->now() + Time::ms(5);
    auto prev_a = node_->msrs().read(cpu_a, msr::IA32_FIXED_CTR1);
    auto prev_b = node_->msrs().read(cpu_b, msr::IA32_FIXED_CTR1);
    while (node_->now() < deadline &&
           (change_a == Time::zero() || change_b == Time::zero())) {
        node_->run_for(window);
        const auto now_a = node_->msrs().read(cpu_a, msr::IA32_FIXED_CTR1);
        const auto now_b = node_->msrs().read(cpu_b, msr::IA32_FIXED_CTR1);
        const double fa = static_cast<double>(now_a - prev_a) / window.as_seconds();
        const double fb = static_cast<double>(now_b - prev_b) / window.as_seconds();
        if (change_a == Time::zero() &&
            std::abs(fa * 1e-9 - target.as_ghz()) < kDetectToleranceGhz) {
            change_a = node_->now();
        }
        if (change_b == Time::zero() &&
            std::abs(fb * 1e-9 - target.as_ghz()) < kDetectToleranceGhz) {
            change_b = node_->now();
        }
        prev_a = now_a;
        prev_b = now_b;
    }
    node_->clear_workload(cpu_a);
    node_->clear_workload(cpu_b);
    return PairResult{change_a, change_b};
}

}  // namespace hsw::tools
