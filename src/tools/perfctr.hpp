// likwid-perfctr-style metric groups ([22]).
//
// The paper samples "core and uncore cycles, instructions, and RAPL values
// ... once per second via LIKWID". This tool packages those reads into the
// familiar metric groups: CLOCK (frequencies, C0 residency, IPC), ENERGY
// (RAPL package/DRAM power), MEM (achieved bandwidths).
#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"

namespace hsw::tools {

enum class MetricGroup { Clock, Energy, Mem };

[[nodiscard]] constexpr const char* name(MetricGroup g) {
    switch (g) {
        case MetricGroup::Clock: return "CLOCK";
        case MetricGroup::Energy: return "ENERGY";
        case MetricGroup::Mem: return "MEM";
    }
    return "?";
}

struct Metric {
    std::string name;
    double value = 0.0;
    std::string unit;
};

struct GroupMeasurement {
    MetricGroup group;
    unsigned cpu = 0;
    double seconds = 0.0;
    std::vector<Metric> metrics;

    /// Value by metric name; throws std::out_of_range if absent.
    [[nodiscard]] double value(const std::string& metric_name) const;
    [[nodiscard]] std::string render() const;
};

class Perfctr {
public:
    explicit Perfctr(core::Node& node);

    /// Measure one group on `cpu` over `duration` (advances the sim).
    [[nodiscard]] GroupMeasurement measure(MetricGroup group, unsigned cpu,
                                           util::Time duration);

private:
    core::Node* node_;
};

}  // namespace hsw::tools
