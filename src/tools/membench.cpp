#include "tools/membench.hpp"

#include <algorithm>

#include "workloads/mixes.hpp"

namespace hsw::tools {

Membench::Membench(core::Node& node, unsigned socket) : node_{&node}, socket_{socket} {}

MembenchPoint Membench::measure(unsigned cores, unsigned threads_per_core,
                                Frequency setting, Time settle) {
    core::Node& node = *node_;
    node.clear_all_workloads();

    const unsigned n = std::min(cores, node.cores_per_socket());
    MembenchPoint p;
    p.cores = n;
    p.threads_per_core = threads_per_core;
    p.set_ghz = setting.as_ghz();

    // Phase 1: the 17 MB L3-resident sweep (no DRAM traffic).
    for (unsigned c = 0; c < n; ++c) {
        node.set_workload(node.cpu_id(socket_, c), &workloads::l3_stream(),
                          threads_per_core);
        node.set_pstate(node.cpu_id(socket_, c), setting);
    }
    node.run_for(settle);  // a few PCU opportunity periods
    p.core_ghz = node.core_frequency(node.cpu_id(socket_, 0)).as_ghz();
    p.uncore_ghz = node.uncore_frequency(socket_).as_ghz();
    p.l3_gbs = node.socket(socket_).achieved_l3_bandwidth().as_gb_per_sec();

    // Phase 2: the 350 MB DRAM sweep.
    for (unsigned c = 0; c < n; ++c) {
        node.set_workload(node.cpu_id(socket_, c), &workloads::memory_stream(),
                          threads_per_core);
    }
    node.run_for(settle);
    p.dram_gbs = node.socket(socket_).achieved_dram_bandwidth().as_gb_per_sec();

    node.clear_all_workloads();
    return p;
}

}  // namespace hsw::tools
