#include "tools/perfctr.hpp"

#include <cstdio>
#include <stdexcept>

#include "msr/addresses.hpp"
#include "perfmon/counters.hpp"

namespace hsw::tools {

double GroupMeasurement::value(const std::string& metric_name) const {
    for (const auto& m : metrics) {
        if (m.name == metric_name) return m.value;
    }
    throw std::out_of_range{"no metric named " + metric_name};
}

std::string GroupMeasurement::render() const {
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "Group %s, cpu %u, %.3f s:\n",
                  tools::name(group), cpu, seconds);
    out += line;
    for (const auto& m : metrics) {
        std::snprintf(line, sizeof line, "  %-28s %12.4f %s\n", m.name.c_str(),
                      m.value, m.unit.c_str());
        out += line;
    }
    return out;
}

Perfctr::Perfctr(core::Node& node) : node_{&node} {}

GroupMeasurement Perfctr::measure(MetricGroup group, unsigned cpu,
                                  util::Time duration) {
    core::Node& node = *node_;
    GroupMeasurement gm;
    gm.group = group;
    gm.cpu = cpu;
    gm.seconds = duration.as_seconds();

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(cpu, node.now());
    const unsigned socket = node.socket_of(cpu);
    const auto first_cpu = node.cpu_id(socket, 0);
    const auto pkg0 =
        static_cast<std::uint32_t>(node.msrs().read(first_cpu, msr::MSR_PKG_ENERGY_STATUS));
    const auto dram0 = static_cast<std::uint32_t>(
        node.msrs().read(first_cpu, msr::MSR_DRAM_ENERGY_STATUS));

    node.run_for(duration);

    const auto after = reader.snapshot(cpu, node.now());
    const auto m = reader.derive(before, after);

    switch (group) {
        case MetricGroup::Clock:
            gm.metrics.push_back({"Clock [MHz]", m.effective_frequency.as_mhz(), ""});
            gm.metrics.push_back({"Uncore Clock [MHz]", m.uncore_frequency.as_mhz(), ""});
            gm.metrics.push_back({"C0 residency", m.c0_residency, ""});
            gm.metrics.push_back({"CPI", m.ipc > 0.0 ? 1.0 / m.ipc : 0.0, ""});
            gm.metrics.push_back({"IPC", m.ipc, ""});
            break;
        case MetricGroup::Energy: {
            const auto pkg1 = static_cast<std::uint32_t>(
                node.msrs().read(first_cpu, msr::MSR_PKG_ENERGY_STATUS));
            const auto dram1 = static_cast<std::uint32_t>(
                node.msrs().read(first_cpu, msr::MSR_DRAM_ENERGY_STATUS));
            const double pkg_j =
                static_cast<std::uint32_t>(pkg1 - pkg0) *
                node.socket(socket).rapl().energy_unit(rapl::Domain::Package);
            const double dram_j =
                static_cast<std::uint32_t>(dram1 - dram0) *
                node.socket(socket).rapl().energy_unit(rapl::Domain::Dram);
            gm.metrics.push_back({"Energy PKG [J]", pkg_j, ""});
            gm.metrics.push_back({"Power PKG [W]", pkg_j / gm.seconds, ""});
            gm.metrics.push_back({"Energy DRAM [J]", dram_j, ""});
            gm.metrics.push_back({"Power DRAM [W]", dram_j / gm.seconds, ""});
            break;
        }
        case MetricGroup::Mem:
            gm.metrics.push_back(
                {"Memory read BW [GB/s]",
                 node.socket(socket).achieved_dram_bandwidth().as_gb_per_sec(), ""});
            gm.metrics.push_back(
                {"L3 read BW [GB/s]",
                 node.socket(socket).achieved_l3_bandwidth().as_gb_per_sec(), ""});
            gm.metrics.push_back(
                {"DRAM traffic [GB/s]",
                 node.socket(socket).current_dram_traffic().as_gb_per_sec(), ""});
            break;
    }
    return gm;
}

}  // namespace hsw::tools
