// C-state wake-up latency probe (Section VI-B, following [27]).
//
// A waker core signals a wakee parked in a target C-state; the measured
// latency is the time until the wakee executes again. Scenarios follow
// Figures 5/6: local (same socket), remote-active (other socket, third
// core keeps the wakee's package awake), remote-idle (other socket,
// wakee's package in a deep sleep state).
#pragma once

#include <vector>

#include "core/node.hpp"
#include "cstates/wake_latency.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace hsw::tools {

using util::Frequency;
using util::Time;

struct CstateProbeConfig {
    cstates::CState state = cstates::CState::C3;
    cstates::WakeScenario scenario = cstates::WakeScenario::Local;
    Frequency core_frequency = Frequency::ghz(2.5);
    unsigned samples = 100;
};

struct CstateProbeResult {
    std::vector<double> latencies_us;
    [[nodiscard]] double mean() const { return util::mean(latencies_us); }
    [[nodiscard]] double median() const { return util::median(latencies_us); }
    [[nodiscard]] double stddev() const { return util::stddev(latencies_us); }
};

class CstateProbe {
public:
    explicit CstateProbe(core::Node& node);

    [[nodiscard]] CstateProbeResult measure(const CstateProbeConfig& cfg);

private:
    core::Node* node_;
};

}  // namespace hsw::tools
