#include "tools/rapl_validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "msr/addresses.hpp"
#include "workloads/mixes.hpp"

namespace hsw::tools {

using util::Time;

RaplValidator::RaplValidator(core::Node& node) : node_{&node} {}

RaplSamplePoint RaplValidator::run_point(const workloads::Workload* w, unsigned cores,
                                         unsigned threads_per_core, Time window) {
    core::Node& node = *node_;
    node.clear_all_workloads();
    if (w != nullptr && cores > 0) {
        for (unsigned s = 0; s < node.socket_count(); ++s) {
            for (unsigned c = 0; c < std::min(cores, node.cores_per_socket()); ++c) {
                node.set_workload(node.cpu_id(s, c), w, threads_per_core);
            }
        }
    }
    // Warm up so the PCU settles (p-states, uncore, licenses).
    node.run_for(Time::ms(100));

    // Read RAPL energies before/after the constant-load window; the AC side
    // is averaged from the meter series over the same window.
    std::vector<std::uint32_t> pkg0(node.socket_count());
    std::vector<std::uint32_t> dram0(node.socket_count());
    for (unsigned s = 0; s < node.socket_count(); ++s) {
        const unsigned cpu = node.cpu_id(s, 0);
        pkg0[s] = static_cast<std::uint32_t>(
            node.msrs().read(cpu, msr::MSR_PKG_ENERGY_STATUS));
        dram0[s] = static_cast<std::uint32_t>(
            node.msrs().read(cpu, msr::MSR_DRAM_ENERGY_STATUS));
    }
    const Time t0 = node.now();
    node.run_for(window);
    const Time t1 = node.now();

    double rapl_watts = 0.0;
    for (unsigned s = 0; s < node.socket_count(); ++s) {
        const unsigned cpu = node.cpu_id(s, 0);
        const auto pkg1 = static_cast<std::uint32_t>(
            node.msrs().read(cpu, msr::MSR_PKG_ENERGY_STATUS));
        const auto dram1 = static_cast<std::uint32_t>(
            node.msrs().read(cpu, msr::MSR_DRAM_ENERGY_STATUS));
        const double pkg_j =
            static_cast<std::uint32_t>(pkg1 - pkg0[s]) *
            node.socket(s).rapl().energy_unit(rapl::Domain::Package);
        const double dram_j =
            static_cast<std::uint32_t>(dram1 - dram0[s]) *
            node.socket(s).rapl().energy_unit(rapl::Domain::Dram);
        rapl_watts += (pkg_j + dram_j) / window.as_seconds();
    }

    RaplSamplePoint p;
    p.workload = w == nullptr ? "idle" : std::string{w->name};
    p.active_cores_per_socket = w == nullptr ? 0 : cores;
    p.threads_per_core = threads_per_core;
    p.rapl_watts = rapl_watts;
    p.ac_watts = node.meter().average(t0, t1).as_watts();
    return p;
}

RaplValidationReport RaplValidator::run_suite(Time window) {
    std::vector<RaplSamplePoint> points;
    points.push_back(run_point(nullptr, 0, 1, window));  // idle

    const unsigned max_cores = node_->cores_per_socket();
    const unsigned concurrency_steps[] = {1, max_cores / 2, max_cores};
    for (const workloads::Workload* w : workloads::rapl_validation_set()) {
        for (unsigned cores : concurrency_steps) {
            if (cores == 0) continue;
            points.push_back(run_point(w, cores, 1, window));
        }
        points.push_back(run_point(w, max_cores, 2, window));
    }
    node_->clear_all_workloads();
    return analyze(std::move(points));
}

RaplValidationReport analyze(std::vector<RaplSamplePoint> points) {
    RaplValidationReport report;
    report.points = std::move(points);

    std::vector<double> ac;
    std::vector<double> rapl;
    for (const auto& p : report.points) {
        ac.push_back(p.ac_watts);
        rapl.push_back(p.rapl_watts);
    }
    // Like Figure 2: RAPL on the y axis as a function of AC on the x axis.
    report.linear = util::fit_linear(ac, rapl);
    report.quadratic = util::fit_quadratic(ac, rapl);

    // Per-workload fits (need >= 3 points per workload for a stable slope).
    std::map<std::string, std::pair<std::vector<double>, std::vector<double>>> buckets;
    for (const auto& p : report.points) {
        buckets[p.workload].first.push_back(p.ac_watts);
        buckets[p.workload].second.push_back(p.rapl_watts);
    }
    double spread = 0.0;
    for (auto& [name, xy] : buckets) {
        if (xy.first.size() < 3) continue;
        RaplValidationReport::WorkloadFit wf;
        wf.workload = name;
        wf.fit = util::fit_linear(xy.first, xy.second);
        if (report.linear.slope != 0.0) {
            spread = std::max(spread, std::abs(wf.fit.slope - report.linear.slope) /
                                          std::abs(report.linear.slope));
        }
        report.per_workload.push_back(std::move(wf));
    }
    report.slope_spread = spread;
    return report;
}

}  // namespace hsw::tools
