#include "tools/cstate_probe.hpp"

#include <stdexcept>

#include "workloads/mixes.hpp"

namespace hsw::tools {

CstateProbe::CstateProbe(core::Node& node) : node_{&node} {}

CstateProbeResult CstateProbe::measure(const CstateProbeConfig& cfg) {
    core::Node& node = *node_;
    if (node.socket_count() < 2 && cfg.scenario != cstates::WakeScenario::Local) {
        throw std::invalid_argument{"remote scenarios need a second socket"};
    }

    // Scenario placement: waker on socket 0; wakee local (same socket) or
    // remote (socket 1). In remote-active a third core on the wakee's
    // socket stays busy so its package cannot sleep.
    unsigned waker;
    unsigned wakee;
    unsigned keeper = 0;
    bool use_keeper = false;
    switch (cfg.scenario) {
        case cstates::WakeScenario::Local:
            waker = node.cpu_id(0, 0);
            wakee = node.cpu_id(0, 1);
            break;
        case cstates::WakeScenario::RemoteActive:
            waker = node.cpu_id(0, 0);
            wakee = node.cpu_id(1, 0);
            keeper = node.cpu_id(1, 1);
            use_keeper = true;
            break;
        case cstates::WakeScenario::RemoteIdle:
        default:
            waker = node.cpu_id(0, 0);
            wakee = node.cpu_id(1, 0);
            break;
    }

    node.clear_all_workloads();
    node.set_workload(waker, &workloads::while_one(), 1);
    if (use_keeper) node.set_workload(keeper, &workloads::while_one(), 1);

    // The wakee resumes at the configured frequency.
    node.set_pstate(wakee, cfg.core_frequency);
    node.set_pstate(waker, cfg.core_frequency);
    node.run_for(Time::ms(2));  // settle p-states

    CstateProbeResult result;
    result.latencies_us.reserve(cfg.samples);
    for (unsigned i = 0; i < cfg.samples; ++i) {
        node.park(wakee, cfg.state);
        // Let the package state settle (PC-states resolve immediately in
        // the model, but keep a realistic residency before waking).
        node.run_for(Time::us(500));
        const Time latency = node.wake(waker, wakee);
        result.latencies_us.push_back(latency.as_us());
        node.run_for(latency + Time::us(50));  // wakee back in C0
    }

    node.clear_all_workloads();
    return result;
}

}  // namespace hsw::tools
