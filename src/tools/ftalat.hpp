// FTaLaT-style p-state transition latency measurement (Section VI-A, [26])
// with the paper's modifications:
//  - frequency switches are verified by counting PERF_COUNT_HW_CPU_CYCLES
//    over 20 us busy-wait windows (scaling_cur_freq only echoes the request),
//  - 99 % confidence reporting,
//  - support for measuring two cores in parallel,
//  - configurable delay relative to the previous frequency change.
#pragma once

#include <vector>

#include "core/node.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace hsw::tools {

using util::Frequency;
using util::Time;

/// When the next change is requested, relative to the previous one.
enum class DelayMode {
    Random,     // request at a random time ("random" series in Fig. 3)
    Immediate,  // right after the previous change was detected
    Fixed,      // a fixed delay after the previous change was detected
};

struct FtalatConfig {
    unsigned cpu = 0;
    unsigned from_ratio = 12;  // 1.2 GHz
    unsigned to_ratio = 13;    // 1.3 GHz
    DelayMode delay_mode = DelayMode::Random;
    Time fixed_delay = Time::us(400);
    /// Timer slop of the fixed-delay sleep (nanosleep is not exact); the
    /// request lands uniformly in [delay + slop_lo, delay + slop_hi].
    Time delay_slop_lo = Time::us(-45);
    Time delay_slop_hi = Time::us(15);
    unsigned samples = 1000;
    Time verify_window = Time::us(20);
    /// Give up detecting a switch after this long (hardware may coalesce
    /// same-ratio requests).
    Time detect_timeout = Time::ms(5);
};

struct FtalatResult {
    std::vector<double> latencies_us;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double median() const;
    [[nodiscard]] double mean() const;
    /// Half-width of the 99 % confidence interval for the mean.
    [[nodiscard]] double ci99() const;
};

class Ftalat {
public:
    explicit Ftalat(core::Node& node);

    /// Run the measurement series; the probe core runs a busy loop and the
    /// simulation advances as the tool polls.
    [[nodiscard]] FtalatResult measure(const FtalatConfig& cfg);

    /// Request the same target on two cpus in the same instant and return
    /// the two detected change-completion times (for the same-socket
    /// simultaneity experiment).
    struct PairResult {
        Time change_a;
        Time change_b;
    };
    [[nodiscard]] PairResult measure_pair(unsigned cpu_a, unsigned cpu_b,
                                          unsigned from_ratio, unsigned to_ratio);

private:
    /// Busy-wait in `window` steps until the observed frequency reaches
    /// `to`. Returns the *estimated change time*: the cycle count of a
    /// window straddling the switch is a mix of both clocks, so the change
    /// instant can be interpolated to sub-window precision -- this is how
    /// the 21 us minimum of Figure 3 is observable despite the 20 us
    /// verification window. Returns the timeout instant on failure.
    Time detect_frequency(unsigned cpu, Frequency from, Frequency to, Time window,
                          Time timeout);

    [[nodiscard]] Frequency observe(unsigned cpu, Time window);

    core::Node* node_;
};

}  // namespace hsw::tools
