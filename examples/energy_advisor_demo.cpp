// Energy advisor: turning the survey's findings into operating-point
// recommendations. Memory-bound codes can shed frequency (and cores past
// DRAM saturation) nearly for free on Haswell-EP; compute-bound codes
// cannot -- the advisor discovers both from sweeps on the simulated node.
#include <cstdio>

#include "advisor/energy_advisor.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;

int main() {
    std::puts("=== Energy advisor: DVFS/DCT recommendations (paper §I, §IX) ===\n");

    advisor::AdvisorConfig cfg;
    cfg.objective = advisor::Objective::Energy;
    cfg.performance_tolerance = 0.10;  // give up at most 10 % performance
    advisor::EnergyAdvisor adv{cfg};

    std::puts("memory-bound (STREAM-like), <=10 % slowdown allowed:");
    const auto mem = adv.recommend(workloads::memory_stream());
    std::printf("%s\n", mem.render().c_str());

    std::puts("compute-bound, <=10 % slowdown allowed:");
    const auto comp = adv.recommend(workloads::compute());
    std::printf("%s\n", comp.render().c_str());

    std::puts("same workloads under a hard 90 W/socket-equivalent node cap:");
    cfg.objective = advisor::Objective::PerformanceCapped;
    cfg.power_cap_watts = 220.0;  // node RAPL budget
    advisor::EnergyAdvisor capped{cfg};
    const auto capped_mem = capped.recommend(workloads::memory_stream());
    std::printf("%s\n", capped_mem.render().c_str());

    std::puts("Takeaway: the memory-bound recommendation sheds clock (DRAM\n"
              "bandwidth is frequency-independent at full concurrency, Fig. 7b)\n"
              "while the compute-bound one keeps frequency and pays the power.");
    return 0;
}
