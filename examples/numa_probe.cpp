// NUMA probe: local vs remote memory bandwidth across the QPI link.
//
// Table I lists the QPI upgrade (8 -> 9.6 GT/s); this example quantifies
// what it buys: remote DRAM reads are capped by min(QPI payload, remote
// IMC) and pay the link latency. On Haswell-EP the link is the binding
// constraint across the whole uncore range -- UFS on the remote socket
// cannot hurt remote readers, unlike on Sandy Bridge-EP.
#include <cstdio>

#include "core/node.hpp"
#include "mem/qpi.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Frequency;
using util::Time;

int main() {
    std::puts("=== NUMA probe: local vs remote DRAM read bandwidth ===\n");

    util::Table t{"per-generation NUMA characteristics (max concurrency)"};
    t.set_header({"generation", "QPI raw", "QPI payload", "local GB/s", "remote GB/s",
                  "NUMA factor"});

    struct Row {
        arch::Generation gen;
        unsigned cores;
        double core_ghz;
        double unc_ghz;
    };
    const Row rows[] = {
        {arch::Generation::WestmereEP, 6, 2.93, 2.66},
        {arch::Generation::SandyBridgeEP, 8, 2.6, 2.6},
        {arch::Generation::HaswellEP, 12, 2.5, 3.0},
    };
    for (const auto& row : rows) {
        const mem::RemoteMemoryModel remote{row.gen, row.cores};
        const mem::BandwidthModel local{row.gen, row.cores};
        const mem::ConcurrencyConfig full{row.cores, 2};
        const Frequency core = Frequency::ghz(row.core_ghz);
        const Frequency unc = Frequency::ghz(row.unc_ghz);
        const double l = local.dram_read(full, core, unc).as_gb_per_sec();
        const double r = remote.remote_dram_read(full, core, unc, unc).as_gb_per_sec();
        t.add_row({std::string{arch::traits(row.gen).name},
                   util::Table::fmt(remote.link().raw_bandwidth().as_gb_per_sec(), 1),
                   util::Table::fmt(remote.link().effective_bandwidth().as_gb_per_sec(), 1),
                   util::Table::fmt(l, 1), util::Table::fmt(r, 1),
                   util::Table::fmt(r / l, 2)});
    }
    std::printf("%s\n", t.render().c_str());

    // Live check on the simulated node: what uncore clock does the remote
    // socket actually run while the local one streams? (Table III's passive
    // rule keeps it high enough that QPI stays the bottleneck.)
    core::Node node;
    for (unsigned c = 0; c < node.cores_per_socket(); ++c) {
        node.set_workload(node.cpu_id(0, c), &workloads::memory_stream(), 1);
    }
    node.run_for(Time::ms(10));
    const double remote_unc = node.uncore_frequency(1).as_ghz();
    const double remote_cap = 58.0 * std::min(1.0, remote_unc / 2.2);
    std::printf("streaming on socket 0: local uncore %.2f GHz; the passive remote\n"
                "socket idles its uncore at %.2f GHz (Table III rule), which still\n"
                "sustains ~%.0f GB/s of IMC capacity -- far above the %.1f GB/s QPI\n"
                "payload cap, so remote readers never see the remote UFS at all.\n",
                node.uncore_frequency(0).as_ghz(), remote_unc, remote_cap, 28.8);
    return 0;
}
