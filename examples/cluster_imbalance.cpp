// Performance variability under TDP (the paper's closing argument).
//
// Both sockets run the same TDP-limited workload, but silicon variation
// (socket 0 needs more voltage per clock) makes them settle at different
// frequencies. For a tightly synchronized parallel application the slowest
// participant sets the pace -- the "performance imbalance" of [24].
#include <cstdio>

#include "core/node.hpp"
#include "perfmon/counters.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

int main() {
    core::Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(200));

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};

    util::Table t{"per-socket operating points under identical TDP-limited load"};
    t.set_header({"socket", "core [GHz]", "uncore [GHz]", "GIPS/thread", "pkg W"});
    double gips[2] = {0, 0};
    for (unsigned s = 0; s < 2; ++s) {
        const auto before = reader.snapshot(node.cpu_id(s, 0), node.now());
        const auto w = node.rapl_window(s, Time::sec(5));
        const auto after = reader.snapshot(node.cpu_id(s, 0), node.now());
        const auto m = reader.derive(before, after);
        gips[s] = m.giga_instructions_per_sec / 2.0;
        t.add_row({std::to_string(s), util::Table::fmt(m.effective_frequency.as_ghz(), 3),
                   util::Table::fmt(m.uncore_frequency.as_ghz(), 3),
                   util::Table::fmt(gips[s], 3), util::Table::fmt(w.package.as_watts(), 1)});
    }
    std::printf("%s\n", t.render().c_str());

    const double imbalance = (gips[1] - gips[0]) / gips[1] * 100.0;
    std::printf("socket 1 outpaces socket 0 by %.1f %%.\n\n", imbalance);
    std::puts(
        "In a bulk-synchronous application every process waits for the slowest\n"
        "one: with TDP enforcement moving from modeled to measured power, the\n"
        "old *power* variation between chips becomes *performance* variation\n"
        "(paper Section IX; see also Rountree et al. [24]).");
    return 0;
}
