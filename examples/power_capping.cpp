// Power capping through MSR_PKG_POWER_LIMIT.
//
// Demonstrates the RAPL limiting path the paper identifies as the source
// of "uncontrollable and unpredictable performance variations": as the cap
// tightens, the PCU throttles core and uncore clocks, and the achieved
// frequency departs from the requested one.
#include <cstdio>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "perfmon/counters.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

int main() {
    core::Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(100));

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};

    util::Table t{"package power cap sweep (FIRESTARTER, both sockets, HT, turbo)"};
    t.set_header({"cap [W]", "pkg RAPL [W] (socket0)", "core [GHz]", "uncore [GHz]",
                  "GIPS/thread"});

    for (double cap : {0.0, 120.0, 110.0, 100.0, 90.0, 80.0, 70.0}) {
        // Encode PL1: watts in 1/8 W units, bit 15 = enable.
        for (unsigned s = 0; s < node.socket_count(); ++s) {
            const std::uint64_t raw =
                cap > 0.0 ? ((static_cast<std::uint64_t>(cap * 8.0) & 0x7FFF) | (1ULL << 15))
                          : 0ULL;
            node.msrs().write(node.cpu_id(s, 0), msr::MSR_PKG_POWER_LIMIT, raw);
        }
        node.run_for(Time::ms(20));

        const auto before = reader.snapshot(0, node.now());
        const auto w = node.rapl_window(0, Time::sec(1));
        const auto after = reader.snapshot(0, node.now());
        const auto m = reader.derive(before, after);

        t.add_row({cap == 0.0 ? "TDP (none)" : util::Table::fmt(cap, 0),
                   util::Table::fmt(w.package.as_watts(), 1),
                   util::Table::fmt(m.effective_frequency.as_ghz(), 2),
                   util::Table::fmt(m.uncore_frequency.as_ghz(), 2),
                   util::Table::fmt(m.giga_instructions_per_sec / 2.0, 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::puts("Every clock above AVX base (2.1 GHz) is opportunistic: the cap turns\n"
              "requested frequencies into suggestions (paper Sections II-F, IX).");
    return 0;
}
