// DVFS/DCT explorer: the paper's Section VII insight in action.
//
// For a compute-bound and a memory-bound workload, sweep the p-state
// setting and the concurrency and report performance, power and
// energy-to-solution. On Haswell-EP, DRAM bandwidth at full concurrency is
// frequency independent, so DVFS is nearly free for memory-bound codes,
// while compute-bound codes lose performance linearly.
#include <cstdio>
#include <vector>

#include "core/node.hpp"
#include "perfmon/counters.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Frequency;
using util::Time;

namespace {

struct Row {
    double set_ghz;
    double dram_gbs;
    double gips;
    double rapl_watts;
};

Row measure(core::Node& node, const workloads::Workload* w, Frequency setting) {
    node.set_all_workloads(w, 1);
    node.set_pstate_all(setting);
    node.run_for(Time::ms(50));

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(0, node.now());
    const auto rapl = node.rapl_power_over(Time::sec(1));
    const auto after = reader.snapshot(0, node.now());
    const auto m = reader.derive(before, after);

    return Row{setting.as_ghz(), node.socket(0).achieved_dram_bandwidth().as_gb_per_sec(),
               m.giga_instructions_per_sec, rapl.as_watts()};
}

void sweep(core::Node& node, const workloads::Workload* w, const char* label) {
    util::Table t{std::string{"p-state sweep: "} + label};
    t.set_header({"set [GHz]", "DRAM GB/s (socket0)", "GIPS/core", "RAPL W",
                  "GIPS/W (x1000)"});
    for (unsigned r = node.sku().min_frequency.ratio();
         r <= node.sku().nominal_frequency.ratio(); r += 3) {
        const Row row = measure(node, w, Frequency::from_ratio(r));
        t.add_row({util::Table::fmt(row.set_ghz, 1), util::Table::fmt(row.dram_gbs, 1),
                   util::Table::fmt(row.gips, 2), util::Table::fmt(row.rapl_watts, 1),
                   util::Table::fmt(row.gips / row.rapl_watts * 1000.0, 2)});
    }
    std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
    core::Node node;

    std::puts("=== DVFS explorer: frequency scaling under different boundedness ===\n");
    sweep(node, &workloads::memory_stream(),
          "memory-bound (STREAM-like) -- bandwidth barely moves, power drops");
    sweep(node, &workloads::compute(),
          "compute-bound -- performance tracks frequency");

    // DCT: memory-bound scaling over cores at the lowest p-state.
    std::puts("=== DCT: concurrency throttling for the memory-bound workload ===\n");
    util::Table t{"cores vs DRAM bandwidth at 1.2 GHz (socket 0)"};
    t.set_header({"cores", "DRAM GB/s", "RAPL W (node)"});
    node.set_pstate_all(node.sku().min_frequency);
    for (unsigned cores = 1; cores <= node.cores_per_socket(); cores += 2) {
        node.clear_all_workloads();
        for (unsigned c = 0; c < cores; ++c) {
            node.set_workload(node.cpu_id(0, c), &workloads::memory_stream(), 1);
        }
        node.set_pstate_all(node.sku().min_frequency);
        node.run_for(Time::ms(50));
        const auto rapl = node.rapl_power_over(Time::sec(1));
        t.add_row({std::to_string(cores),
                   util::Table::fmt(node.socket(0).achieved_dram_bandwidth().as_gb_per_sec(), 1),
                   util::Table::fmt(rapl.as_watts(), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::puts("Takeaway (paper Section VII): DRAM bandwidth saturates around 8 cores\n"
              "and is frequency-independent at high concurrency -- DVFS and DCT both\n"
              "save energy for memory-bound codes on Haswell-EP.");
    return 0;
}
