// Transition latency probe: p-states (FTaLaT) and C-states side by side,
// compared with what the ACPI tables claim (Section VI).
#include <cstdio>

#include "core/node.hpp"
#include "os/idle_governor.hpp"
#include "tools/cstate_probe.hpp"
#include "tools/ftalat.hpp"
#include "util/table.hpp"

using namespace hsw;
using util::Time;

int main() {
    core::Node node;

    // --- p-state transition latency (a quick 200-sample FTaLaT run) ---
    tools::Ftalat ftalat{node};
    tools::FtalatConfig fc;
    fc.samples = 200;
    fc.delay_mode = tools::DelayMode::Random;
    const auto pstate = ftalat.measure(fc);
    std::printf("p-state transition latency (1.2 <-> 1.3 GHz, random requests):\n"
                "  min %.0f us, median %.0f us, max %.0f us\n"
                "  ACPI table claims: 10 us -> inapplicable on Haswell-EP\n\n",
                pstate.min(), pstate.median(), pstate.max());

    // --- C-state wake-up latencies ---
    tools::CstateProbe probe{node};
    util::Table t{"C-state wake-up latencies at 2.5 GHz (local scenario)"};
    t.set_header({"state", "measured [us]", "ACPI table [us]", "headroom"});
    for (auto state : {cstates::CState::C1, cstates::CState::C3, cstates::CState::C6}) {
        tools::CstateProbeConfig cc;
        cc.state = state;
        cc.samples = 50;
        const auto r = probe.measure(cc);
        const double acpi = cstates::acpi_reported_latency(state).as_us();
        t.add_row({std::string{cstates::name(state)}, util::Table::fmt(r.mean(), 1),
                   util::Table::fmt(acpi, 0),
                   util::Table::fmt(acpi / r.mean(), 1) + "x"});
    }
    std::printf("%s\n", t.render().c_str());

    // --- what the conservative ACPI tables cost the idle governor ---
    os::IdleGovernor gov;
    const Time predicted = Time::us(120);
    std::printf("idle governor for a predicted %.0f us idle period:\n"
                "  with ACPI tables   : %s\n"
                "  with measured data : %s\n"
                "(the discrepancy motivates a runtime-updatable latency interface,\n"
                " paper Section VI-B)\n",
                predicted.as_us(),
                std::string{cstates::name(gov.select(predicted))}.c_str(),
                std::string{cstates::name(gov.select_with_measured(
                                predicted, node.wake_model(), util::Frequency::ghz(2.5)))}
                    .c_str());
    return 0;
}
