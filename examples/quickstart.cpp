// Quickstart: build the paper's test system, run FIRESTARTER, and read the
// power/performance interfaces the way the paper's methodology does --
// RAPL via the MSRs, AC via the LMG450 model, frequencies via LIKWID-style
// counters.
#include <cstdio>

#include "core/node.hpp"
#include "perfmon/counters.hpp"
#include "workloads/firestarter.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

int main() {
    std::puts("=== Haswell-EP energy-efficiency survey: quickstart ===\n");

    // The FIRESTARTER payload structure (Section VIII).
    workloads::FirestarterPayload payload;
    const auto props = payload.analyze();
    std::printf("FIRESTARTER payload: %zu groups, %zu instructions, %zu bytes\n",
                props.group_count, props.instruction_count, props.code_bytes);
    std::printf("  exceeds uop cache: %s, fits L1I: %s, AVX fraction: %.2f\n",
                props.exceeds_uop_cache ? "yes" : "no", props.fits_l1i ? "yes" : "no",
                props.avx_fraction);
    std::printf("  estimated IPC: %.2f (HT) / %.2f (no HT)\n\n",
                payload.estimated_ipc(true), payload.estimated_ipc(false));
    std::printf("first groups of the loop:\n%s\n", payload.disassemble(3).c_str());

    // A dual-socket Xeon E5-2680 v3 node (Table II).
    core::Node node;
    std::printf("node: 2x %s, %u cores/socket, TDP %.0f W\n\n",
                std::string{node.sku().model}.c_str(), node.cores_per_socket(),
                node.sku().tdp.as_watts());

    // Idle baseline.
    node.run_for(Time::ms(200));
    const auto t_idle0 = node.now();
    node.run_for(Time::sec(2));
    std::printf("idle AC power: %.1f W (paper: 261.5 W)\n",
                node.meter().average(t_idle0, node.now()).as_watts());

    // Full load: FIRESTARTER on every core, both threads, turbo requested.
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(100));

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(0, node.now());
    const auto t0 = node.now();
    const auto rapl = node.rapl_power_over(Time::sec(4));
    const auto after = reader.snapshot(0, node.now());
    const auto metrics = reader.derive(before, after);

    std::printf("\nFIRESTARTER, all cores, HT, turbo requested:\n");
    std::printf("  RAPL pkg+DRAM (both sockets): %.1f W\n", rapl.as_watts());
    std::printf("  AC power:                     %.1f W (paper: ~560 W)\n",
                node.meter().average(t0, node.now()).as_watts());
    std::printf("  core frequency (socket 0):    %.2f GHz (TDP-limited below 2.5)\n",
                metrics.effective_frequency.as_ghz());
    std::printf("  uncore frequency:             %.2f GHz\n",
                metrics.uncore_frequency.as_ghz());
    std::printf("  IPC:                          %.2f\n", metrics.ipc);
    return 0;
}
