// Idle-governor simulation: what the stale ACPI latency tables cost.
//
// A periodic task runs 200 us of work then idles ~800 us. The OS idle
// governor picks a C-state from the predicted idle length: with the
// ACPI-reported latencies (33/133 us) it is conservative; with the
// measured latencies (Section VI-B) it can use C6 much earlier. This
// example runs both policies on the simulated node and compares energy.
#include <cstdio>

#include "core/node.hpp"
#include "os/idle_governor.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

namespace {

struct PolicyResult {
    cstates::CState chosen;
    double socket_watts;        // average socket-0 package power
    double avg_wake_latency_us; // responsiveness price per period
};

PolicyResult run_policy(bool use_measured, Time work, Time idle, int periods) {
    core::Node node;
    os::IdleGovernor governor;
    const cstates::CState chosen =
        use_measured ? governor.select_with_measured(idle, node.wake_model(),
                                                     util::Frequency::ghz(2.5))
                     : governor.select(idle);

    // A helper core plays the role of the interrupt source.
    node.set_workload(node.cpu_id(1, 0), &workloads::while_one(), 1);
    const unsigned worker = node.cpu_id(0, 0);

    const double e0 = node.socket(0).rapl().true_pkg_energy().as_joules();
    const Time t0 = node.now();
    double wake_overhead = 0.0;
    for (int i = 0; i < periods; ++i) {
        node.set_workload(worker, &workloads::compute(), 1);
        node.run_for(work);
        node.park(worker, chosen);
        node.run_for(idle);
        const Time latency = node.wake(node.cpu_id(1, 0), worker);
        wake_overhead += latency.as_us();
        node.run_for(latency);
    }
    const double e1 = node.socket(0).rapl().true_pkg_energy().as_joules();
    const double seconds = (node.now() - t0).as_seconds();
    return PolicyResult{chosen, (e1 - e0) / seconds, wake_overhead / periods};
}

}  // namespace

int main() {
    // 150 us of predicted idle sits exactly in the window where the ACPI
    // tables forbid C6 (needs >= 266 us) but the measured latencies allow
    // it (needs ~35 us).
    const Time work = Time::us(100);
    const Time idle = Time::us(150);
    const int periods = 500;

    std::printf("periodic task: %.0f us work + %.0f us idle, %d periods\n\n",
                work.as_us(), idle.as_us(), periods);

    const PolicyResult acpi = run_policy(false, work, idle, periods);
    const PolicyResult measured = run_policy(true, work, idle, periods);

    util::Table t{"idle-governor policy comparison (socket 0 package power)"};
    t.set_header({"latency source", "chosen C-state", "avg power [W]",
                  "avg wake latency [us]"});
    t.add_row({"ACPI tables (33/133 us)", std::string{cstates::name(acpi.chosen)},
               util::Table::fmt(acpi.socket_watts, 3),
               util::Table::fmt(acpi.avg_wake_latency_us, 1)});
    t.add_row({"measured (Section VI-B)", std::string{cstates::name(measured.chosen)},
               util::Table::fmt(measured.socket_watts, 3),
               util::Table::fmt(measured.avg_wake_latency_us, 1)});
    std::printf("%s\n", t.render().c_str());

    std::printf("power saving from trusting measurements: %.2f %%, for %.1f us of\n"
                "extra wake latency per period.\n\n",
                (1.0 - measured.socket_watts / acpi.socket_watts) * 100.0,
                measured.avg_wake_latency_us - acpi.avg_wake_latency_us);
    std::puts("\"The discrepancy between the measured and defined latencies\n"
              "underlines the need for an interface to change these tables at\n"
              "runtime.\" (paper, Section VI-B)");
    return 0;
}
